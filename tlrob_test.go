package tlrob

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// small indirections so the trace test reads naturally
func workloadProfile(name string) (workload.Profile, bool) { return workload.ProfileFor(name) }

func workloadGenerator(p workload.Profile, seed uint64) (*workload.Generator, error) {
	return workload.NewGenerator(p, seed)
}

const testBudget = 15_000

func TestRunSingleKnownBenchmark(t *testing.T) {
	res, err := RunSingle("art", Options{Budget: testBudget})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Cycles <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Benchmark != "art" {
		t.Fatalf("benchmark label %q", res.Benchmark)
	}
}

func TestRunSingleUnknownBenchmark(t *testing.T) {
	if _, err := RunSingle("nope", Options{Budget: testBudget}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunSingleUsesReferenceMachine(t *testing.T) {
	// The weighted-IPC denominator machine is fixed at Baseline_32 no
	// matter what scheme/sizes the options carry.
	a, err := RunSingle("parser", Options{Budget: testBudget})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSingle("parser", Options{
		Budget: testBudget, Scheme: Reactive, L1ROB: 128, L2ROB: 384, DoDThreshold: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC {
		t.Fatalf("reference IPC depends on options: %v vs %v", a.IPC, b.IPC)
	}
}

func TestRunMixBaseline(t *testing.T) {
	mix, err := MixByName("Mix 5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMix(mix, Options{Budget: testBudget}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 4 {
		t.Fatalf("%d threads", len(res.Threads))
	}
	if res.FairThroughput <= 0 {
		t.Fatalf("FT = %v", res.FairThroughput)
	}
	// FT equals the harmonic mean of the reported weighted IPCs.
	w := make([]float64, 4)
	for i, th := range res.Threads {
		w[i] = th.WeightedIPC
	}
	if got := metrics.FairThroughput(w); math.Abs(got-res.FairThroughput) > 1e-9 {
		t.Fatalf("FT %v does not match weighted IPCs %v", res.FairThroughput, got)
	}
}

func TestRunMixDeterministic(t *testing.T) {
	mix, _ := MixByName("Mix 1")
	opt := Options{Budget: testBudget, Seed: 3}
	a, err := RunMix(mix, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(mix, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.FairThroughput != b.FairThroughput {
		t.Fatal("mix runs are not deterministic")
	}
}

func TestSharedSingleIPCsMatchOnTheFly(t *testing.T) {
	mix, _ := MixByName("Mix 1")
	opt := Options{Budget: testBudget}
	singles, err := SingleIPCs(mix.Benchmarks[:], opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunMix(mix, opt, singles)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMix(mix, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.FairThroughput-b.FairThroughput) > 1e-12 {
		t.Fatal("precomputed singles change the result")
	}
}

func TestAllSchemesRun(t *testing.T) {
	mix, _ := MixByName("Mix 1")
	singles, err := SingleIPCs(mix.Benchmarks[:], Options{Budget: testBudget})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Scheme: Baseline, L1ROB: 32},
		{Scheme: Baseline, L1ROB: 128},
		{Scheme: Reactive, DoDThreshold: 16},
		{Scheme: RelaxedReactive, DoDThreshold: 15},
		{Scheme: CountDelayed, DoDThreshold: 15},
		{Scheme: Predictive, DoDThreshold: 5},
	} {
		opt.Budget = testBudget
		res, err := RunMix(mix, opt, singles)
		if err != nil {
			t.Fatalf("%v: %v", opt.Scheme, err)
		}
		if res.FairThroughput <= 0 {
			t.Fatalf("%v: FT %v", opt.Scheme, res.FairThroughput)
		}
	}
}

func TestPredictiveExposesPredictorStats(t *testing.T) {
	mix, _ := MixByName("Mix 1")
	res, err := RunMix(mix, Options{Scheme: Predictive, DoDThreshold: 5, Budget: testBudget}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.DoDPred == nil || res.Raw.DoDPred.Lookups == 0 {
		t.Fatal("predictive run has no predictor stats")
	}
}

func TestBenchmarksAndMixesExposed(t *testing.T) {
	if len(Benchmarks()) < 20 {
		t.Fatalf("%d benchmarks", len(Benchmarks()))
	}
	if len(Mixes()) != 11 {
		t.Fatalf("%d mixes", len(Mixes()))
	}
	if _, err := MixByName("Mix 42"); err == nil {
		t.Fatal("bogus mix accepted")
	}
}

func TestRunBenchmarksArbitraryCombination(t *testing.T) {
	res, err := RunBenchmarks("pair", []string{"parser", "crafty"}, Options{Budget: testBudget}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("%d threads", len(res.Threads))
	}
	if res.Threads[0].Benchmark != "parser" || res.Threads[1].Benchmark != "crafty" {
		t.Fatalf("thread labels: %+v", res.Threads)
	}
}

func TestRunBenchmarksValidation(t *testing.T) {
	if _, err := RunBenchmarks("x", nil, Options{}, nil); err == nil {
		t.Fatal("empty benchmark list accepted")
	}
	if _, err := RunBenchmarks("x", []string{"bogus"}, Options{Budget: testBudget}, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunTraceFiles(t *testing.T) {
	dir := t.TempDir()
	prof, _ := workloadProfile("parser")
	gen, err := workloadGenerator(prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "p.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	var ti isa.TraceInst
	for i := 0; i < 30000; i++ {
		gen.Next(&ti)
		if err := w.Write(&ti); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := RunTraceFiles([]string{path}, Options{Budget: testBudget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads[0].IPC <= 0 {
		t.Fatalf("trace run IPC %v", res.Threads[0].IPC)
	}
	// Replay must match the generator-driven run exactly.
	direct, err := RunBenchmarks("parser", []string{"parser"}, Options{Budget: testBudget, Seed: 0},
		map[string]float64{"parser": 1})
	_ = direct
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RunTraceFiles([]string{filepath.Join(dir, "missing.trace")}, Options{Budget: testBudget}); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if _, err := RunTraceFiles(nil, Options{}); err == nil {
		t.Fatal("empty trace list accepted")
	}
}
