package regfile

import "fmt"

// EarlyReleaser implements a conservative form of the early register
// deallocation the paper cites as a synergy ([24], Sharkey & Ponomarev,
// ICS'07): the previous mapping of a renamed destination is returned to
// the free pool *before* the renaming instruction commits, once the
// register is provably dead:
//
//  1. every dispatched reader of the register has issued (and so has read
//     the register file),
//  2. the overwriting instruction has executed, and
//  3. the overwriting instruction can no longer be squashed — approximated
//     conservatively by "its thread has no unresolved branch in flight",
//     tracked as a per-thread unresolved-branch counter.
//
// Rule 3 is what makes checkpoint-free recovery safe: a squash of the
// overwriter would have to restore the previous mapping, which must still
// exist. The FLUSH fetch policy squashes younger instructions on L2
// misses outside branch resolution, so the pipeline disables early
// release under FLUSH.
//
// A physical register can be the previous mapping of at most one in-flight
// overwriter (it leaves the rename map when overwritten and cannot be
// re-allocated until freed), so candidates are indexed by register.
type EarlyReleaser struct {
	file *File

	readers    []int32 // unissued dispatched readers per physical register
	cand       []candidate
	perThread  [][]int32 // active candidate registers per thread
	unresolved []int32   // unresolved branches per thread

	released uint64
}

// candidate tracks one previous mapping awaiting early death.
type candidate struct {
	seq    uint64 // the overwriter
	tid    int8
	active bool
	done   bool // overwriter executed
}

// NewEarlyReleaser builds the tracker for a register file and thread count.
func NewEarlyReleaser(f *File, threads int) *EarlyReleaser {
	n := f.numInt + f.numFP
	return &EarlyReleaser{
		file:       f,
		readers:    make([]int32, n),
		cand:       make([]candidate, n),
		perThread:  make([][]int32, threads),
		unresolved: make([]int32, threads),
	}
}

// Released returns how many registers were freed early.
func (e *EarlyReleaser) Released() uint64 { return e.released }

// OnDispatchRead notes a dispatched reader of a physical register.
func (e *EarlyReleaser) OnDispatchRead(phys int32) {
	if phys >= 0 {
		e.readers[phys]++
	}
}

// OnIssueRead notes that a reader issued (it has read the register).
func (e *EarlyReleaser) OnIssueRead(phys int32) {
	if phys >= 0 {
		e.readers[phys]--
		e.tryRelease(phys)
	}
}

// OnSquashRead undoes OnDispatchRead for a squashed, never-issued reader.
func (e *EarlyReleaser) OnSquashRead(phys int32) {
	if phys >= 0 {
		e.readers[phys]--
		e.tryRelease(phys)
	}
}

// OnBranchDispatched and OnBranchResolved maintain the per-thread
// unresolved-branch count that gates releases (rule 3). Resolution can
// unblock every candidate of the thread.
func (e *EarlyReleaser) OnBranchDispatched(tid int) { e.unresolved[tid]++ }

func (e *EarlyReleaser) OnBranchResolved(tid int) {
	e.unresolved[tid]--
	if e.unresolved[tid] > 0 {
		return
	}
	// Sweep the thread's candidate list, compacting lazily.
	list := e.perThread[tid]
	out := list[:0]
	for _, phys := range list {
		if !e.cand[phys].active {
			continue
		}
		if !e.tryRelease(phys) {
			out = append(out, phys)
		}
	}
	e.perThread[tid] = out
}

// OnOverwriterDispatched registers a candidate: the instruction seq of
// thread tid renamed over oldPhys.
func (e *EarlyReleaser) OnOverwriterDispatched(tid int, seq uint64, oldPhys int32) {
	if oldPhys < 0 {
		return
	}
	e.cand[oldPhys] = candidate{seq: seq, tid: int8(tid), active: true}
	e.perThread[tid] = append(e.perThread[tid], oldPhys)
}

// OnOverwriterExecuted marks rule 2 satisfied for the candidate holding
// oldPhys, if it is still this overwriter's.
func (e *EarlyReleaser) OnOverwriterExecuted(seq uint64, oldPhys int32) {
	if oldPhys < 0 {
		return
	}
	c := &e.cand[oldPhys]
	if c.active && c.seq == seq {
		c.done = true
		e.tryRelease(oldPhys)
	}
}

// OnOverwriterGone removes the candidate when its overwriter is squashed
// or committed. It reports whether the register was already freed early —
// the caller must then NOT free it again.
func (e *EarlyReleaser) OnOverwriterGone(seq uint64, oldPhys int32) (alreadyReleased bool) {
	if oldPhys < 0 {
		return false
	}
	c := &e.cand[oldPhys]
	if c.active && c.seq == seq {
		c.active = false
		return false
	}
	return true
}

// tryRelease frees the candidate holding phys if all rules hold.
func (e *EarlyReleaser) tryRelease(phys int32) bool {
	c := &e.cand[phys]
	if !c.active || !c.done || e.readers[phys] != 0 || e.unresolved[c.tid] != 0 {
		return false
	}
	c.active = false
	e.file.Release(phys)
	e.released++
	return true
}

// PendingCount reports candidates still waiting (tests).
func (e *EarlyReleaser) PendingCount() int {
	n := 0
	for i := range e.cand {
		if e.cand[i].active {
			n++
		}
	}
	return n
}

// CheckInvariants validates that reader counts are non-negative (tests).
func (e *EarlyReleaser) CheckInvariants() error {
	for p, r := range e.readers {
		if r < 0 {
			return fmt.Errorf("regfile: negative reader count on physical register %d: %d", p, r)
		}
	}
	return nil
}
