package regfile

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func newFile(t *testing.T, ints, fps, threads int) *File {
	t.Helper()
	f, err := New(ints, fps, threads)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInitialState(t *testing.T) {
	f := newFile(t, 224, 224, 4)
	if got := f.FreeCount(false); got != 224 {
		t.Fatalf("free int = %d, want the full rename pool", got)
	}
	if got := f.FreeCount(true); got != 224 {
		t.Fatalf("free fp = %d", got)
	}
	// Every architected register maps to a ready physical register.
	for tid := 0; tid < 4; tid++ {
		for a := 0; a < isa.NumRegs; a++ {
			p := f.Lookup(tid, a)
			if !f.Ready(p) {
				t.Fatalf("thread %d arch %d not ready at reset", tid, a)
			}
			if isa.IsFPReg(a) != f.IsFPPhys(p) {
				t.Fatalf("class mismatch for arch %d -> phys %d", a, p)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsDistinctMappings(t *testing.T) {
	f := newFile(t, 32, 32, 2)
	if f.Lookup(0, 5) == f.Lookup(1, 5) {
		t.Fatal("two threads share a committed register")
	}
}

func TestAllocateRenameCommit(t *testing.T) {
	f := newFile(t, 16, 16, 1)
	old := f.Lookup(0, 3)
	newP, oldP, ok := f.Allocate(0, 3)
	if !ok || oldP != old {
		t.Fatalf("allocate: new=%d old=%d ok=%v", newP, oldP, ok)
	}
	if f.Lookup(0, 3) != newP {
		t.Fatal("rename map not updated")
	}
	if f.Ready(newP) {
		t.Fatal("fresh register marked ready")
	}
	f.SetReady(newP)
	if !f.Ready(newP) {
		t.Fatal("SetReady failed")
	}
	// Commit frees the previous mapping.
	before := f.FreeCount(false)
	f.Release(oldP)
	if f.FreeCount(false) != before+1 {
		t.Fatal("release did not return register")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustion(t *testing.T) {
	f := newFile(t, 4, 4, 1)
	for i := 0; i < 4; i++ {
		if _, _, ok := f.Allocate(0, 1); !ok {
			t.Fatalf("allocation %d failed early", i)
		}
	}
	if _, _, ok := f.Allocate(0, 1); ok {
		t.Fatal("allocation beyond pool succeeded")
	}
	if f.FreeCount(false) != 0 {
		t.Fatal("free count wrong at exhaustion")
	}
}

func TestRollback(t *testing.T) {
	f := newFile(t, 8, 8, 1)
	old := f.Lookup(0, 2)
	newP, oldP, _ := f.Allocate(0, 2)
	f.Rollback(0, 2, newP, oldP)
	if f.Lookup(0, 2) != old {
		t.Fatal("rollback did not restore mapping")
	}
	if f.FreeCount(false) != 8 {
		t.Fatal("rollback did not free register")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFPPoolSeparate(t *testing.T) {
	f := newFile(t, 4, 4, 1)
	for i := 0; i < 4; i++ {
		f.Allocate(0, 1) // int
	}
	// Int pool exhausted; FP must still allocate.
	if _, _, ok := f.Allocate(0, isa.NumIntRegs+1); !ok {
		t.Fatal("fp allocation blocked by int exhaustion")
	}
	if f.FreeCount(true) != 3 {
		t.Fatalf("fp free = %d", f.FreeCount(true))
	}
}

func TestInFlight(t *testing.T) {
	f := newFile(t, 8, 8, 1)
	base := f.InFlight(false)
	f.Allocate(0, 1)
	if f.InFlight(false) != base+1 {
		t.Fatal("in-flight count wrong")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 8, 1); err == nil {
		t.Error("zero int pool accepted")
	}
	if _, err := New(8, 8, 0); err == nil {
		t.Error("zero threads accepted")
	}
}

// Property: any sequence of allocate/commit-release/rollback preserves
// free-list invariants and never double-frees.
func TestQuickRenameSequences(t *testing.T) {
	type op struct {
		Arch   uint8
		Commit bool // else rollback
	}
	f := func(ops []op) bool {
		rf, err := New(16, 16, 2)
		if err != nil {
			return false
		}
		type pending struct {
			tid, arch  int
			newP, oldP int32
		}
		var live []pending
		for i, o := range ops {
			arch := int(o.Arch) % isa.NumRegs
			tid := i % 2
			newP, oldP, ok := rf.Allocate(tid, arch)
			if !ok {
				// Drain one pending entry to make room (commit oldest).
				if len(live) == 0 {
					continue
				}
				p := live[0]
				live = live[1:]
				rf.Release(p.oldP)
				continue
			}
			live = append(live, pending{tid, arch, newP, oldP})
			if o.Commit && len(live) > 4 {
				p := live[0]
				live = live[1:]
				rf.Release(p.oldP)
			} else if !o.Commit && len(live) > 0 {
				// Roll back the youngest (squash semantics).
				p := live[len(live)-1]
				live = live[:len(live)-1]
				rf.Rollback(p.tid, p.arch, p.newP, p.oldP)
			}
		}
		return rf.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
