// Package regfile models the shared physical register files of the SMT
// datapath (Table 1: 224 integer + 224 floating-point physical registers),
// the per-thread rename maps, the free lists, and the ready scoreboard.
//
// Renaming follows the P4/Alpha-style scheme the paper assumes: results are
// written directly to the physical register file (the ROB holds no values),
// a destination allocates a fresh physical register at dispatch, the
// previous mapping is freed when the instruction commits, and a branch
// squash walks the ROB youngest-first undoing mappings.
package regfile

import (
	"fmt"

	"repro/internal/isa"
)

// File is the combined integer+FP physical register state. Physical
// registers are numbered [0, NumInt) for integer and [NumInt, NumInt+NumFP)
// for floating point.
type File struct {
	numInt, numFP int
	freeInt       []int32
	freeFP        []int32
	ready         []bool
	renameMap     [][]int32 // [thread][arch] -> phys
}

// New builds a register file with numInt/numFP RENAME registers per pool
// beyond the architected state: each thread's architectural registers are
// pre-mapped to additional committed physical registers, so the full free
// pools remain available for in-flight renaming. (Table 1's 224+224 must
// be rename capacity: the paper's 384-entry second-level ROB could never
// fill if 128 of 224 were consumed by the four threads' committed state.)
func New(numInt, numFP, threads int) (*File, error) {
	if numInt < 1 || numFP < 1 || threads < 1 {
		return nil, fmt.Errorf("regfile: bad shape int=%d fp=%d threads=%d", numInt, numFP, threads)
	}
	numInt += threads * isa.NumIntRegs
	numFP += threads * isa.NumFPRegs
	f := &File{
		numInt: numInt,
		numFP:  numFP,
		ready:  make([]bool, numInt+numFP),
	}
	f.renameMap = make([][]int32, threads)
	next := int32(0)
	nextFP := int32(numInt)
	for t := 0; t < threads; t++ {
		m := make([]int32, isa.NumRegs)
		for a := 0; a < isa.NumIntRegs; a++ {
			m[a] = next
			f.ready[next] = true
			next++
		}
		for a := 0; a < isa.NumFPRegs; a++ {
			m[isa.NumIntRegs+a] = nextFP
			f.ready[nextFP] = true
			nextFP++
		}
		f.renameMap[t] = m
	}
	for p := next; p < int32(numInt); p++ {
		f.freeInt = append(f.freeInt, p)
	}
	for p := nextFP; p < int32(numInt+numFP); p++ {
		f.freeFP = append(f.freeFP, p)
	}
	return f, nil
}

// IsFPPhys reports whether phys register p belongs to the FP pool.
func (f *File) IsFPPhys(p int32) bool { return int(p) >= f.numInt }

// Lookup returns the current physical register for (tid, arch).
func (f *File) Lookup(tid, arch int) int32 { return f.renameMap[tid][arch] }

// FreeCount returns the number of free registers in a pool.
func (f *File) FreeCount(fp bool) int {
	if fp {
		return len(f.freeFP)
	}
	return len(f.freeInt)
}

// Allocate renames (tid, arch) to a fresh physical register of the proper
// class, returning the new and previous mappings. ok is false (state
// unchanged) when the pool is empty — the caller must stall dispatch.
func (f *File) Allocate(tid, arch int) (newPhys, oldPhys int32, ok bool) {
	fp := isa.IsFPReg(arch)
	var pool *[]int32
	if fp {
		pool = &f.freeFP
	} else {
		pool = &f.freeInt
	}
	n := len(*pool)
	if n == 0 {
		return 0, 0, false
	}
	newPhys = (*pool)[n-1]
	*pool = (*pool)[:n-1]
	oldPhys = f.renameMap[tid][arch]
	f.renameMap[tid][arch] = newPhys
	f.ready[newPhys] = false
	return newPhys, oldPhys, true
}

// Ready reports whether a physical register's value has been produced.
func (f *File) Ready(p int32) bool { return f.ready[p] }

// SetReady marks a physical register as produced (writeback).
func (f *File) SetReady(p int32) { f.ready[p] = true }

// ClearReady marks a register not-yet-produced; used by tests and by
// speculative-wakeup replay bookkeeping.
func (f *File) ClearReady(p int32) { f.ready[p] = false }

// Release returns a physical register to its free pool: at commit the
// *previous* mapping of the destination is released.
func (f *File) Release(p int32) {
	if f.IsFPPhys(p) {
		f.freeFP = append(f.freeFP, p)
	} else {
		f.freeInt = append(f.freeInt, p)
	}
}

// Rollback undoes one rename during a youngest-first squash walk: the
// architectural register is restored to oldPhys and the speculatively
// allocated newPhys returns to the free pool.
func (f *File) Rollback(tid, arch int, newPhys, oldPhys int32) {
	f.renameMap[tid][arch] = oldPhys
	f.Release(newPhys)
}

// InFlight returns the number of allocated (non-free, non-committed...)
// registers of a pool beyond the architectural baseline; used by resource
// policies to attribute pressure.
func (f *File) InFlight(fp bool) int {
	if fp {
		return f.numFP - len(f.freeFP)
	}
	return f.numInt - len(f.freeInt)
}

// CheckInvariants verifies free-list consistency (no duplicates, no
// register both free and mapped). O(N); tests only.
func (f *File) CheckInvariants() error {
	seen := make(map[int32]string)
	for _, p := range f.freeInt {
		if f.IsFPPhys(p) {
			return fmt.Errorf("regfile: fp reg %d on int free list", p)
		}
		if _, dup := seen[p]; dup {
			return fmt.Errorf("regfile: reg %d twice on free lists", p)
		}
		seen[p] = "free"
	}
	for _, p := range f.freeFP {
		if !f.IsFPPhys(p) {
			return fmt.Errorf("regfile: int reg %d on fp free list", p)
		}
		if _, dup := seen[p]; dup {
			return fmt.Errorf("regfile: reg %d twice on free lists", p)
		}
		seen[p] = "free"
	}
	for t, m := range f.renameMap {
		for a, p := range m {
			if where, bad := seen[p]; bad && where == "free" {
				return fmt.Errorf("regfile: thread %d arch %d maps to free reg %d", t, a, p)
			}
		}
	}
	return nil
}
