package regfile

import "testing"

func earlySetup(t *testing.T) (*File, *EarlyReleaser) {
	t.Helper()
	f, err := New(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f, NewEarlyReleaser(f, 1)
}

func TestEarlyReleaseHappyPath(t *testing.T) {
	f, e := earlySetup(t)
	// P is the current mapping of arch 3; a reader dispatches, then an
	// overwriter renames arch 3.
	p := f.Lookup(0, 3)
	e.OnDispatchRead(p)
	_, oldP, _ := f.Allocate(0, 3)
	if oldP != p {
		t.Fatal("setup wrong")
	}
	e.OnOverwriterDispatched(0, 100, p)
	free := f.FreeCount(false)

	e.OnOverwriterExecuted(100, p) // rule 2
	if f.FreeCount(false) != free {
		t.Fatal("released with an unissued reader")
	}
	e.OnIssueRead(p) // rule 1
	if f.FreeCount(false) != free+1 {
		t.Fatal("not released once all rules held")
	}
	if e.Released() != 1 {
		t.Fatalf("released count %d", e.Released())
	}
	// Commit of the overwriter must not double-free.
	if !e.OnOverwriterGone(100, p) {
		t.Fatal("commit not told about the early release")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyReleaseGatedByBranches(t *testing.T) {
	f, e := earlySetup(t)
	p := f.Lookup(0, 3)
	f.Allocate(0, 3)
	e.OnBranchDispatched(0) // unresolved branch in flight
	e.OnOverwriterDispatched(0, 100, p)
	free := f.FreeCount(false)
	e.OnOverwriterExecuted(100, p)
	if f.FreeCount(false) != free {
		t.Fatal("released under an unresolved branch")
	}
	e.OnBranchResolved(0)
	if f.FreeCount(false) != free+1 {
		t.Fatal("not released after branch resolution")
	}
}

func TestEarlyReleaseSquashedOverwriter(t *testing.T) {
	f, e := earlySetup(t)
	p := f.Lookup(0, 3)
	newP, _, _ := f.Allocate(0, 3)
	e.OnBranchDispatched(0) // keeps the candidate gated
	e.OnOverwriterDispatched(0, 100, p)
	e.OnOverwriterExecuted(100, p)
	// Squash of the overwriter: the candidate must be withdrawn so the
	// rollback can restore p safely.
	if e.OnOverwriterGone(100, p) {
		t.Fatal("gated candidate reported as released")
	}
	f.Rollback(0, 3, newP, p)
	if f.Lookup(0, 3) != p {
		t.Fatal("rollback broken")
	}
	// The stale resolution must not release anything now.
	e.OnBranchResolved(0)
	if e.Released() != 0 {
		t.Fatal("withdrawn candidate released")
	}
}

func TestEarlySquashedReader(t *testing.T) {
	f, e := earlySetup(t)
	p := f.Lookup(0, 3)
	e.OnDispatchRead(p)
	f.Allocate(0, 3)
	e.OnOverwriterDispatched(0, 100, p)
	e.OnOverwriterExecuted(100, p)
	// The reader never issues; it is squashed instead.
	e.OnSquashRead(p)
	if e.Released() != 1 {
		t.Fatal("squash of the last reader did not trigger release")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyRegisterReuseAfterRelease(t *testing.T) {
	f, e := earlySetup(t)
	p := f.Lookup(0, 3)
	f.Allocate(0, 3)
	e.OnOverwriterDispatched(0, 100, p)
	e.OnOverwriterExecuted(100, p)
	if e.Released() != 1 {
		t.Fatal("no readers, executed, no branches: must release")
	}
	// The freed register is re-allocated to a different arch register and
	// becomes the previous mapping of a NEW overwriter: the candidate slot
	// must be reusable.
	var got int32 = -1
	for i := 0; i < 16; i++ {
		newP, _, ok := f.Allocate(0, 5)
		if !ok {
			break
		}
		if newP == p {
			got = newP
			break
		}
	}
	if got != p {
		t.Skip("free-list order did not hand the register back")
	}
	e.OnOverwriterDispatched(0, 200, f.Lookup(0, 5))
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyPendingCount(t *testing.T) {
	f, e := earlySetup(t)
	p := f.Lookup(0, 3)
	f.Allocate(0, 3)
	e.OnBranchDispatched(0)
	e.OnOverwriterDispatched(0, 100, p)
	if e.PendingCount() != 1 {
		t.Fatalf("pending = %d", e.PendingCount())
	}
	e.OnOverwriterExecuted(100, p)
	e.OnBranchResolved(0)
	if e.PendingCount() != 0 {
		t.Fatalf("pending after release = %d", e.PendingCount())
	}
}
