// Package uop defines the dynamic micro-operation record that flows
// through the simulated pipeline. The per-thread ROB rings own the UOp
// storage; the issue queue, LSQ and function units refer to entries by
// (thread, ROB slot) handles.
package uop

import "repro/internal/isa"

// NoReg marks an absent physical register operand.
const NoReg int32 = -1

// UOp is one in-flight dynamic instruction.
type UOp struct {
	PC   uint64
	Addr uint64 // effective address (memory ops)
	Seq  uint64 // global dispatch order, for oldest-first selection

	Op       isa.OpClass
	Tid      int8
	DestArch int8    // architectural destination (isa.RegNone if none)
	SrcArch  [2]int8 // architectural sources, kept for squash replay

	Hist uint64 // branch-history snapshot at fetch (gshare repair, DoD path hash)

	SrcPhys  [2]int32 // physical sources (NoReg if absent)
	DestPhys int32    // physical destination (NoReg if none)
	OldPhys  int32    // previous mapping of DestArch, freed at commit

	RobSlot int32 // slot in the owning thread's ROB ring
	LsqSlot int32 // slot in the thread's LSQ (-1 if none)

	FetchedAt  int64
	IssuedAt   int64
	CompleteAt int64

	// Status bits. Executed corresponds to the ROB "result valid" bit the
	// paper's DoD counter walks.
	InIQ      bool
	Issued    bool
	Executed  bool
	Squashed  bool
	WrongPath bool // synthetic wrong-path instruction (never commits)

	// Branch state.
	PredTaken bool
	Taken     bool
	Mispred   bool

	// Load state.
	L1Miss      bool
	L2Miss      bool
	L2Detected  bool // the L2 miss has been reported to the ROB manager
	LoadHitPred bool
	Forwarded   bool // satisfied by store-to-load forwarding
}

// Handle identifies an in-flight UOp by thread and ROB slot.
type Handle struct {
	Tid  int8
	Slot int32
}

// IsMem reports whether the uop is a load or store.
func (u *UOp) IsMem() bool { return u.Op.IsMem() }

// Busy reports whether the uop still occupies issue resources (dispatched
// but not yet finished executing).
func (u *UOp) Busy() bool { return !u.Executed && !u.Squashed }
