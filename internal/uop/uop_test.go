package uop

import (
	"testing"

	"repro/internal/isa"
)

func TestIsMem(t *testing.T) {
	ld := UOp{Op: isa.OpLoad}
	alu := UOp{Op: isa.OpIntAlu}
	if !ld.IsMem() || alu.IsMem() {
		t.Fatal("IsMem misclassifies")
	}
}

func TestBusy(t *testing.T) {
	u := UOp{}
	if !u.Busy() {
		t.Fatal("fresh uop not busy")
	}
	u.Executed = true
	if u.Busy() {
		t.Fatal("executed uop busy")
	}
	u = UOp{Squashed: true}
	if u.Busy() {
		t.Fatal("squashed uop busy")
	}
}

func TestNoRegSentinel(t *testing.T) {
	if NoReg >= 0 {
		t.Fatal("NoReg must be negative (never a valid physical register)")
	}
}
