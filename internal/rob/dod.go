package rob

import "repro/internal/uop"

// ApproxDoD is the paper's low-complexity dependence counter (§4.1): it
// walks the ROB entries younger than the load at loadSlot and counts those
// whose "result valid" bit is still clear — i.e. every not-yet-executed
// instruction is *assumed* to depend on the load. No register tags are
// propagated. The accuracy of the approximation improves with the delay
// between miss detection and counting, because independent short-latency
// work drains in the interim.
func ApproxDoD(r *Ring, loadSlot int32) int {
	pos := r.PosOf(loadSlot)
	if pos < 0 {
		return 0
	}
	n := 0
	for i := pos + 1; i < r.Len(); i++ {
		e := r.At(r.SlotAt(i))
		if !e.Executed && !e.Squashed {
			n++
		}
	}
	return n
}

// ExactDoD computes the true register-dataflow degree of dependence: the
// number of ROB entries younger than the load whose sources transitively
// reach the load's destination register. The paper argues this would
// require expensive tag broadcasts in hardware; the simulator provides it
// to quantify the approximation error (§4.1's accuracy discussion).
func ExactDoD(r *Ring, loadSlot int32) int {
	pos := r.PosOf(loadSlot)
	if pos < 0 {
		return 0
	}
	load := r.At(loadSlot)
	if load.DestPhys == uop.NoReg {
		return 0
	}
	// Dependence set of physical registers, seeded with the load's dest.
	// Sizes are tiny (≤ ROB length), so a slice scan beats a map.
	depRegs := make([]int32, 0, 16)
	depRegs = append(depRegs, load.DestPhys)
	inSet := func(p int32) bool {
		for _, q := range depRegs {
			if q == p {
				return true
			}
		}
		return false
	}
	n := 0
	for i := pos + 1; i < r.Len(); i++ {
		e := r.At(r.SlotAt(i))
		if e.Squashed {
			continue
		}
		dep := false
		for _, s := range e.SrcPhys {
			if s != uop.NoReg && inSet(s) {
				dep = true
				break
			}
		}
		if dep {
			n++
			if e.DestPhys != uop.NoReg && !inSet(e.DestPhys) {
				depRegs = append(depRegs, e.DestPhys)
			}
		}
	}
	return n
}
