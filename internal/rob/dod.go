package rob

import (
	"fmt"

	"repro/internal/uop"
)

// DebugCrossCheckDoD, when set, makes every ApproxDoD query re-run the
// original linear §4.1 walk and panic on divergence from the incremental
// counter. It is a correctness harness for tests and debugging; leave it
// off in measurement runs.
var DebugCrossCheckDoD bool

// ApproxDoD is the paper's low-complexity dependence counter (§4.1): the
// number of ROB entries younger than the load at loadSlot whose "result
// valid" bit is still clear — i.e. every not-yet-executed instruction is
// *assumed* to depend on the load. No register tags are propagated. The
// accuracy of the approximation improves with the delay between miss
// detection and counting, because independent short-latency work drains
// in the interim.
//
// The count is answered from the ring's incremental unexecuted-entry
// state (maintained at push/execute/squash/commit) in O(log capacity)
// instead of walking the window; ApproxDoDLinear is the original walk,
// kept as the cross-check oracle behind DebugCrossCheckDoD.
//
//tlrob:allocfree
func ApproxDoD(r *Ring, loadSlot int32) int {
	n := r.UnexecutedYounger(loadSlot)
	if DebugCrossCheckDoD {
		if lin := ApproxDoDLinear(r, loadSlot); lin != n {
			panic(fmt.Sprintf("rob: incremental DoD %d diverges from linear walk %d (slot %d)", n, lin, loadSlot))
		}
	}
	return n
}

// ApproxDoDLinear is the original O(window) counting walk. It is the
// reference implementation the incremental counter is validated against
// (see DebugCrossCheckDoD and the property tests); the simulator's hot
// paths use ApproxDoD.
//
//tlrob:allocfree
func ApproxDoDLinear(r *Ring, loadSlot int32) int {
	pos := r.PosOf(loadSlot)
	if pos < 0 {
		return 0
	}
	n := 0
	for i := pos + 1; i < r.Len(); i++ {
		e := r.At(r.SlotAt(i))
		if !e.Executed && !e.Squashed {
			n++
		}
	}
	return n
}

// ExactDoD computes the true register-dataflow degree of dependence: the
// number of ROB entries younger than the load whose sources transitively
// reach the load's destination register. The paper argues this would
// require expensive tag broadcasts in hardware; the simulator provides it
// to quantify the approximation error (§4.1's accuracy discussion).
// Deliberately NOT //tlrob:allocfree: this is the expensive oracle the
// static check exists to keep out of the per-cycle paths; it runs only
// under DebugCrossCheckDoD.
func ExactDoD(r *Ring, loadSlot int32) int {
	pos := r.PosOf(loadSlot)
	if pos < 0 {
		return 0
	}
	load := r.At(loadSlot)
	if load.DestPhys == uop.NoReg {
		return 0
	}
	// Dependence set of physical registers, seeded with the load's dest.
	// Sizes are tiny (≤ ROB length), so a slice scan beats a map.
	depRegs := make([]int32, 0, 16)
	depRegs = append(depRegs, load.DestPhys)
	inSet := func(p int32) bool {
		for _, q := range depRegs {
			if q == p {
				return true
			}
		}
		return false
	}
	n := 0
	for i := pos + 1; i < r.Len(); i++ {
		e := r.At(r.SlotAt(i))
		if e.Squashed {
			continue
		}
		dep := false
		for _, s := range e.SrcPhys {
			if s != uop.NoReg && inSet(s) {
				dep = true
				break
			}
		}
		if dep {
			n++
			if e.DestPhys != uop.NoReg && !inSet(e.DestPhys) {
				depRegs = append(depRegs, e.DestPhys)
			}
		}
	}
	return n
}
