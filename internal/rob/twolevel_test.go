package rob

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

// fillThread dispatches n entries into tid's ring; the first is a load,
// the rest unexecuted ALU consumers (worst-case DoD = n-1).
func fillThread(tl *TwoLevel, tid, n int) int32 {
	ring := tl.Ring(tid)
	slot, ld := ring.Push()
	ld.Op = isa.OpLoad
	ld.DestPhys = 100
	ld.Seq = 1
	for i := 1; i < n; i++ {
		_, e := ring.Push()
		e.Op = isa.OpIntAlu
		e.Seq = uint64(i + 1)
		e.DestPhys = uop.NoReg
		e.SrcPhys = [2]int32{uop.NoReg, uop.NoReg}
	}
	return slot
}

// markExecuted marks all entries after the head as executed.
func markShadowExecuted(tl *TwoLevel, tid int) {
	ring := tl.Ring(tid)
	for i := 1; i < ring.Len(); i++ {
		ring.MarkExecuted(ring.SlotAt(i))
	}
}

func reactiveConfig(threshold int) Config {
	return DefaultConfig(2, Reactive, threshold)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Threads: 0, L1Size: 32},
		{Threads: 1, L1Size: 0},
		{Threads: 1, L1Size: 32, Scheme: Reactive},                                 // no second level
		{Threads: 1, L1Size: 32, L2Size: 384, Scheme: Reactive},                    // no threshold
		{Threads: 1, L1Size: 32, L2Size: 384, Scheme: Reactive, DoDThreshold: 4},   // no recheck
		{Threads: 1, L1Size: 32, L2Size: 384, Scheme: Scheme(99), DoDThreshold: 4}, // unknown
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := DefaultConfig(4, Reactive, 16)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		Baseline: "baseline", Reactive: "reactive", RelaxedReactive: "relaxed-reactive",
		CountDelayedReactive: "count-delayed-reactive", Predictive: "predictive",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestCapacityAndOwnership(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	if tl.Owner() != -1 {
		t.Fatal("fresh manager has an owner")
	}
	if tl.Capacity(0) != 32 || tl.Capacity(1) != 32 {
		t.Fatal("initial capacity wrong")
	}
}

func TestBaselineNeverAllocates(t *testing.T) {
	tl := MustNew(Config{Threads: 1, L1Size: 32, Scheme: Baseline})
	slot := fillThread(tl, 0, 32)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	for now := int64(0); now < 100; now++ {
		tl.Tick(now)
	}
	if tl.Owner() != -1 || tl.Stats().Allocations != 0 {
		t.Fatal("baseline allocated")
	}
	// But the miss is still tracked for the Figure-1 histogram.
	if dod, ok := tl.MissServiced(0, slot, 100); !ok || dod != 31 {
		t.Fatalf("baseline miss not tracked: dod=%d ok=%v", dod, ok)
	}
}

func TestReactiveAllocatesWhenConditionsMet(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	slot := fillThread(tl, 0, 32) // full first level
	markShadowExecuted(tl, 0)     // DoD = 0 < 16
	tl.MissDetected(0, slot, 0x100, 0, 5)
	tl.Tick(5)
	if tl.Owner() != 0 {
		t.Fatal("reactive did not allocate")
	}
	if tl.Capacity(0) != 32+384 || tl.Capacity(1) != 32 {
		t.Fatal("capacities wrong after grant")
	}
	if s := tl.Stats(); s.Allocations != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReactiveRequiresOldest(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	// Fill with an older non-load first: the load is NOT oldest.
	ring := tl.Ring(0)
	_, older := ring.Push()
	older.Op = isa.OpIntAlu
	slot := int32(0)
	for i := 0; i < 31; i++ {
		s, e := ring.Push()
		if i == 0 {
			e.Op = isa.OpLoad
			slot = s
		} else {
			e.Op = isa.OpIntAlu
			ring.MarkExecuted(s)
		}
	}
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	if tl.Owner() != -1 {
		t.Fatal("allocated while load not oldest")
	}
	// Once the older instruction commits, a recheck allocates.
	ring.PopHead()
	tl.Tick(10)
	if tl.Owner() == -1 {
		// not full anymore (31 entries): reactive also requires full L1
		t.Skip("full-condition also applies")
	}
}

func TestReactiveRequiresFullL1(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	slot := fillThread(tl, 0, 16) // half-full
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	if tl.Owner() != -1 {
		t.Fatal("allocated with non-full first level")
	}
	// Fill the remaining entries and let the 10-cycle recheck fire.
	for i := 16; i < 32; i++ {
		s, e := tl.Ring(0).Push()
		e.Op = isa.OpIntAlu
		tl.Ring(0).MarkExecuted(s)
	}
	tl.Tick(10)
	if tl.Owner() != 0 {
		t.Fatal("recheck did not allocate after fill")
	}
}

func TestReactiveDeniesHighDoD(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	slot := fillThread(tl, 0, 32) // 31 unexecuted younger = DoD 31 >= 16
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	if tl.Owner() != -1 {
		t.Fatal("allocated despite DoD above threshold")
	}
	if s := tl.Stats(); s.DeniedDoD != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// Denial is final for this miss: later ticks must not allocate.
	markShadowExecuted(tl, 0)
	tl.Tick(10)
	if tl.Owner() != -1 {
		t.Fatal("denied miss re-evaluated")
	}
}

func TestRelaxedDropsFullCondition(t *testing.T) {
	cfg := DefaultConfig(2, RelaxedReactive, 15)
	tl := MustNew(cfg)
	slot := fillThread(tl, 0, 8) // far from full
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	if tl.Owner() != 0 {
		t.Fatal("relaxed scheme required a full first level")
	}
}

func TestCDRWaitsForSnapshotDelay(t *testing.T) {
	cfg := DefaultConfig(2, CountDelayedReactive, 15)
	cfg.CountDelay = 32
	tl := MustNew(cfg)
	slot := fillThread(tl, 0, 8)
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 100)
	tl.Tick(100)
	tl.Tick(120)
	if tl.Owner() != -1 {
		t.Fatal("CDR counted before the 32-cycle delay")
	}
	tl.Tick(132)
	if tl.Owner() != 0 {
		t.Fatal("CDR did not allocate at snapshot time")
	}
}

func TestOneThreadAtATime(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	s0 := fillThread(tl, 0, 32)
	markShadowExecuted(tl, 0)
	s1 := fillThread(tl, 1, 32)
	markShadowExecuted(tl, 1)
	tl.MissDetected(0, s0, 0x100, 0, 0)
	tl.MissDetected(1, s1, 0x200, 0, 0)
	tl.Tick(0)
	owner := tl.Owner()
	if owner == -1 {
		t.Fatal("nobody allocated")
	}
	if s := tl.Stats(); s.DeniedBusy == 0 && s.Allocations != 1 {
		t.Fatalf("second grant not denied: %+v", s)
	}
	// Service the owner's miss: partition rotates to the waiter.
	ownSlot := s0
	if owner == 1 {
		ownSlot = s1
	}
	tl.MissServiced(owner, ownSlot, 50)
	tl.Tick(51)
	if tl.Owner() == owner || tl.Owner() == -1 {
		t.Fatalf("partition did not rotate: owner=%d", tl.Owner())
	}
}

func TestReleaseOnGrantingMissService(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	slot := fillThread(tl, 0, 32)
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	if tl.Owner() != 0 {
		t.Fatal("no grant")
	}
	dod, ok := tl.MissServiced(0, slot, 40)
	if !ok || dod != 0 { // shadow fully executed above
		t.Fatalf("service: dod=%d ok=%v", dod, ok)
	}
	if tl.Owner() != -1 {
		t.Fatal("partition not released at granting-miss service")
	}
	if s := tl.Stats(); s.Releases != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSquashReleasesGrant(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	slot := fillThread(tl, 0, 32)
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	tl.EntrySquashed(0, slot)
	if tl.Owner() != -1 {
		t.Fatal("squash of granting load kept the partition")
	}
	if _, ok := tl.MissServiced(0, slot, 10); ok {
		t.Fatal("squashed miss still tracked")
	}
}

func TestPredictiveUntrainedDenies(t *testing.T) {
	cfg := DefaultConfig(1, Predictive, 5)
	tl := MustNew(cfg)
	slot := fillThread(tl, 0, 8)
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	if tl.Owner() != -1 {
		t.Fatal("untrained predictor allocated")
	}
	if s := tl.pred.Stats(); s.Untrained != 1 {
		t.Fatalf("predictor stats: %+v", s)
	}
}

func TestPredictiveTrainsAndAllocates(t *testing.T) {
	cfg := DefaultConfig(1, Predictive, 5)
	tl := MustNew(cfg)
	// First instance: count 0 dependents at service, training the table.
	slot := fillThread(tl, 0, 1)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.MissServiced(0, slot, 40)
	tl.Ring(0).PopHead()
	// Second instance of the same static load: predicted DoD 0 < 5 ->
	// allocation at detection time, no reactive conditions needed.
	slot = fillThread(tl, 0, 1)
	tl.MissDetected(0, slot, 0x100, 0, 100)
	if tl.Owner() != 0 {
		t.Fatal("trained predictor did not allocate at detection")
	}
}

func TestPredictiveVerification(t *testing.T) {
	cfg := DefaultConfig(1, Predictive, 5)
	tl := MustNew(cfg)
	// Train with 0 dependents.
	slot := fillThread(tl, 0, 1)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.MissServiced(0, slot, 40)
	tl.Ring(0).PopHead()
	// Now the same load has a big unexecuted shadow: predicted below
	// threshold (wrongly), actual count 9 >= 5.
	slot = fillThread(tl, 0, 10)
	tl.MissDetected(0, slot, 0x100, 0, 100)
	tl.MissServiced(0, slot, 140)
	// Only the trained lookup is verified: the first (cold) instance made
	// no prediction, so it must not count toward accuracy.
	s := tl.pred.Stats()
	if s.Wrong != 1 || s.Correct != 0 {
		t.Fatalf("verification stats: %+v", s)
	}
}

func TestMissServicedUnknownSlot(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	if _, ok := tl.MissServiced(0, 5, 10); ok {
		t.Fatal("untracked slot serviced")
	}
}

func TestOwnedCyclesCounter(t *testing.T) {
	tl := MustNew(reactiveConfig(16))
	slot := fillThread(tl, 0, 32)
	markShadowExecuted(tl, 0)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	tl.Tick(1)
	tl.Tick(2)
	if got := tl.Stats().OwnedCycles; got != 2 {
		// allocation happens during Tick(0); owned counted on later ticks
		t.Fatalf("owned cycles = %d", got)
	}
}

func TestSharedSinglePool(t *testing.T) {
	cfg := Config{Threads: 4, L1Size: 32, Scheme: SharedSingle}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	tl := MustNew(cfg)
	if tl.Capacity(0) != 128 {
		t.Fatalf("shared capacity = %d", tl.Capacity(0))
	}
	// One thread may fill the whole pool...
	for i := 0; i < 128; i++ {
		if !tl.CanDispatch(0) {
			t.Fatalf("dispatch refused at %d", i)
		}
		_, e := tl.Ring(0).Push()
		e.Op = isa.OpIntAlu
	}
	// ...monopolizing it completely: nobody can dispatch.
	for tid := 0; tid < 4; tid++ {
		if tl.CanDispatch(tid) {
			t.Fatalf("thread %d can dispatch into a full shared pool", tid)
		}
	}
	// Commits free shared space for any thread.
	tl.Ring(0).PopHead()
	if !tl.CanDispatch(3) {
		t.Fatal("freed shared entry not usable by another thread")
	}
}

func TestSharedSingleNeverAllocates(t *testing.T) {
	tl := MustNew(Config{Threads: 2, L1Size: 32, Scheme: SharedSingle})
	slot := fillThread(tl, 0, 4)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	tl.Tick(0)
	if tl.Owner() != -1 {
		t.Fatal("shared scheme allocated a second level")
	}
	if _, ok := tl.MissServiced(0, slot, 50); !ok {
		t.Fatal("shared scheme lost the histogram tracking")
	}
}
