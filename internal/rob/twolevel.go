package rob

import "fmt"

// Scheme selects how (and whether) the second ROB level is allocated.
type Scheme uint8

const (
	// Baseline never allocates a second level: each thread has a private
	// single-level ROB of L1Size entries (Baseline_32 / Baseline_128).
	Baseline Scheme = iota
	// Reactive is 2-Level R-ROB (§5.2): allocate when the missing load is
	// the oldest instruction, the first-level ROB is full, and the counted
	// DoD is below the threshold; conditions are rechecked every
	// RecheckInterval cycles.
	Reactive
	// RelaxedReactive is 2-Level Relaxed R-ROB (§5.2): as Reactive but the
	// first-level ROB need not be full, shrinking the allocation delay at
	// the cost of occasionally counting over a partially filled ROB.
	RelaxedReactive
	// CountDelayedReactive is 2-Level CDR-ROB (§5.2): both the oldest and
	// the full conditions are dropped; the DoD snapshot is taken CountDelay
	// cycles after miss detection.
	CountDelayedReactive
	// Predictive is 2-Level P-ROB (§5.3): a last-value DoD predictor is
	// consulted at miss detection and the partition granted immediately on
	// a below-threshold prediction; the actual count at miss service
	// verifies and retrains the predictor.
	Predictive
	// SharedSingle is the fully-shared single-level ROB of Raasch &
	// Reinhardt [9], the related-work design the paper contrasts the
	// statically partitioned baseline against: one pool of
	// Threads×L1Size entries that any thread may fill, commits drawn from
	// the oldest committable instructions of any thread.
	SharedSingle

	numSchemes
)

var schemeNames = [numSchemes]string{
	"baseline", "reactive", "relaxed-reactive", "count-delayed-reactive", "predictive",
	"shared-single",
}

// String returns the scheme name.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Config parameterizes the two-level ROB.
type Config struct {
	Threads int
	L1Size  int // private first-level entries per thread
	L2Size  int // shared second-level entries (allocated as one unit)

	Scheme          Scheme
	DoDThreshold    int
	RecheckInterval int // reactive recheck period (paper: 10)
	CountDelay      int // CDR snapshot delay (paper: 32)

	// Predictor shape (Predictive scheme).
	PredEntries  int
	PredPathHash bool
	PredHistBits uint
}

// DefaultConfig returns the paper's two-level shape for the given scheme
// and threshold: 32-entry first level, 384-entry second level, 10-cycle
// recheck, 32-cycle CDR delay, 4K-entry last-value predictor.
func DefaultConfig(threads int, scheme Scheme, threshold int) Config {
	return Config{
		Threads:         threads,
		L1Size:          32,
		L2Size:          384,
		Scheme:          scheme,
		DoDThreshold:    threshold,
		RecheckInterval: 10,
		CountDelay:      32,
		PredEntries:     4096,
		PredHistBits:    8,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Threads < 1 {
		return fmt.Errorf("rob: need at least one thread")
	}
	if c.L1Size < 1 {
		return fmt.Errorf("rob: first-level size must be positive")
	}
	if c.L2Size < 0 {
		return fmt.Errorf("rob: negative second-level size")
	}
	if c.Scheme >= numSchemes {
		return fmt.Errorf("rob: unknown scheme %d", c.Scheme)
	}
	if c.Scheme != Baseline && c.Scheme != SharedSingle {
		if c.L2Size == 0 {
			return fmt.Errorf("rob: scheme %v needs a second level", c.Scheme)
		}
		if c.DoDThreshold < 1 {
			return fmt.Errorf("rob: scheme %v needs a positive DoD threshold", c.Scheme)
		}
		if c.RecheckInterval < 1 {
			return fmt.Errorf("rob: recheck interval must be positive")
		}
	}
	if c.Scheme == CountDelayedReactive && c.CountDelay < 0 {
		return fmt.Errorf("rob: negative count delay")
	}
	if c.Scheme == Predictive && c.PredEntries < 1 {
		return fmt.Errorf("rob: predictive scheme needs a predictor table")
	}
	return nil
}

// Stats counts two-level manager behaviour.
type Stats struct {
	MissesObserved  uint64 // L2-missing loads reported
	Allocations     uint64 // second-level grants (first grant of a tenancy)
	PiggybackGrants uint64 // further misses granted under an existing tenancy
	Releases        uint64
	DeniedDoD       uint64 // trained/counted DoD at/above threshold
	DeniedUntrained uint64 // predictive lookup with no trained value (cold start)
	DeniedBusy      uint64 // conditions met but partition held elsewhere
	ServicedMisses  uint64
	DoDSum          uint64 // sum of service-time DoD counts (for the mean)
	OwnedCycles     uint64 // cycles the partition was held by some thread
}

// missRecord tracks one outstanding L2-missing load for scheme decisions.
type missRecord struct {
	slot        int32
	pc          uint64
	hist        uint64
	detectedAt  int64
	nextCheckAt int64
	decided     bool // allocation decision already made (denied or granted)
	wantAlloc   bool // decided-yes but partition was busy; retry
	granted     bool // this miss holds (a share of) the partition grant
	predicted   bool // a trained prediction was consulted (Predictive)
	predBelow   bool // ... and it was below the threshold
}

// TwoLevel owns the per-thread ROB rings and arbitrates the shared
// second-level partition. The pipeline drives it with miss events and a
// per-cycle Tick.
type TwoLevel struct {
	cfg     Config
	rings   []*Ring
	owner   int
	tickRot int // rotating start index for fair grant arbitration
	misses  [][]missRecord
	pred    *DoDPredictor
	stats   Stats

	// Grant lifecycle hooks, all optional (nil = no observer, no cost
	// beyond one nil check at each tenancy transition). Acquired fires
	// when a thread takes the free partition, Piggyback when a further
	// qualifying miss of the owner joins the tenancy, Released when the
	// owner's last granted miss retires (or is squashed) and the
	// partition frees. now is the cycle of the most recent event the
	// manager observed; squash-path releases may therefore be reported
	// up to one cycle early, never late.
	OnGrantAcquired  func(tid int, pc uint64, now int64)
	OnGrantPiggyback func(tid int, pc uint64, now int64)
	OnGrantReleased  func(tid int, now int64)

	// lastNow is the most recent cycle passed to Tick, MissDetected or
	// MissServiced — the timestamp source for hook calls on paths (the
	// squash walk) that do not carry the current cycle.
	lastNow int64

	// ownerGrants counts the owner's granted miss records still alive.
	// The partition is allocated as one atomic unit (§5.2): when a second
	// miss of the owning thread piggybacks on the tenancy, the partition
	// must be held until the *last* granted miss is serviced or squashed,
	// not released when the first one completes.
	ownerGrants int

	// Per-cycle scan bookkeeping: Tick only walks the miss records while
	// some record still needs an evaluation (undecided) or a grant retry
	// (retries). Both are maintained at record insert/decide/remove, and
	// pending[tid] holds the per-thread sum of both so Tick skips threads
	// with nothing actionable.
	undecided int
	retries   int
	pending   []int

	// nextDue[tid] is a conservative lower bound on the earliest
	// nextCheckAt among tid's undecided records: the evaluation scan is
	// skipped until that cycle. It may run early (after removals) but
	// never late, so evaluations happen on exactly the same cycles.
	// globalDue is the same bound across all threads, letting Tick return
	// before even the per-thread loop.
	nextDue   []int64
	globalDue int64
}

// New builds the two-level ROB state.
func New(cfg Config) (*TwoLevel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TwoLevel{
		cfg:     cfg,
		owner:   -1,
		rings:   make([]*Ring, cfg.Threads),
		misses:  make([][]missRecord, cfg.Threads),
		pending: make([]int, cfg.Threads),
		nextDue: make([]int64, cfg.Threads),
	}
	phys := cfg.L1Size + cfg.L2Size
	if cfg.Scheme == SharedSingle {
		// Any single thread may occupy the whole shared pool.
		phys = cfg.L1Size * cfg.Threads
	}
	for i := range t.rings {
		t.rings[i] = NewRing(phys)
	}
	if cfg.Scheme == Predictive {
		p, err := NewDoDPredictor(cfg.PredEntries, cfg.PredPathHash, cfg.PredHistBits)
		if err != nil {
			return nil, err
		}
		t.pred = p
	}
	return t, nil
}

// MustNew panics on config errors; for vetted static configs.
func MustNew(cfg Config) *TwoLevel {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the manager configuration.
func (t *TwoLevel) Config() Config { return t.cfg }

// Ring returns thread tid's ROB ring.
func (t *TwoLevel) Ring(tid int) *Ring { return t.rings[tid] }

// Owner returns the thread currently holding the second level, or -1.
func (t *TwoLevel) Owner() int { return t.owner }

// Capacity returns tid's effective ROB capacity this cycle.
func (t *TwoLevel) Capacity(tid int) int {
	if t.cfg.Scheme == SharedSingle {
		return t.cfg.L1Size * t.cfg.Threads
	}
	if t.owner == tid {
		return t.cfg.L1Size + t.cfg.L2Size
	}
	return t.cfg.L1Size
}

// CanDispatch reports whether tid may insert another instruction.
func (t *TwoLevel) CanDispatch(tid int) bool {
	if t.cfg.Scheme == SharedSingle {
		total := 0
		for _, r := range t.rings {
			total += r.Len()
		}
		return total < t.cfg.L1Size*t.cfg.Threads
	}
	return t.rings[tid].Len() < t.Capacity(tid)
}

// Stats returns the manager counters.
func (t *TwoLevel) Stats() Stats { return t.stats }

// NextDue returns the conservative earliest cycle at which a Tick scan
// could take an observable action for an undecided miss record (the
// globalDue bound: may be early, never late). Meaningful only while
// Undecided() > 0; the pipeline's skip-ahead engine uses it as the
// manager's next-interesting-cycle wake point.
func (t *TwoLevel) NextDue() int64 { return t.globalDue }

// Undecided returns how many tracked misses still await an allocation
// decision.
func (t *TwoLevel) Undecided() int { return t.undecided }

// PendingRetry reports whether some decided-yes miss is still waiting
// for the partition to free. After any Tick this implies the partition
// is held (a free partition is granted during the same Tick), so a
// retry alone never needs a future wake: the releasing event provides
// one.
func (t *TwoLevel) PendingRetry() bool { return t.retries > 0 }

// FastForward advances the per-cycle bookkeeping over a span of cycles
// the caller has proven to be no-ops for the manager: no miss events, no
// evaluation due (now stays below NextDue for every skipped cycle), no
// grant retry that could succeed, and no release pending. lastTick is
// the last cycle of the skipped span — Tick(lastTick) is what the
// bookkeeping ends up equivalent to — and k is the span length.
//
//tlrob:allocfree
func (t *TwoLevel) FastForward(lastTick int64, k int64) {
	t.lastNow = lastTick
	if t.owner >= 0 {
		t.stats.OwnedCycles += uint64(k)
	}
	if t.cfg.Scheme == Baseline || t.cfg.Scheme == SharedSingle {
		return
	}
	t.tickRot += int(k)
}

// Predictor returns the DoD predictor (nil unless Predictive).
func (t *TwoLevel) Predictor() *DoDPredictor { return t.pred }

// MissDetected informs the manager that the load in (tid, slot) has been
// discovered to miss in the L2 cache at cycle now. hist is the thread's
// branch history for path-hashed prediction.
//
//tlrob:allocfree
func (t *TwoLevel) MissDetected(tid int, slot int32, pc, hist uint64, now int64) {
	t.lastNow = now
	t.stats.MissesObserved++
	rec := missRecord{slot: slot, pc: pc, hist: hist, detectedAt: now, nextCheckAt: now}
	if t.cfg.Scheme == Baseline || t.cfg.Scheme == SharedSingle {
		// These never allocate, but the miss is still tracked so the
		// service-time dependent counts (Figure 1) are observed.
		rec.decided = true
	}
	if t.cfg.Scheme == CountDelayedReactive {
		rec.nextCheckAt = now + int64(t.cfg.CountDelay)
	}
	if t.cfg.Scheme == Predictive {
		dod, trained := t.pred.Predict(pc, hist)
		rec.decided = true
		switch {
		case !trained:
			// Cold start: the table has no value for this load yet, so no
			// prediction was made — this is not an above-threshold denial.
			t.stats.DeniedUntrained++
		case dod < t.cfg.DoDThreshold:
			rec.predicted = true
			rec.predBelow = true
			rec.wantAlloc = true
			t.tryAllocate(tid, &rec)
		default:
			rec.predicted = true
			t.stats.DeniedDoD++
		}
	}
	//tlrob:allow(amortized: bounded by in-flight L2 misses, reaches steady-state capacity; malloc-count tests pin the steady state)
	t.misses[tid] = append(t.misses[tid], rec)
	if !rec.decided {
		t.undecided++
		t.pending[tid]++
		if rec.nextCheckAt < t.nextDue[tid] {
			t.nextDue[tid] = rec.nextCheckAt
		}
		if rec.nextCheckAt < t.globalDue {
			t.globalDue = rec.nextCheckAt
		}
	}
	if rec.wantAlloc {
		t.retries++
		t.pending[tid]++
	}
}

// removeMissAt deletes record i of tid's tracked misses, preserving order
// (arbitration fairness depends on record age) without allocating, and
// returns the removed record.
//
//tlrob:allocfree
func (t *TwoLevel) removeMissAt(tid, i int) missRecord {
	recs := t.misses[tid]
	rec := recs[i]
	copy(recs[i:], recs[i+1:])
	t.misses[tid] = recs[:len(recs)-1]
	if !rec.decided {
		t.undecided--
		t.pending[tid]--
	}
	if rec.wantAlloc {
		t.retries--
		t.pending[tid]--
	}
	return rec
}

// grantDone retires one granted miss of tid; the partition is released
// only when the owner's last granted miss is gone (§5.2's atomic unit).
//
//tlrob:allocfree
func (t *TwoLevel) grantDone(tid int) {
	if t.owner != tid {
		return
	}
	t.ownerGrants--
	if t.ownerGrants <= 0 {
		t.ownerGrants = 0
		t.owner = -1
		t.stats.Releases++
		if t.OnGrantReleased != nil {
			t.OnGrantReleased(tid, t.lastNow)
		}
	}
}

// MissServiced informs the manager that the load in (tid, slot) has its
// data available at cycle now. It returns the service-time approximate DoD
// count (the quantity plotted in Figures 1/3/7) and ok=false if the load
// was not being tracked.
//
//tlrob:allocfree
func (t *TwoLevel) MissServiced(tid int, slot int32, now int64) (dod int, ok bool) {
	t.lastNow = now
	recs := t.misses[tid]
	for i := range recs {
		if recs[i].slot != slot {
			continue
		}
		rec := t.removeMissAt(tid, i)
		if rec.granted {
			// The shadow this grant was covering is over. The partition is
			// relinquished once the owner's last granted miss retires, so
			// it rotates across missing threads without cutting short a
			// piggybacked grant's still-live shadow.
			t.grantDone(tid)
		}
		dod = ApproxDoD(t.rings[tid], slot)
		t.stats.ServicedMisses++
		t.stats.DoDSum += uint64(dod)
		if t.cfg.Scheme == Predictive {
			// Verification + retraining (§4.2): the actual count is always
			// taken and stored for the next dynamic instance. Only trained
			// lookups are verified — a cold-start miss made no prediction.
			if rec.predicted {
				actualBelow := dod < t.cfg.DoDThreshold
				t.pred.Verify(rec.predBelow == actualBelow)
			}
			t.pred.Train(rec.pc, rec.hist, dod)
		}
		t.maybeRelease()
		return dod, true
	}
	return 0, false
}

// EntrySquashed drops any miss record attached to (tid, slot); call it for
// every squashed entry during a branch-misprediction walk. Squashing the
// granting miss releases the partition.
//
//tlrob:allocfree
func (t *TwoLevel) EntrySquashed(tid int, slot int32) {
	for i := 0; i < len(t.misses[tid]); {
		if t.misses[tid][i].slot != slot {
			i++
			continue
		}
		rec := t.removeMissAt(tid, i)
		if rec.granted {
			t.grantDone(tid)
		}
	}
}

// Tick runs the per-cycle scheme evaluation: reactive condition checks,
// pending-allocation retries and second-level release.
//
//tlrob:allocfree
func (t *TwoLevel) Tick(now int64) {
	t.lastNow = now
	if t.owner >= 0 {
		t.stats.OwnedCycles++
	}
	if t.cfg.Scheme == Baseline || t.cfg.Scheme == SharedSingle {
		return
	}
	t.tickRot++
	if t.undecided == 0 && t.retries == 0 {
		// Nothing needs evaluation or a grant retry; skip the record scan
		// (the common steady state on execution-bound phases).
		t.maybeRelease()
		return
	}
	n := len(t.misses)
	retryable := t.owner == -1 && t.retries > 0
	if !retryable && now < t.globalDue {
		// Every undecided record's next check lies in the future and no
		// grant retry can proceed; the whole scan would be a no-op.
		t.maybeRelease()
		return
	}
	tid := t.tickRot % n
	for i := 0; i < n; i++ {
		if i > 0 {
			tid++
			if tid == n {
				tid = 0
			}
		}
		if t.pending[tid] == 0 {
			continue
		}
		if !retryable && now < t.nextDue[tid] {
			continue
		}
		recs := t.misses[tid]
		due := int64(1) << 62
		for j := range recs {
			rec := &recs[j]
			if rec.decided {
				if rec.wantAlloc && t.owner == -1 {
					t.tryAllocate(tid, rec)
					if !rec.wantAlloc {
						t.retries--
						t.pending[tid]--
					}
				}
				continue
			}
			if now < rec.nextCheckAt {
				if rec.nextCheckAt < due {
					due = rec.nextCheckAt
				}
				continue
			}
			t.evaluate(tid, rec, now)
			if !rec.decided && rec.nextCheckAt < due {
				due = rec.nextCheckAt
			}
		}
		t.nextDue[tid] = due
	}
	gd := int64(1) << 62
	for j := range t.nextDue {
		if t.pending[j] > 0 && t.nextDue[j] < gd {
			gd = t.nextDue[j]
		}
	}
	t.globalDue = gd
	t.maybeRelease()
}

// evaluate runs one reactive-condition check for a tracked miss.
//
//tlrob:allocfree
func (t *TwoLevel) evaluate(tid int, rec *missRecord, now int64) {
	ring := t.rings[tid]
	switch t.cfg.Scheme {
	case Reactive:
		if !ring.IsOldest(rec.slot) || ring.Len() < t.cfg.L1Size {
			rec.nextCheckAt = now + int64(t.cfg.RecheckInterval)
			return
		}
	case RelaxedReactive:
		if !ring.IsOldest(rec.slot) {
			rec.nextCheckAt = now + int64(t.cfg.RecheckInterval)
			return
		}
	case CountDelayedReactive:
		// Delay already encoded in nextCheckAt; no structural conditions.
	case Baseline, Predictive, SharedSingle:
		// Misses are only tracked (and evaluate reached) under the
		// reactive schemes; Predictive decides at MissDetected and
		// Baseline/SharedSingle never allocate a second level.
		panic("rob: evaluate called under non-reactive scheme " + t.cfg.Scheme.String())
	default:
		panic("rob: evaluate called with unknown scheme")
	}
	dod := ApproxDoD(ring, rec.slot)
	rec.decided = true
	t.undecided--
	t.pending[tid]--
	if dod >= t.cfg.DoDThreshold {
		t.stats.DeniedDoD++
		return
	}
	rec.wantAlloc = true
	t.tryAllocate(tid, rec)
	if rec.wantAlloc {
		t.retries++
		t.pending[tid]++
	}
}

//tlrob:allocfree
func (t *TwoLevel) tryAllocate(tid int, rec *missRecord) {
	if t.owner == tid {
		// A further qualifying miss of the owning thread shares the
		// existing tenancy; the partition is then held until the last
		// granted miss retires (see grantDone).
		rec.wantAlloc = false
		rec.granted = true
		t.ownerGrants++
		t.stats.PiggybackGrants++
		if t.OnGrantPiggyback != nil {
			t.OnGrantPiggyback(tid, rec.pc, t.lastNow)
		}
		return
	}
	if t.owner != -1 {
		t.stats.DeniedBusy++
		return
	}
	t.owner = tid
	t.ownerGrants = 1
	t.stats.Allocations++
	rec.wantAlloc = false
	rec.granted = true
	if t.OnGrantAcquired != nil {
		t.OnGrantAcquired(tid, rec.pc, t.lastNow)
	}
}

// maybeRelease is a backstop: if the holder somehow has no tracked misses
// left (e.g. all squashed), relinquish. The normal release happens when
// the owner's last granted miss is serviced or squashed (grantDone).
//
//tlrob:allocfree
func (t *TwoLevel) maybeRelease() {
	if t.owner < 0 || len(t.misses[t.owner]) > 0 {
		return
	}
	tid := t.owner
	t.owner = -1
	t.ownerGrants = 0
	t.stats.Releases++
	if t.OnGrantReleased != nil {
		t.OnGrantReleased(tid, t.lastNow)
	}
}

// OutstandingMisses returns how many L2-missing loads are tracked for tid.
func (t *TwoLevel) OutstandingMisses(tid int) int { return len(t.misses[tid]) }

// CheckInvariants recounts the incremental record bookkeeping (tests only).
func (t *TwoLevel) CheckInvariants() error {
	undecided, retries, granted := 0, 0, 0
	for tid := range t.misses {
		perThread := 0
		for i := range t.misses[tid] {
			rec := &t.misses[tid][i]
			if !rec.decided {
				undecided++
				perThread++
			}
			if rec.wantAlloc {
				retries++
				perThread++
			}
			if rec.granted {
				if t.owner != tid {
					return fmt.Errorf("rob: thread %d holds a grant but owner is %d", tid, t.owner)
				}
				granted++
			}
		}
		if perThread != t.pending[tid] {
			return fmt.Errorf("rob: pending[%d]=%d but %d actionable records", tid, t.pending[tid], perThread)
		}
		for i := range t.misses[tid] {
			rec := &t.misses[tid][i]
			if !rec.decided && rec.nextCheckAt < t.nextDue[tid] {
				return fmt.Errorf("rob: nextDue[%d]=%d misses record due at %d", tid, t.nextDue[tid], rec.nextCheckAt)
			}
		}
	}
	if undecided != t.undecided {
		return fmt.Errorf("rob: undecided counter %d but %d undecided records", t.undecided, undecided)
	}
	if retries != t.retries {
		return fmt.Errorf("rob: retries counter %d but %d pending records", t.retries, retries)
	}
	if t.owner >= 0 && granted != t.ownerGrants {
		return fmt.Errorf("rob: ownerGrants %d but %d granted records", t.ownerGrants, granted)
	}
	if t.owner < 0 && t.ownerGrants != 0 {
		return fmt.Errorf("rob: no owner but ownerGrants %d", t.ownerGrants)
	}
	return nil
}
