// Package rob implements the paper's primary contribution: the two-level
// reorder buffer. It provides the per-thread ROB ring buffers, the
// low-complexity Degree-of-Dependence (DoD) counter (§4.1), the last-value
// DoD predictor (§4.2), and the four second-level allocation schemes
// evaluated in §5 (reactive, relaxed reactive, count-delayed reactive, and
// predictive).
package rob

import (
	"fmt"

	"repro/internal/uop"
)

// Ring is a per-thread ROB: a ring buffer of in-flight UOps in program
// order. Slots are stable physical positions (handles remain valid until
// the entry commits or is squashed). The physical capacity is the maximum
// the thread can ever hold (first level + the whole second level); the
// *effective* capacity at any moment is imposed by the TwoLevel manager.
//
// The ring also maintains the state behind the incremental DoD counter:
// a running total of live not-yet-executed entries plus a Fenwick tree
// over physical slots, so ApproxDoD answers "how many unexecuted entries
// are younger than this load" without walking the window. Execution and
// squash status must therefore be recorded through MarkExecuted and
// MarkSquashed rather than by writing the UOp fields directly.
type Ring struct {
	entries  []uop.UOp
	head     int32 // slot of the oldest entry
	count    int32
	capacity int32

	// unexec counts live entries whose "result valid" bit is still clear
	// (neither executed nor squashed); unexecBit is a Fenwick (binary
	// indexed) tree over physical slots holding one bit per such entry,
	// maintained at push/execute/squash/pop.
	unexec    int32
	unexecBit []int32
}

// NewRing allocates a ring with the given physical capacity.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("rob: non-positive ring capacity")
	}
	return &Ring{
		entries:   make([]uop.UOp, capacity),
		capacity:  int32(capacity),
		unexecBit: make([]int32, capacity+1),
	}
}

// Len returns the number of live entries.
func (r *Ring) Len() int { return int(r.count) }

// Cap returns the physical capacity.
func (r *Ring) Cap() int { return int(r.capacity) }

// bitAdd adds d to the Fenwick leaf for a physical slot.
//
//tlrob:allocfree
func (r *Ring) bitAdd(slot, d int32) {
	for i := slot + 1; i <= r.capacity; i += i & -i {
		r.unexecBit[i] += d
	}
}

// bitPrefix sums the Fenwick leaves for physical slots [0, slot].
//
//tlrob:allocfree
func (r *Ring) bitPrefix(slot int32) int32 {
	s := int32(0)
	for i := slot + 1; i > 0; i -= i & -i {
		s += r.unexecBit[i]
	}
	return s
}

// bitRange sums the leaves for physical slots [a, b] (a <= b).
//
//tlrob:allocfree
func (r *Ring) bitRange(a, b int32) int32 {
	if a == 0 {
		return r.bitPrefix(b)
	}
	return r.bitPrefix(b) - r.bitPrefix(a-1)
}

// counted reports whether an entry contributes to the unexecuted count.
func counted(e *uop.UOp) bool { return !e.Executed && !e.Squashed }

// wrap reduces x into [0, capacity) given x < 2*capacity — every ring
// index expression satisfies that bound, and a compare-and-subtract is
// measurably cheaper than the integer division a % compiles to.
func (r *Ring) wrap(x int32) int32 {
	if x >= r.capacity {
		x -= r.capacity
	}
	return x
}

// Push appends a zeroed entry at the tail and returns (slot, pointer) for
// the caller to fill. It panics on physical overflow — effective-capacity
// checks belong to the caller.
//
//tlrob:allocfree
func (r *Ring) Push() (int32, *uop.UOp) {
	if r.count == r.capacity {
		panic("rob: ring overflow")
	}
	slot := r.wrap(r.head + r.count)
	r.count++
	e := &r.entries[slot]
	*e = uop.UOp{}
	e.RobSlot = slot
	r.unexec++
	r.bitAdd(slot, 1)
	return slot, e
}

// MarkExecuted sets the entry's "result valid" bit. Execution status must
// flow through here (not a direct field write) so the incremental DoD
// counter stays in sync with the window contents.
//
//tlrob:allocfree
func (r *Ring) MarkExecuted(slot int32) {
	e := &r.entries[slot]
	if counted(e) {
		r.unexec--
		r.bitAdd(slot, -1)
	}
	e.Executed = true
}

// MarkSquashed flags the entry as squashed; like MarkExecuted it keeps the
// incremental DoD counter consistent and must be used instead of writing
// the field. The entry itself stays live until popped.
//
//tlrob:allocfree
func (r *Ring) MarkSquashed(slot int32) {
	e := &r.entries[slot]
	if counted(e) {
		r.unexec--
		r.bitAdd(slot, -1)
	}
	e.Squashed = true
}

// Unexecuted returns the number of live entries whose result is not yet
// valid — the incremental total behind ApproxDoD.
func (r *Ring) Unexecuted() int { return int(r.unexec) }

// UnexecutedYounger returns how many live not-yet-executed entries are
// strictly younger than the entry in slot, or 0 when the slot is dead.
// The load's own status does not matter: only the entries behind it are
// counted, exactly as the linear §4.1 walk does. Cost is O(log capacity)
// — two Fenwick prefix sums — versus the walk's O(window).
func (r *Ring) UnexecutedYounger(slot int32) int {
	pos := r.PosOf(slot)
	if pos < 0 || int32(pos)+1 >= r.count {
		return 0
	}
	// Entries younger than slot occupy the circular physical range
	// (slot+1 .. tail), split at the wrap point for prefix-sum queries.
	a := r.wrap(slot + 1)
	b := r.wrap(r.head + r.count - 1)
	if a <= b {
		return int(r.bitRange(a, b))
	}
	return int(r.bitRange(a, r.capacity-1) + r.bitRange(0, b))
}

// Head returns the oldest entry, or nil when empty.
func (r *Ring) Head() *uop.UOp {
	if r.count == 0 {
		return nil
	}
	return &r.entries[r.head]
}

// PopHead removes the oldest entry (commit).
//
//tlrob:allocfree
func (r *Ring) PopHead() {
	if r.count == 0 {
		panic("rob: pop from empty ring")
	}
	if e := &r.entries[r.head]; counted(e) {
		r.unexec--
		r.bitAdd(r.head, -1)
	}
	r.head = r.wrap(r.head + 1)
	r.count--
}

// Tail returns the youngest entry, or nil when empty.
func (r *Ring) Tail() *uop.UOp {
	if r.count == 0 {
		return nil
	}
	return &r.entries[r.wrap(r.head+r.count-1)]
}

// PopTail removes the youngest entry (squash walk).
//
//tlrob:allocfree
func (r *Ring) PopTail() {
	if r.count == 0 {
		panic("rob: pop from empty ring")
	}
	slot := r.wrap(r.head + r.count - 1)
	if e := &r.entries[slot]; counted(e) {
		r.unexec--
		r.bitAdd(slot, -1)
	}
	r.count--
}

// At returns the entry in a slot. The caller must only pass live slots.
func (r *Ring) At(slot int32) *uop.UOp { return &r.entries[slot] }

// SlotAt returns the slot of the i-th entry from the head (0 = oldest).
func (r *Ring) SlotAt(i int) int32 {
	return r.wrap(r.head + int32(i))
}

// PosOf returns an entry's distance from the head (0 = oldest) or -1 if
// the slot is not live.
func (r *Ring) PosOf(slot int32) int {
	if r.count == 0 {
		return -1
	}
	pos := r.wrap(slot - r.head + r.capacity)
	if pos >= r.count {
		return -1
	}
	return int(pos)
}

// IsOldest reports whether slot holds the oldest live entry.
func (r *Ring) IsOldest(slot int32) bool {
	return r.count > 0 && slot == r.head
}

// CheckInvariants validates ring bookkeeping (tests only).
func (r *Ring) CheckInvariants() error {
	if r.count < 0 || r.count > r.capacity {
		return fmt.Errorf("rob: count %d out of range", r.count)
	}
	if r.head < 0 || r.head >= r.capacity {
		return fmt.Errorf("rob: head %d out of range", r.head)
	}
	unexec := int32(0)
	for i := 0; i < int(r.count); i++ {
		slot := r.SlotAt(i)
		e := &r.entries[slot]
		if e.RobSlot != slot {
			return fmt.Errorf("rob: entry %d has stale slot %d", slot, e.RobSlot)
		}
		if counted(e) {
			unexec++
			if got := r.bitRange(slot, slot); got != 1 {
				return fmt.Errorf("rob: slot %d unexecuted but fenwick leaf is %d", slot, got)
			}
		} else if got := r.bitRange(slot, slot); got != 0 {
			return fmt.Errorf("rob: slot %d executed/squashed but fenwick leaf is %d", slot, got)
		}
	}
	if unexec != r.unexec {
		return fmt.Errorf("rob: unexec counter %d but %d live unexecuted entries", r.unexec, unexec)
	}
	if total := r.bitPrefix(r.capacity - 1); total != r.unexec {
		return fmt.Errorf("rob: fenwick total %d but unexec counter %d", total, r.unexec)
	}
	return nil
}
