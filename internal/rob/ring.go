// Package rob implements the paper's primary contribution: the two-level
// reorder buffer. It provides the per-thread ROB ring buffers, the
// low-complexity Degree-of-Dependence (DoD) counter (§4.1), the last-value
// DoD predictor (§4.2), and the four second-level allocation schemes
// evaluated in §5 (reactive, relaxed reactive, count-delayed reactive, and
// predictive).
package rob

import (
	"fmt"

	"repro/internal/uop"
)

// Ring is a per-thread ROB: a ring buffer of in-flight UOps in program
// order. Slots are stable physical positions (handles remain valid until
// the entry commits or is squashed). The physical capacity is the maximum
// the thread can ever hold (first level + the whole second level); the
// *effective* capacity at any moment is imposed by the TwoLevel manager.
type Ring struct {
	entries  []uop.UOp
	head     int32 // slot of the oldest entry
	count    int32
	capacity int32
}

// NewRing allocates a ring with the given physical capacity.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("rob: non-positive ring capacity")
	}
	return &Ring{
		entries:  make([]uop.UOp, capacity),
		capacity: int32(capacity),
	}
}

// Len returns the number of live entries.
func (r *Ring) Len() int { return int(r.count) }

// Cap returns the physical capacity.
func (r *Ring) Cap() int { return int(r.capacity) }

// Push appends a zeroed entry at the tail and returns (slot, pointer) for
// the caller to fill. It panics on physical overflow — effective-capacity
// checks belong to the caller.
func (r *Ring) Push() (int32, *uop.UOp) {
	if r.count == r.capacity {
		panic("rob: ring overflow")
	}
	slot := (r.head + r.count) % r.capacity
	r.count++
	e := &r.entries[slot]
	*e = uop.UOp{}
	e.RobSlot = slot
	return slot, e
}

// Head returns the oldest entry, or nil when empty.
func (r *Ring) Head() *uop.UOp {
	if r.count == 0 {
		return nil
	}
	return &r.entries[r.head]
}

// PopHead removes the oldest entry (commit).
func (r *Ring) PopHead() {
	if r.count == 0 {
		panic("rob: pop from empty ring")
	}
	r.head = (r.head + 1) % r.capacity
	r.count--
}

// Tail returns the youngest entry, or nil when empty.
func (r *Ring) Tail() *uop.UOp {
	if r.count == 0 {
		return nil
	}
	return &r.entries[(r.head+r.count-1)%r.capacity]
}

// PopTail removes the youngest entry (squash walk).
func (r *Ring) PopTail() {
	if r.count == 0 {
		panic("rob: pop from empty ring")
	}
	r.count--
}

// At returns the entry in a slot. The caller must only pass live slots.
func (r *Ring) At(slot int32) *uop.UOp { return &r.entries[slot] }

// SlotAt returns the slot of the i-th entry from the head (0 = oldest).
func (r *Ring) SlotAt(i int) int32 {
	return (r.head + int32(i)) % r.capacity
}

// PosOf returns an entry's distance from the head (0 = oldest) or -1 if
// the slot is not live.
func (r *Ring) PosOf(slot int32) int {
	if r.count == 0 {
		return -1
	}
	pos := (slot - r.head + r.capacity) % r.capacity
	if pos >= r.count {
		return -1
	}
	return int(pos)
}

// IsOldest reports whether slot holds the oldest live entry.
func (r *Ring) IsOldest(slot int32) bool {
	return r.count > 0 && slot == r.head
}

// CheckInvariants validates ring bookkeeping (tests only).
func (r *Ring) CheckInvariants() error {
	if r.count < 0 || r.count > r.capacity {
		return fmt.Errorf("rob: count %d out of range", r.count)
	}
	if r.head < 0 || r.head >= r.capacity {
		return fmt.Errorf("rob: head %d out of range", r.head)
	}
	for i := 0; i < int(r.count); i++ {
		slot := r.SlotAt(i)
		if r.entries[slot].RobSlot != slot {
			return fmt.Errorf("rob: entry %d has stale slot %d", slot, r.entries[slot].RobSlot)
		}
	}
	return nil
}
