package rob

import (
	"testing"
	"testing/quick"
)

func TestDoDPredictorLastValue(t *testing.T) {
	p, err := NewDoDPredictor(256, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, trained := p.Predict(0x40, 0); trained {
		t.Fatal("cold predictor trained")
	}
	p.Train(0x40, 0, 7)
	dod, trained := p.Predict(0x40, 0)
	if !trained || dod != 7 {
		t.Fatalf("predict = %d, %v", dod, trained)
	}
	p.Train(0x40, 0, 3) // last value wins
	if dod, _ := p.Predict(0x40, 0); dod != 3 {
		t.Fatalf("last value not stored: %d", dod)
	}
}

func TestDoDPredictorPathHash(t *testing.T) {
	p, err := NewDoDPredictor(256, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Same pc, different paths: independent entries (gshare-style, §4.2).
	p.Train(0x80, 0x01, 4)
	p.Train(0x80, 0x02, 9)
	if dod, _ := p.Predict(0x80, 0x01); dod != 4 {
		t.Fatalf("path 1 = %d", dod)
	}
	if dod, _ := p.Predict(0x80, 0x02); dod != 9 {
		t.Fatalf("path 2 = %d", dod)
	}
}

func TestDoDPredictorSaturates(t *testing.T) {
	p, _ := NewDoDPredictor(64, false, 0)
	p.Train(0x10, 0, 1<<20)
	if dod, _ := p.Predict(0x10, 0); dod != 0x7fff {
		t.Fatalf("saturation = %d", dod)
	}
}

func TestDoDPredictorValidation(t *testing.T) {
	if _, err := NewDoDPredictor(100, false, 0); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestDoDPredictorVerifyStats(t *testing.T) {
	p, _ := NewDoDPredictor(64, false, 0)
	p.Verify(true)
	p.Verify(false)
	p.Verify(false)
	s := p.Stats()
	if s.Correct != 1 || s.Wrong != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// Property: predict-after-train round-trips any count below saturation
// when there is no aliasing (single pc).
func TestQuickDoDRoundTrip(t *testing.T) {
	p, _ := NewDoDPredictor(1024, false, 0)
	f := func(pc uint64, count uint16) bool {
		want := int(count) & 0x7fff
		p.Train(pc, 0, want)
		got, trained := p.Predict(pc, 0)
		return trained && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
