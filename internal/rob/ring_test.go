package rob

import (
	"testing"
	"testing/quick"
)

func TestRingPushPop(t *testing.T) {
	r := NewRing(4)
	if r.Head() != nil || r.Tail() != nil {
		t.Fatal("empty ring has entries")
	}
	s1, e1 := r.Push()
	e1.Seq = 1
	s2, e2 := r.Push()
	e2.Seq = 2
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Head().Seq != 1 || r.Tail().Seq != 2 {
		t.Fatal("head/tail wrong")
	}
	if r.At(s1).Seq != 1 || r.At(s2).Seq != 2 {
		t.Fatal("slot access wrong")
	}
	r.PopHead()
	if r.Head().Seq != 2 {
		t.Fatal("pop head wrong")
	}
	r.PopTail()
	if r.Len() != 0 {
		t.Fatal("not empty after pops")
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(3)
	for i := uint64(1); i <= 10; i++ {
		_, e := r.Push()
		e.Seq = i
		if r.Len() == 3 {
			r.PopHead()
			r.PopHead()
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

func TestRingOverflowPanics(t *testing.T) {
	r := NewRing(2)
	r.Push()
	r.Push()
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	r.Push()
}

func TestPopEmptyPanics(t *testing.T) {
	r := NewRing(2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty pop did not panic")
		}
	}()
	r.PopHead()
}

func TestSlotAtAndPosOf(t *testing.T) {
	r := NewRing(4)
	// Advance head to force wrap.
	r.Push()
	r.Push()
	r.PopHead()
	r.PopHead()
	s3, _ := r.Push()
	s4, _ := r.Push()
	s5, _ := r.Push() // wraps to physical slot 0
	if r.SlotAt(0) != s3 || r.SlotAt(1) != s4 || r.SlotAt(2) != s5 {
		t.Fatal("SlotAt wrong after wrap")
	}
	if r.PosOf(s3) != 0 || r.PosOf(s5) != 2 {
		t.Fatal("PosOf wrong")
	}
	if r.PosOf((s5+1)%4) != -1 {
		t.Fatal("dead slot reported live")
	}
	if !r.IsOldest(s3) || r.IsOldest(s4) {
		t.Fatal("IsOldest wrong")
	}
}

// Property: a ring behaves like a FIFO of sequence numbers under random
// push / pop-head / pop-tail traffic.
func TestQuickRingFIFO(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRing(8)
		var model []uint64
		seq := uint64(0)
		for _, o := range ops {
			switch o % 4 {
			case 0, 1:
				if r.Len() == r.Cap() {
					continue
				}
				seq++
				_, e := r.Push()
				e.Seq = seq
				model = append(model, seq)
			case 2:
				if len(model) == 0 {
					continue
				}
				if r.Head().Seq != model[0] {
					return false
				}
				r.PopHead()
				model = model[1:]
			case 3:
				if len(model) == 0 {
					continue
				}
				if r.Tail().Seq != model[len(model)-1] {
					return false
				}
				r.PopTail()
				model = model[:len(model)-1]
			}
			if r.Len() != len(model) || r.CheckInvariants() != nil {
				return false
			}
		}
		for i := range model {
			if r.At(r.SlotAt(i)).Seq != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
