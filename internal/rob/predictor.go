package rob

import "fmt"

// DoDPredictor is the §4.2 last-value Degree-of-Dependence predictor: a
// PC-indexed table whose entry holds the dependent count observed at the
// previous dynamic instance of the same static load. Optionally the index
// is hashed with recent branch history ("gshare-style", §4.2) so different
// control-flow paths get different predictions.
type DoDPredictor struct {
	values   []int16 // -1 = never trained
	mask     uint64
	pathHash bool
	histBits uint
	stats    DoDPredStats
}

// DoDPredStats counts predictor behaviour, including the verification
// outcomes fed back by the mandatory post-miss count.
type DoDPredStats struct {
	Lookups   uint64
	Untrained uint64 // lookups that found no prior value
	Correct   uint64 // verified: predicted-below-threshold decision was right
	Wrong     uint64
}

// NewDoDPredictor builds a predictor with the given table size (power of
// two). If pathHash is true the index mixes in histBits of the thread's
// recent branch history.
func NewDoDPredictor(entries int, pathHash bool, histBits uint) (*DoDPredictor, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("rob: DoD predictor entries %d not a power of two", entries)
	}
	p := &DoDPredictor{
		values:   make([]int16, entries),
		mask:     uint64(entries - 1),
		pathHash: pathHash,
		histBits: histBits,
	}
	for i := range p.values {
		p.values[i] = -1
	}
	return p, nil
}

func (p *DoDPredictor) index(pc, hist uint64) int {
	idx := pc >> 2
	if p.pathHash {
		idx ^= hist & ((1 << p.histBits) - 1)
	}
	return int(idx & p.mask)
}

// Predict returns the predicted dependent count for the load at pc and
// whether the table had a trained value. hist is the thread's branch
// history (ignored unless path hashing is enabled).
func (p *DoDPredictor) Predict(pc, hist uint64) (dod int, trained bool) {
	p.stats.Lookups++
	v := p.values[p.index(pc, hist)]
	if v < 0 {
		p.stats.Untrained++
		return 0, false
	}
	return int(v), true
}

// Train stores the verified dependent count for the load at pc.
func (p *DoDPredictor) Train(pc, hist uint64, dod int) {
	if dod > 0x7fff {
		dod = 0x7fff
	}
	p.values[p.index(pc, hist)] = int16(dod)
}

// Verify records whether a below-threshold allocation decision made from a
// prediction agreed with the later actual count.
func (p *DoDPredictor) Verify(correct bool) {
	if correct {
		p.stats.Correct++
	} else {
		p.stats.Wrong++
	}
}

// Stats returns the predictor counters.
func (p *DoDPredictor) Stats() DoDPredStats { return p.stats }
