package rob

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

// pushLoad appends one load with the given PC-distinguishing sequence
// number and returns its slot.
func pushLoad(tl *TwoLevel, tid int, seq uint64) int32 {
	slot, ld := tl.Ring(tid).Push()
	ld.Op = isa.OpLoad
	ld.DestPhys = 100
	ld.Seq = seq
	return slot
}

// trainLoad runs one full detect/service round for a static load so the
// predictor holds a below-threshold value for it.
func trainLoad(t *testing.T, tl *TwoLevel, pc uint64, at int64) {
	t.Helper()
	slot := pushLoad(tl, 0, 1)
	tl.MissDetected(0, slot, pc, 0, at)
	if _, ok := tl.MissServiced(0, slot, at+40); !ok {
		t.Fatalf("training miss for pc %#x not tracked", pc)
	}
	tl.Ring(0).PopHead()
	tl.maybeRelease()
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPiggybackGrantHeldUntilLastService is the regression test for the
// double-grant early-release bug: when a second qualifying miss of the
// owning thread piggybacks on the tenancy, servicing the FIRST granted
// miss must not release the partition — the second grant's shadow is
// still live (§5.2's allocate-as-atomic-unit semantics).
func TestPiggybackGrantHeldUntilLastService(t *testing.T) {
	cfg := DefaultConfig(1, Predictive, 5)
	tl := MustNew(cfg)
	trainLoad(t, tl, 0x100, 0)
	trainLoad(t, tl, 0x200, 50)

	slotA := pushLoad(tl, 0, 10)
	slotB := pushLoad(tl, 0, 11)
	tl.MissDetected(0, slotA, 0x100, 0, 100)
	if tl.Owner() != 0 {
		t.Fatal("trained below-threshold prediction did not allocate")
	}
	tl.MissDetected(0, slotB, 0x200, 0, 101)
	s := tl.Stats()
	if s.PiggybackGrants != 1 {
		t.Fatalf("PiggybackGrants = %d, want 1", s.PiggybackGrants)
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	if _, ok := tl.MissServiced(0, slotA, 200); !ok {
		t.Fatal("miss A not tracked")
	}
	if tl.Owner() != 0 {
		t.Fatal("partition released while the piggybacked grant's shadow is live")
	}
	if got := tl.Stats().Releases; got != 0 {
		t.Fatalf("Releases = %d before the last granted miss retired", got)
	}

	if _, ok := tl.MissServiced(0, slotB, 300); !ok {
		t.Fatal("miss B not tracked")
	}
	if tl.Owner() != -1 {
		t.Fatal("partition not released after the last granted miss")
	}
	s = tl.Stats()
	if s.Allocations != 1 || s.Releases != 1 {
		t.Fatalf("Allocations=%d Releases=%d, want 1/1 for one tenancy", s.Allocations, s.Releases)
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPiggybackGrantSurvivesFirstSquash covers the squash side of the
// same lifecycle: squashing the first granted miss keeps the tenancy for
// the still-live second grant; squashing that too releases it.
func TestPiggybackGrantSurvivesFirstSquash(t *testing.T) {
	cfg := DefaultConfig(1, Predictive, 5)
	tl := MustNew(cfg)
	trainLoad(t, tl, 0x100, 0)
	trainLoad(t, tl, 0x200, 50)

	slotA := pushLoad(tl, 0, 10)
	slotB := pushLoad(tl, 0, 11)
	tl.MissDetected(0, slotA, 0x100, 0, 100)
	tl.MissDetected(0, slotB, 0x200, 0, 101)
	if tl.Owner() != 0 || tl.Stats().PiggybackGrants != 1 {
		t.Fatalf("setup: owner=%d stats=%+v", tl.Owner(), tl.Stats())
	}

	tl.EntrySquashed(0, slotA)
	if tl.Owner() != 0 {
		t.Fatal("partition released on first squash with a live piggybacked grant")
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tl.EntrySquashed(0, slotB)
	if tl.Owner() != -1 {
		t.Fatal("partition not released after the last granted miss was squashed")
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestUntrainedLookupNotCountedAsDoDDenial checks the accounting split: a
// cold predictor lookup makes no prediction, so it must bump
// DeniedUntrained and leave DeniedDoD (an above-threshold decision)
// untouched.
func TestUntrainedLookupNotCountedAsDoDDenial(t *testing.T) {
	cfg := DefaultConfig(1, Predictive, 5)
	tl := MustNew(cfg)
	slot := pushLoad(tl, 0, 1)
	tl.MissDetected(0, slot, 0x100, 0, 0)
	s := tl.Stats()
	if s.DeniedUntrained != 1 {
		t.Fatalf("DeniedUntrained = %d, want 1", s.DeniedUntrained)
	}
	if s.DeniedDoD != 0 {
		t.Fatalf("DeniedDoD = %d for a cold lookup, want 0", s.DeniedDoD)
	}
	if tl.Owner() != -1 {
		t.Fatal("cold lookup allocated the partition")
	}
}

// TestIncrementalDoDMatchesLinearWalk drives a ring through a long
// randomized insert/execute/squash/commit sequence and checks after every
// step that the incremental counter agrees with the original O(window)
// walk, and that the ring's internal invariants (unexec counter and every
// Fenwick leaf) hold. The seed is fixed for reproducibility.
func TestIncrementalDoDMatchesLinearWalk(t *testing.T) {
	DebugCrossCheckDoD = true
	defer func() { DebugCrossCheckDoD = false }()

	rng := rand.New(rand.NewSource(20080613)) // the paper's conference year+month+day
	const capacity = 48
	r := NewRing(capacity)
	seq := uint64(1)
	for step := 0; step < 25_000; step++ {
		switch op := rng.Intn(100); {
		case op < 40: // dispatch
			if r.Len() < capacity {
				_, e := r.Push()
				e.Seq = seq
				seq++
				e.DestPhys = uop.NoReg
				e.SrcPhys = [2]int32{uop.NoReg, uop.NoReg}
				if rng.Intn(4) == 0 {
					e.Op = isa.OpLoad
					e.DestPhys = int32(100 + rng.Intn(32))
				}
			}
		case op < 60: // execute a random live entry
			if r.Len() > 0 {
				r.MarkExecuted(r.SlotAt(rng.Intn(r.Len())))
			}
		case op < 70: // squash a random live entry (misprediction walk)
			if r.Len() > 0 {
				r.MarkSquashed(r.SlotAt(rng.Intn(r.Len())))
			}
		case op < 90: // commit
			if r.Len() > 0 {
				r.PopHead()
			}
		default: // tail removal (squash walk pops)
			if r.Len() > 0 {
				r.PopTail()
			}
		}
		if r.Len() > 0 {
			slot := r.SlotAt(rng.Intn(r.Len()))
			// ApproxDoD itself cross-checks (DebugCrossCheckDoD panics on
			// divergence); the explicit comparison gives a test failure
			// with context instead.
			if got, want := ApproxDoD(r, slot), ApproxDoDLinear(r, slot); got != want {
				t.Fatalf("step %d slot %d: incremental %d != linear %d", step, slot, got, want)
			}
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
