package rob

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/uop"
)

// buildWindow pushes a load followed by entries; executed selects which of
// the younger entries have completed. Returns the ring and the load slot.
func buildWindow(younger int, executed func(i int) bool) (*Ring, int32) {
	r := NewRing(64)
	slot, ld := r.Push()
	ld.Op = isa.OpLoad
	ld.DestPhys = 100
	ld.Seq = 1
	for i := 0; i < younger; i++ {
		s, e := r.Push()
		e.Op = isa.OpIntAlu
		e.Seq = uint64(i + 2)
		e.DestPhys = int32(200 + i)
		e.SrcPhys = [2]int32{uop.NoReg, uop.NoReg}
		if executed(i) {
			r.MarkExecuted(s)
		}
	}
	return r, slot
}

func TestApproxDoDCountsUnexecuted(t *testing.T) {
	r, slot := buildWindow(10, func(i int) bool { return i%2 == 0 })
	if got := ApproxDoD(r, slot); got != 5 {
		t.Fatalf("ApproxDoD = %d, want 5", got)
	}
}

func TestApproxDoDEmptyShadow(t *testing.T) {
	r, slot := buildWindow(0, nil)
	if got := ApproxDoD(r, slot); got != 0 {
		t.Fatalf("ApproxDoD = %d", got)
	}
}

func TestApproxDoDDeadSlot(t *testing.T) {
	r, slot := buildWindow(3, func(int) bool { return false })
	r.PopHead() // the load commits/leaves
	if got := ApproxDoD(r, slot); got != 0 {
		t.Fatalf("ApproxDoD on dead slot = %d", got)
	}
}

func TestApproxDoDSkipsSquashed(t *testing.T) {
	r, slot := buildWindow(4, func(int) bool { return false })
	r.MarkSquashed(r.SlotAt(2))
	if got := ApproxDoD(r, slot); got != 3 {
		t.Fatalf("ApproxDoD = %d, want 3", got)
	}
}

func TestExactDoDDirectAndTransitive(t *testing.T) {
	r := NewRing(16)
	slot, ld := r.Push()
	ld.Op = isa.OpLoad
	ld.DestPhys = 100
	// consumer of the load
	_, c1 := r.Push()
	c1.SrcPhys = [2]int32{100, uop.NoReg}
	c1.DestPhys = 101
	// consumer of the consumer (transitive)
	_, c2 := r.Push()
	c2.SrcPhys = [2]int32{101, 7}
	c2.DestPhys = 102
	// independent instruction
	_, ind := r.Push()
	ind.SrcPhys = [2]int32{7, 8}
	ind.DestPhys = 103
	// second-operand dependence
	_, c3 := r.Push()
	c3.SrcPhys = [2]int32{9, 102}
	c3.DestPhys = uop.NoReg
	if got := ExactDoD(r, slot); got != 3 {
		t.Fatalf("ExactDoD = %d, want 3", got)
	}
}

func TestExactDoDNoDest(t *testing.T) {
	r := NewRing(8)
	slot, st := r.Push()
	st.Op = isa.OpStore
	st.DestPhys = uop.NoReg
	_, e := r.Push()
	e.SrcPhys = [2]int32{1, 2}
	if got := ExactDoD(r, slot); got != 0 {
		t.Fatalf("ExactDoD for store = %d", got)
	}
}

func TestApproxOverestimatesExact(t *testing.T) {
	// The paper's claim: every unexecuted younger instruction is assumed
	// dependent, so the approximation is an overestimate once independent
	// work has drained — and equals the truth when only dependents remain.
	r := NewRing(16)
	slot, ld := r.Push()
	ld.Op = isa.OpLoad
	ld.DestPhys = 100
	// dependent, unexecuted
	_, dep := r.Push()
	dep.SrcPhys = [2]int32{100, uop.NoReg}
	dep.DestPhys = 101
	// independent but not yet executed (counting taken too early)
	indSlot, ind := r.Push()
	ind.SrcPhys = [2]int32{7, uop.NoReg}
	ind.DestPhys = 102
	approx := ApproxDoD(r, slot)
	exact := ExactDoD(r, slot)
	if approx != 2 || exact != 1 {
		t.Fatalf("approx=%d exact=%d", approx, exact)
	}
	// Later: the independent instruction has executed; counts agree.
	r.MarkExecuted(indSlot)
	if got := ApproxDoD(r, slot); got != exact {
		t.Fatalf("after drain approx=%d exact=%d", got, exact)
	}
}
