package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

func tinyRunner() *Runner {
	return NewRunner(Params{Budget: 6_000, Seed: 1})
}

func TestSingleIPCsCached(t *testing.T) {
	r := tinyRunner()
	a, err := r.SingleIPCs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) < 15 {
		t.Fatalf("%d single IPCs", len(a))
	}
	b, err := r.SingleIPCs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("cache miss for %s", k)
		}
	}
}

func TestRunSchemeShape(t *testing.T) {
	r := tinyRunner()
	s, err := r.RunScheme(context.Background(), Baseline32())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 11 {
		t.Fatalf("%d rows", len(s.Rows))
	}
	if s.AvgFT <= 0 {
		t.Fatalf("avg FT %v", s.AvgFT)
	}
	for _, row := range s.Rows {
		if row.Result.Cycles == 0 {
			t.Fatalf("%s did not run", row.Mix)
		}
	}
}

func TestFTComparisonSpeedups(t *testing.T) {
	r := tinyRunner()
	series, err := r.FTComparison(context.Background(), Baseline32(), RROB(16))
	if err != nil {
		t.Fatal(err)
	}
	if series[0].Speedup != 0 {
		t.Fatalf("baseline speedup %v", series[0].Speedup)
	}
	if series[1].Label != "2-Level R-ROB16" {
		t.Fatalf("label %q", series[1].Label)
	}
}

func TestReportRendering(t *testing.T) {
	r := tinyRunner()
	series, err := r.FTComparison(context.Background(), Baseline32(), RROB(16))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteFTTable(&sb, Fig2, series)
	out := sb.String()
	for _, want := range []string{"Mix 1", "Mix 11", "Average", "Speedup", "Baseline_32"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	rows, err := r.DoDHistogram(context.Background(), Baseline32())
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	WriteDoDHistogram(&sb, Fig1, rows)
	if !strings.Contains(sb.String(), "mean") || !strings.Contains(sb.String(), "M11") {
		t.Fatalf("histogram table malformed:\n%s", sb.String())
	}

	sb.Reset()
	WriteTable1(&sb)
	if !strings.Contains(sb.String(), "500-cycle first chunk") {
		t.Fatal("Table 1 missing memory row")
	}
	sb.Reset()
	WriteTable2(&sb)
	if !strings.Contains(sb.String(), "Mix 10") {
		t.Fatal("Table 2 missing rows")
	}
}

func TestSchemeSpecLabels(t *testing.T) {
	cases := map[string]SchemeSpec{
		"Baseline_32":             Baseline32(),
		"Baseline_128":            Baseline128(),
		"2-Level R-ROB16":         RROB(16),
		"2-Level Relaxed R-ROB15": RelaxedRROB(15),
		"2-Level CDR-ROB15":       CDRROB(15),
		"2-Level P-ROB5":          PROB(5),
	}
	for want, spec := range cases {
		if spec.Label != want {
			t.Errorf("label %q != %q", spec.Label, want)
		}
	}
}

func TestSweeps(t *testing.T) {
	r := tinyRunner()
	pts, err := r.SweepDoDThreshold(context.Background(), []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Value != 4 || pts[1].Value != 16 {
		t.Fatalf("points: %+v", pts)
	}
	for _, p := range pts {
		if p.AvgFT <= 0 {
			t.Fatalf("degenerate sweep point %+v", p)
		}
	}
	var sb strings.Builder
	WriteSweep(&sb, "t", pts)
	if !strings.Contains(sb.String(), "avg FT") {
		t.Fatal("sweep rendering broken")
	}
}

func TestDoDGrowth(t *testing.T) {
	a := SchemeSeries{AvgDoD: 10}
	b := SchemeSeries{AvgDoD: 15.6}
	if g := DoDGrowth(a, b); g < 0.55 || g > 0.57 {
		t.Fatalf("growth = %v", g)
	}
}

// TestRunSchemeCancellation verifies the satellite requirement that a
// caller can abort a sweep: once ctx is cancelled, no further mixes are
// dispatched, the call returns the context error, and the workers are
// freed well before all 11 mixes have run.
func TestRunSchemeCancellation(t *testing.T) {
	r := NewRunner(Params{Budget: 20_000, Seed: 1, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var mixesDone atomic.Int32
	r.OnProgress = func(p Progress) {
		if p.Stage == "mix" {
			if mixesDone.Add(1) == 1 {
				cancel() // cancel as soon as the first mix completes
			}
		}
	}
	_, err := r.RunScheme(ctx, Baseline32())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := mixesDone.Load(); n >= 11 {
		t.Fatalf("sweep ran to completion (%d mixes) despite cancellation", n)
	}
}

func TestRunSchemePreCancelled(t *testing.T) {
	r := tinyRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunScheme(ctx, Baseline32()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunMixesSubset verifies subset runs only evaluate (and only report)
// the requested mixes.
func TestRunMixesSubset(t *testing.T) {
	r := tinyRunner()
	mix, ok := workload.MixByName("Mix 1")
	if !ok {
		t.Fatal("Mix 1 missing")
	}
	s, err := r.RunMixes(context.Background(), Baseline32(), []workload.Mix{mix})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 1 || s.Rows[0].Mix != "Mix 1" {
		t.Fatalf("rows: %+v", s.Rows)
	}
	if s.AvgFT != s.Rows[0].FairThroughput {
		t.Fatalf("avg %v != row %v", s.AvgFT, s.Rows[0].FairThroughput)
	}
}
