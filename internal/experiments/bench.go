package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// BenchParams configures a simulator-performance sweep: every scheme is
// run over every mix with a fixed seed, and the wall-clock cost of
// simulation (not the simulated machine's quality) is recorded.
type BenchParams struct {
	Budget  uint64 // instructions per thread per run
	Seed    uint64
	Mixes   []workload.Mix // defaults to the memory-bound Table-2 mixes 1-4
	Schemes []SchemeSpec   // defaults to the paper's evaluated configurations
	// Naive forces the cycle-by-cycle reference engine on every run,
	// for measuring the skip-ahead engine's speedup on one machine.
	Naive bool
	// Repeat is the number of measured runs per row; the fastest is
	// reported (default 3). Wall-clock on a shared machine is noisy
	// enough that a single run can be off by 2-4x, which would make the
	// CI throughput-regression gate flake.
	Repeat int
}

// DefaultBenchParams returns the sweep cmd/bench runs: the memory-bound
// mixes (the paper's target workloads, and the ones that stress the miss
// tracking and DoD counting hot paths) under every evaluated scheme.
func DefaultBenchParams() BenchParams {
	return BenchParams{
		Budget: 50_000,
		Seed:   1,
		Mixes:  workload.Mixes[:4],
		Schemes: []SchemeSpec{
			Baseline32(),
			RROB(16),
			RelaxedRROB(15),
			CDRROB(15),
			PROB(5),
			{Label: "Shared_128", Opt: tlrob.Options{Scheme: tlrob.SharedSingle, L1ROB: 32}},
		},
	}
}

// BenchRow is one (scheme, mix) performance measurement.
type BenchRow struct {
	Scheme              string  `json:"scheme"`
	Mix                 string  `json:"mix"`
	Cycles              int64   `json:"cycles"`       // simulated cycles
	Instructions        uint64  `json:"instructions"` // committed, summed over threads
	WallNanos           int64   `json:"wall_nanos"`
	CyclesPerSec        float64 `json:"cycles_per_sec"`
	NanosPerInstruction float64 `json:"ns_per_instruction"`
	AllocsPerOp         float64 `json:"allocs_per_op"` // heap objects per run
	BytesPerOp          float64 `json:"bytes_per_op"`
	AllocsPerKiloInstr  float64 `json:"allocs_per_kilo_instruction"`
	FairThroughput      float64 `json:"fair_throughput"`
	DoDMean             float64 `json:"dod_mean"`
}

// BenchReport is the machine-readable output of a sweep
// (BENCH_results.json).
type BenchReport struct {
	Budget    uint64     `json:"budget"`
	Seed      uint64     `json:"seed"`
	GoVersion string     `json:"go_version"`
	Rows      []BenchRow `json:"rows"`
}

// RunBench executes the sweep sequentially (parallel runs would pollute
// each other's wall-clock and allocation measurements) and returns the
// report. Each configuration is run once unmeasured to warm the
// allocator-backed scratch pools, then once measured.
func RunBench(p BenchParams) (BenchReport, error) {
	if p.Budget == 0 || p.Seed == 0 || len(p.Mixes) == 0 || len(p.Schemes) == 0 {
		def := DefaultBenchParams()
		if p.Budget == 0 {
			p.Budget = def.Budget
		}
		if p.Seed == 0 {
			p.Seed = def.Seed
		}
		if len(p.Mixes) == 0 {
			p.Mixes = def.Mixes
		}
		if len(p.Schemes) == 0 {
			p.Schemes = def.Schemes
		}
	}
	rep := BenchReport{Budget: p.Budget, Seed: p.Seed, GoVersion: runtime.Version()}
	var ms0, ms1 runtime.MemStats
	seen := map[string]bool{}
	var benches []string
	for _, mix := range p.Mixes {
		for _, b := range mix.Benchmarks {
			if !seen[b] {
				seen[b] = true
				benches = append(benches, b)
			}
		}
	}
	for _, spec := range p.Schemes {
		opt := spec.Opt
		opt.Budget = p.Budget
		opt.Seed = p.Seed
		opt.NaiveTicker = p.Naive
		// Single-thread reference IPCs are computed outside the timed
		// region so the measurement covers exactly one 4-thread run.
		singles, err := tlrob.SingleIPCs(benches, opt)
		if err != nil {
			return rep, fmt.Errorf("bench %s singles: %w", spec.Label, err)
		}
		for _, mix := range p.Mixes {
			if _, err := tlrob.RunMix(mix, opt, singles); err != nil { // warm-up
				return rep, fmt.Errorf("bench %s %s: %w", spec.Label, mix.Name, err)
			}
			repeat := p.Repeat
			if repeat < 1 {
				repeat = 3
			}
			var res tlrob.MixResult
			var wall time.Duration
			for i := 0; i < repeat; i++ {
				runtime.GC()
				runtime.ReadMemStats(&ms0)
				//tlrob:allow(bench measures host wall time; simulated results stay seed-deterministic)
				start := time.Now()
				r, err := tlrob.RunMix(mix, opt, singles)
				//tlrob:allow(bench measures host wall time; simulated results stay seed-deterministic)
				w := time.Since(start)
				if err != nil {
					return rep, fmt.Errorf("bench %s %s: %w", spec.Label, mix.Name, err)
				}
				runtime.ReadMemStats(&ms1)
				// Keep the fastest run: allocations and simulated results
				// are identical across repeats (seed-deterministic), only
				// the host's scheduling noise differs.
				if i == 0 || w < wall {
					res, wall = r, w
				}
			}
			var committed uint64
			for _, th := range res.Threads {
				committed += th.Committed
			}
			row := BenchRow{
				Scheme:              spec.Label,
				Mix:                 mix.Name,
				Cycles:              res.Cycles,
				Instructions:        committed,
				WallNanos:           wall.Nanoseconds(),
				CyclesPerSec:        metrics.PerSecond(float64(res.Cycles), wall.Nanoseconds()),
				NanosPerInstruction: metrics.NanosPer(wall.Nanoseconds(), float64(committed)),
				AllocsPerOp:         float64(ms1.Mallocs - ms0.Mallocs),
				BytesPerOp:          float64(ms1.TotalAlloc - ms0.TotalAlloc),
				FairThroughput:      res.FairThroughput,
				DoDMean:             res.DoDMean,
			}
			if committed > 0 {
				row.AllocsPerKiloInstr = row.AllocsPerOp * 1000 / float64(committed)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// WriteJSON writes the report to path, indented for diffability.
func (r BenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
