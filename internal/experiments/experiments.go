// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the DoD histograms of Figures 1, 3 and 7 and the
// fair-throughput comparisons of Figures 2, 4, 5 and 6, over the eleven
// Table-2 mixes. Runs are distributed across CPU cores; single-threaded
// reference IPCs are computed once and shared.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Params controls the experiment sweep.
type Params struct {
	Budget  uint64 // instructions per thread per run
	Seed    uint64
	Workers int // concurrent simulations; 0 = GOMAXPROCS

	// Telemetry enables internal/telemetry on every mix run of the
	// sweep: rows then carry stall-attribution and occupancy summaries
	// and progress events include them. Single-threaded reference runs
	// are never instrumented (only their IPC is consumed).
	Telemetry bool
}

// DefaultParams returns a laptop-scale sweep (the paper used 100M
// SimPoints; 200k per thread preserves the steady-state shapes on the
// synthetic workloads — see DESIGN.md).
func DefaultParams() Params {
	return Params{Budget: 200_000, Seed: 1}
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SchemeSpec names one machine configuration of the evaluation.
type SchemeSpec struct {
	Label string
	Opt   tlrob.Options
}

// Baseline32 is the paper's Baseline_32 reference machine.
func Baseline32() SchemeSpec {
	return SchemeSpec{Label: "Baseline_32", Opt: tlrob.Options{Scheme: tlrob.Baseline, L1ROB: 32}}
}

// Baseline128 is the same-total-entries single-level configuration.
func Baseline128() SchemeSpec {
	return SchemeSpec{Label: "Baseline_128", Opt: tlrob.Options{Scheme: tlrob.Baseline, L1ROB: 128}}
}

// RROB is 2-Level R-ROB with the given DoD threshold.
func RROB(threshold int) SchemeSpec {
	return SchemeSpec{
		Label: fmt.Sprintf("2-Level R-ROB%d", threshold),
		Opt:   tlrob.Options{Scheme: tlrob.Reactive, DoDThreshold: threshold},
	}
}

// RelaxedRROB is 2-Level Relaxed R-ROB.
func RelaxedRROB(threshold int) SchemeSpec {
	return SchemeSpec{
		Label: fmt.Sprintf("2-Level Relaxed R-ROB%d", threshold),
		Opt:   tlrob.Options{Scheme: tlrob.RelaxedReactive, DoDThreshold: threshold},
	}
}

// CDRROB is 2-Level CDR-ROB with the paper's 32-cycle count delay.
func CDRROB(threshold int) SchemeSpec {
	return SchemeSpec{
		Label: fmt.Sprintf("2-Level CDR-ROB%d", threshold),
		Opt:   tlrob.Options{Scheme: tlrob.CountDelayed, DoDThreshold: threshold, CountDelay: 32},
	}
}

// PROB is 2-Level P-ROB with the given threshold.
func PROB(threshold int) SchemeSpec {
	return SchemeSpec{
		Label: fmt.Sprintf("2-Level P-ROB%d", threshold),
		Opt:   tlrob.Options{Scheme: tlrob.Predictive, DoDThreshold: threshold},
	}
}

// SchemeByName resolves a scheme label (as accepted by cmd/experiments
// and the simd job API) to its SchemeSpec. threshold overrides the
// scheme's default DoD threshold when > 0; schemes without a threshold
// ignore it. Recognised names, case-insensitively: baseline/baseline32,
// baseline128, rrob, relaxed-rrob/relaxed, cdr-rrob/cdr, prob,
// shared128/shared.
func SchemeByName(name string, threshold int) (SchemeSpec, error) {
	th := func(def int) int {
		if threshold > 0 {
			return threshold
		}
		return def
	}
	switch strings.ToLower(name) {
	case "baseline", "baseline32":
		return Baseline32(), nil
	case "baseline128":
		return Baseline128(), nil
	case "rrob":
		return RROB(th(16)), nil
	case "relaxed-rrob", "relaxed":
		return RelaxedRROB(th(15)), nil
	case "cdr-rrob", "cdr":
		return CDRROB(th(15)), nil
	case "prob":
		return PROB(th(5)), nil
	case "shared128", "shared":
		return SchemeSpec{
			Label: "Shared_128",
			Opt:   tlrob.Options{Scheme: tlrob.SharedSingle, L1ROB: 32},
		}, nil
	default:
		return SchemeSpec{}, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// MixRow is one mix's outcome under one scheme.
type MixRow struct {
	Mix            string
	FairThroughput float64
	Throughput     float64
	DoDMean        float64
	Result         tlrob.MixResult
}

// SchemeSeries is one scheme evaluated over all mixes.
type SchemeSeries struct {
	Label   string
	Rows    []MixRow
	AvgFT   float64 // arithmetic mean over mixes, as the paper's "Average" bar
	AvgDoD  float64
	AvgIPC  float64
	Speedup float64 // vs the baseline series, filled by FTComparison
}

// Progress reports one completed unit of a sweep. Stage is "single" while
// the single-threaded reference IPCs are computed and "mix" for the
// multithreaded runs; Index is the unit's slot (0-based) and Total the
// number of units in the stage. FairThroughput is filled for mix units.
type Progress struct {
	Scheme         string
	Stage          string // "single" | "mix"
	Item           string // benchmark or mix name
	Index          int
	Total          int
	FairThroughput float64
	// Telemetry is the completed mix run's stall/occupancy digest; nil
	// unless Params.Telemetry is set (and always nil for "single" units).
	Telemetry *telemetry.Summary
}

// Runner executes experiment sweeps with shared single-IPC references.
type Runner struct {
	params  Params
	mu      sync.Mutex
	singles map[string]float64

	// OnProgress, if non-nil, is invoked from worker goroutines as each
	// unit of a sweep completes. It must be safe for concurrent use.
	OnProgress func(Progress)
}

// NewRunner builds a runner.
func NewRunner(p Params) *Runner {
	return &Runner{params: p, singles: make(map[string]float64)}
}

func (r *Runner) progress(p Progress) {
	if r.OnProgress != nil {
		r.OnProgress(p)
	}
}

// SingleIPCs returns (computing on first use) the single-threaded
// reference IPC of every benchmark used by the Table-2 mixes.
func (r *Runner) SingleIPCs(ctx context.Context) (map[string]float64, error) {
	names := map[string]bool{}
	for _, m := range workload.Mixes {
		for _, b := range m.Benchmarks {
			names[b] = true
		}
	}
	return r.singleIPCsFor(ctx, "", names)
}

// singleIPCsFor computes (memoizing across calls) the reference IPCs of
// the given benchmark set. scheme labels progress events only.
func (r *Runner) singleIPCsFor(ctx context.Context, scheme string, names map[string]bool) (map[string]float64, error) {
	var todo []string
	r.mu.Lock()
	for b := range names {
		if _, ok := r.singles[b]; !ok {
			todo = append(todo, b)
		}
	}
	r.mu.Unlock()
	sort.Strings(todo)
	if len(todo) == 0 {
		return r.copySingles(), nil
	}
	opt := tlrob.Options{Budget: r.params.Budget, Seed: r.params.Seed}
	err := r.parallel(ctx, len(todo), func(i int) error {
		res, err := tlrob.RunSingle(todo[i], opt)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.singles[todo[i]] = res.IPC
		r.mu.Unlock()
		r.progress(Progress{Scheme: scheme, Stage: "single", Item: todo[i], Index: i, Total: len(todo)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r.copySingles(), nil
}

func (r *Runner) copySingles() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.singles))
	for k, v := range r.singles {
		out[k] = v
	}
	return out
}

// parallel runs fn(0..n-1) across the worker pool. Every error is
// collected and returned joined (a failing sweep reports all broken
// configurations, not an arbitrary first one), and no new jobs are
// dispatched once a failure is observed or ctx is cancelled —
// already-running jobs finish, queued ones are dropped. A cancelled
// context surfaces as ctx.Err() joined ahead of any job errors.
func (r *Runner) parallel(ctx context.Context, n int, fn func(i int) error) error {
	workers := r.params.workers()
	if workers > n {
		workers = n
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   []error
		failed atomic.Bool
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain without running
				}
				if err := fn(i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n && !failed.Load(); i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append([]error{err}, errs...)
	}
	return errors.Join(errs...)
}

// RunScheme evaluates one scheme over all Table-2 mixes.
func (r *Runner) RunScheme(ctx context.Context, spec SchemeSpec) (SchemeSeries, error) {
	return r.RunMixes(ctx, spec, workload.Mixes)
}

// RunMixes evaluates one scheme over the given mixes. Cancelling ctx
// stops dispatching further runs (in-flight single runs finish, the
// rest are abandoned) and returns the context error.
func (r *Runner) RunMixes(ctx context.Context, spec SchemeSpec, mixes []workload.Mix) (SchemeSeries, error) {
	if len(mixes) == 0 {
		return SchemeSeries{}, fmt.Errorf("experiments: no mixes given")
	}
	names := map[string]bool{}
	for _, m := range mixes {
		for _, b := range m.Benchmarks {
			names[b] = true
		}
	}
	singles, err := r.singleIPCsFor(ctx, spec.Label, names)
	if err != nil {
		return SchemeSeries{}, err
	}
	series := SchemeSeries{Label: spec.Label, Rows: make([]MixRow, len(mixes))}
	opt := spec.Opt
	opt.Budget = r.params.Budget
	opt.Seed = r.params.Seed
	if r.params.Telemetry {
		opt.Telemetry = true
	}
	err = r.parallel(ctx, len(mixes), func(i int) error {
		mix := mixes[i]
		res, err := tlrob.RunMix(mix, opt, singles)
		if err != nil {
			return err
		}
		series.Rows[i] = MixRow{
			Mix:            mix.Name,
			FairThroughput: res.FairThroughput,
			Throughput:     res.Throughput,
			DoDMean:        res.DoDMean,
			Result:         res,
		}
		r.progress(Progress{
			Scheme: spec.Label, Stage: "mix", Item: mix.Name,
			Index: i, Total: len(mixes), FairThroughput: res.FairThroughput,
			Telemetry: res.Telemetry,
		})
		return nil
	})
	if err != nil {
		return SchemeSeries{}, err
	}
	for _, row := range series.Rows {
		series.AvgFT += row.FairThroughput
		series.AvgDoD += row.DoDMean
		series.AvgIPC += row.Throughput
	}
	n := float64(len(series.Rows))
	series.AvgFT /= n
	series.AvgDoD /= n
	series.AvgIPC /= n
	return series, nil
}

// FTComparison runs the baseline plus the given schemes and fills each
// scheme's Speedup versus the first series (the Figure-2/4/5/6 layout).
func (r *Runner) FTComparison(ctx context.Context, specs ...SchemeSpec) ([]SchemeSeries, error) {
	out := make([]SchemeSeries, len(specs))
	for i, spec := range specs {
		s, err := r.RunScheme(ctx, spec)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	for i := range out {
		out[i].Speedup = metrics.Speedup(out[0].AvgFT, out[i].AvgFT)
	}
	return out, nil
}

// DoDHistogram runs one scheme over all mixes and returns the per-mix
// dependent-count histograms (Figures 1, 3, 7).
func (r *Runner) DoDHistogram(ctx context.Context, spec SchemeSpec) ([]MixRow, error) {
	s, err := r.RunScheme(ctx, spec)
	if err != nil {
		return nil, err
	}
	return s.Rows, nil
}
