package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Figure identifiers, in paper order.
const (
	Fig1 = "Figure 1: # instructions dependent on a long-latency load (Baseline_32)"
	Fig2 = "Figure 2: FT with 2-Level R-ROB16 vs Baseline_32 / Baseline_128"
	Fig3 = "Figure 3: # load dependents with 2-Level R-ROB16"
	Fig4 = "Figure 4: FT with 2-Level Relaxed R-ROB15"
	Fig5 = "Figure 5: FT with 2-Level CDR-ROB15"
	Fig6 = "Figure 6: FT with 2-Level P-ROB3 / P-ROB5"
	Fig7 = "Figure 7: # load dependents with 2-Level P-ROB5"
)

// WriteFTTable renders a Figure-2-style per-mix fair-throughput table.
func WriteFTTable(w io.Writer, title string, series []SchemeSeries) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s", "Mix")
	for _, s := range series {
		fmt.Fprintf(w, "  %22s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range series[0].Rows {
		fmt.Fprintf(w, "%-8s", series[0].Rows[i].Mix)
		for _, s := range series {
			fmt.Fprintf(w, "  %22.4f", s.Rows[i].FairThroughput)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-8s", "Average")
	for _, s := range series {
		fmt.Fprintf(w, "  %22.4f", s.AvgFT)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "Speedup")
	for _, s := range series {
		fmt.Fprintf(w, "  %21.2f%%", 100*s.Speedup)
	}
	fmt.Fprintln(w)
}

// WriteDoDHistogram renders a Figure-1-style dependent-count table: one
// row per dependent count (1..31), one column per mix.
func WriteDoDHistogram(w io.Writer, title string, rows []MixRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s", "#Dep")
	for _, r := range rows {
		fmt.Fprintf(w, " %8s", strings.ReplaceAll(r.Mix, "Mix ", "M"))
	}
	fmt.Fprintln(w)
	for dep := 1; dep <= 31; dep++ {
		fmt.Fprintf(w, "%-6d", dep)
		for _, r := range rows {
			h := r.Result.Raw.DoDHist
			var c uint64
			if dep < len(h.Counts) {
				c = h.Counts[dep]
			}
			fmt.Fprintf(w, " %8d", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-6s", "mean")
	for _, r := range rows {
		fmt.Fprintf(w, " %8.2f", r.DoDMean)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-6s", "total")
	for _, r := range rows {
		fmt.Fprintf(w, " %8d", r.Result.Raw.DoDHist.Total())
	}
	fmt.Fprintln(w)
}

// DoDGrowth returns the relative increase of the mean dependent count of
// series b over series a (the paper reports +56% for R-ROB and +120% for
// P-ROB versus the baseline).
func DoDGrowth(a, b SchemeSeries) float64 {
	return metrics.Speedup(a.AvgDoD, b.AvgDoD)
}

// WriteTable1 documents the simulated machine configuration.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Configuration of the Simulation Environment")
	rows := [][2]string{
		{"Machine width", "8-wide fetch (2 threads/cycle), 8-wide issue, 8-wide commit"},
		{"Window size", "per thread: 32-entry 1st-level ROB, 48-entry LSQ; shared: 64-entry IQ"},
		{"Second-level ROB", "384 entries, allocated as a unit to one thread at a time"},
		{"Function units", "8 IntAdd(1/1), 4 IntMult(3/1)/Div(20/19), 4 Ld/St(2/1), 8 FPAdd(2/1), 4 FPMult(4/1)/Div(12/12)/Sqrt(24/24)"},
		{"Registers", "224 integer + 224 floating-point rename registers"},
		{"L1 I-cache", "64 KB, 2-way, 64 B lines, 1-cycle hit"},
		{"L1 D-cache", "32 KB, 4-way, 32 B lines, 1-cycle hit"},
		{"L2 cache", "unified 2 MB, 8-way, 128 B lines, 10-cycle hit"},
		{"BTB", "2048-entry, 2-way"},
		{"Branch predictor", "2K-entry gShare, 10-bit history per thread"},
		{"Load-hit predictor", "2-bit, 1K entries, 8-bit history per thread"},
		{"Fetch policy", "ICOUNT 2.8 ordering, DCRA resource sharing"},
		{"Memory", "64-bit wide, 500-cycle first chunk, 2-cycle interchunk"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %s\n", r[0], r[1])
	}
}

// WriteTable2 documents the simulated benchmark mixes.
func WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Simulated Benchmark Mixes")
	for _, m := range workload.Mixes {
		fmt.Fprintf(w, "  %-8s %-28s %s\n", m.Name, strings.Join(m.Benchmarks[:], ", "), m.Classification)
	}
}
