package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/telemetry"
)

// WriteStallTable renders one scheme's per-mix stall-cause breakdown in
// the spirit of the paper's Figure 2: one row per mix, one column per
// cause, each cell the share of thread-cycles charged to that cause
// (summed over the mix's threads), plus the dispatch-active share. The
// final row averages over mixes. Rows whose run carried no telemetry
// (Params.Telemetry unset) are skipped; the table notes how many.
func WriteStallTable(w io.Writer, s SchemeSeries) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "%s\t", s.Label)
	fmt.Fprint(tw, "active\t")
	for c := telemetry.Cause(1); c < telemetry.NumCauses; c++ {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)

	var (
		avg     [telemetry.NumCauses]float64
		avgAct  float64
		rows    int
		skipped int
	)
	for _, row := range s.Rows {
		sum := row.Result.Telemetry
		if sum == nil {
			skipped++
			continue
		}
		stalls, active := sum.StallTotals()
		total := float64(sum.Cycles) * float64(len(sum.Threads))
		if total == 0 {
			skipped++
			continue
		}
		fmt.Fprintf(tw, "%s\t", row.Mix)
		act := 100 * float64(active) / total
		avgAct += act
		fmt.Fprintf(tw, "%.1f%%\t", act)
		for c := telemetry.Cause(1); c < telemetry.NumCauses; c++ {
			pct := 100 * float64(stalls[c]) / total
			avg[c] += pct
			fmt.Fprintf(tw, "%.1f%%\t", pct)
		}
		fmt.Fprintln(tw)
		rows++
	}
	if rows > 0 {
		n := float64(rows)
		fmt.Fprintf(tw, "Average\t%.1f%%\t", avgAct/n)
		for c := telemetry.Cause(1); c < telemetry.NumCauses; c++ {
			fmt.Fprintf(tw, "%.1f%%\t", avg[c]/n)
		}
		fmt.Fprintln(tw)
	}
	if skipped > 0 {
		fmt.Fprintf(tw, "(%d mixes without telemetry skipped)\n", skipped)
	}
	return tw.Flush()
}
