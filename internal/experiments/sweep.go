package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
)

// SweepPoint is one configuration of a parameter sweep with its outcome.
type SweepPoint struct {
	Label  string
	Value  int
	AvgFT  float64
	AvgDoD float64
}

// sweep evaluates a family of configurations produced by mk over the full
// mix suite.
func (r *Runner) sweep(ctx context.Context, values []int, mk func(v int) SchemeSpec) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(values))
	for i, v := range values {
		spec := mk(v)
		s, err := r.RunScheme(ctx, spec)
		if err != nil {
			return nil, err
		}
		out[i] = SweepPoint{Label: spec.Label, Value: v, AvgFT: s.AvgFT, AvgDoD: s.AvgDoD}
	}
	return out, nil
}

// SweepDoDThreshold sweeps the reactive DoD threshold (§5.2: too-large
// thresholds permit issue-queue clog; the paper's best is 16).
func (r *Runner) SweepDoDThreshold(ctx context.Context, values []int) ([]SweepPoint, error) {
	return r.sweep(ctx, values, func(v int) SchemeSpec { return RROB(v) })
}

// SweepPredictiveThreshold sweeps the predictive threshold (§5.3: the
// paper's best is 3–5).
func (r *Runner) SweepPredictiveThreshold(ctx context.Context, values []int) ([]SweepPoint, error) {
	return r.sweep(ctx, values, func(v int) SchemeSpec { return PROB(v) })
}

// SweepSecondLevelSize sweeps the shared second-level capacity.
func (r *Runner) SweepSecondLevelSize(ctx context.Context, values []int) ([]SweepPoint, error) {
	return r.sweep(ctx, values, func(v int) SchemeSpec {
		return SchemeSpec{
			Label: fmt.Sprintf("L2ROB=%d", v),
			Opt:   tlrob.Options{Scheme: tlrob.Reactive, DoDThreshold: 16, L2ROB: v},
		}
	})
}

// SweepCountDelay sweeps the CDR snapshot delay (§4.1's accuracy vs
// exploitation-window trade-off).
func (r *Runner) SweepCountDelay(ctx context.Context, values []int) ([]SweepPoint, error) {
	return r.sweep(ctx, values, func(v int) SchemeSpec {
		return SchemeSpec{
			Label: fmt.Sprintf("CDR delay=%d", v),
			Opt:   tlrob.Options{Scheme: tlrob.CountDelayed, DoDThreshold: 15, CountDelay: v},
		}
	})
}

// WriteSweep renders a sweep as a two-column series.
func WriteSweep(w io.Writer, title string, points []SweepPoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %-16s %10s %10s\n", "config", "avg FT", "avg DoD")
	for _, p := range points {
		fmt.Fprintf(w, "  %-16s %10.4f %10.2f\n", p.Label, p.AvgFT, p.AvgDoD)
	}
}
