// Package leakcheck is the runtime complement to the golifecycle
// static pass: it snapshots the running goroutines before a test (or a
// whole test binary) and fails if goroutines created since are still
// running afterwards. golifecycle proves every spawn in the long-lived
// packages is joinable or cancellable; leakcheck proves the joins and
// cancels actually happen.
//
// Wire it into a package with
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// or guard a single test with
//
//	defer leakcheck.Check(t)()
//
// Goroutines are identified by ID from runtime.Stack headers, and
// stragglers get a settling window before being reported, because
// legitimate shutdown (WaitGroup drains, context propagation) is
// asynchronous. Known-benign runtime residents — net/http's idle
// connection readers/writers, the testing harness itself — are
// allowlisted by stack substring.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// allowlist holds stack substrings of goroutines that legitimately
// outlive a test: http keep-alive connections parked in the idle pool
// and the testing machinery.
var allowlist = []string{
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).",
	"net/http.setRequestCancel",
	"testing.(*M).",
	"testing.(*T).",
	"testing.runTests",
	"testing.tRunner",
	"os/signal.signal_recv",
	"runtime/trace.Start",
}

// settleWindow bounds how long stragglers get to finish unwinding
// before they count as leaks.
const settleWindow = 2 * time.Second

// Main runs the package's tests with a leak check around the whole
// binary: call it from TestMain. A leak turns a passing run into a
// failing one; the offending stacks go to stderr.
func Main(m *testing.M) {
	before := ids()
	code := m.Run()
	if stale := settle(before, settleWindow); len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this test binary:\n\n%s\n",
			len(stale), strings.Join(stale, "\n\n"))
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// Check snapshots the current goroutines; defer the returned func to
// fail t if goroutines created during the test outlive it.
func Check(t *testing.T) func() {
	before := ids()
	return func() {
		if stale := settle(before, settleWindow); len(stale) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n\n%s",
				len(stale), strings.Join(stale, "\n\n"))
		}
	}
}

// settle polls until every goroutine not in before has exited (or is
// allowlisted), returning the stacks of those still running at the
// deadline.
func settle(before map[string]bool, window time.Duration) []string {
	deadline := time.Now().Add(window)
	for {
		stale := leaked(before)
		if len(stale) == 0 || time.Now().After(deadline) {
			return stale
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leaked returns the stacks of goroutines running now that were not in
// before and are not allowlisted.
func leaked(before map[string]bool) []string {
	var out []string
	for _, st := range stacks() {
		id := goroutineID(st)
		if id == "" || before[id] || allowed(st) {
			continue
		}
		out = append(out, st)
	}
	return out
}

// ids returns the IDs of all currently running goroutines.
func ids() map[string]bool {
	set := make(map[string]bool)
	for _, st := range stacks() {
		if id := goroutineID(st); id != "" {
			set[id] = true
		}
	}
	return set
}

// stacks captures one stanza per running goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// goroutineID parses the N from a "goroutine N [state]:" stanza
// header.
func goroutineID(stanza string) string {
	rest, ok := strings.CutPrefix(stanza, "goroutine ")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return ""
}

func allowed(stanza string) bool {
	for _, s := range allowlist {
		if strings.Contains(stanza, s) {
			return true
		}
	}
	return false
}
