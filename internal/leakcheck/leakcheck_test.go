package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestDetectsAndSettles(t *testing.T) {
	before := ids()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()

	stale := settle(before, 50*time.Millisecond)
	if len(stale) == 0 {
		t.Fatal("blocked goroutine was not detected as a leak")
	}
	found := false
	for _, st := range stale {
		if strings.Contains(st, "TestDetectsAndSettles") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the leaking function:\n%s", strings.Join(stale, "\n\n"))
	}

	close(stop)
	<-done
	if stale := settle(before, settleWindow); len(stale) > 0 {
		t.Errorf("goroutine still reported after it exited:\n%s", strings.Join(stale, "\n\n"))
	}
}

func TestAllowlist(t *testing.T) {
	idle := `goroutine 42 [select]:
net/http.(*persistConn).readLoop(0xc0001a2120)
	/usr/local/go/src/net/http/transport.go:2218 +0xd25
created by net/http.(*Transport).dialConn in goroutine 35
	/usr/local/go/src/net/http/transport.go:1798 +0x152f`
	if !allowed(idle) {
		t.Error("idle http connection reader should be allowlisted")
	}
	worker := `goroutine 43 [chan receive]:
repro/internal/server.(*Server).worker(0xc000138000)
	/root/repo/internal/server/server.go:280 +0x45
created by repro/internal/server.(*Server).Start in goroutine 35
	/root/repo/internal/server/server.go:267 +0x9b`
	if allowed(worker) {
		t.Error("a server worker goroutine must not be allowlisted")
	}
}

func TestGoroutineID(t *testing.T) {
	if got := goroutineID("goroutine 7 [running]:\nmain.main()"); got != "7" {
		t.Errorf("goroutineID = %q, want 7", got)
	}
	if got := goroutineID("not a stanza"); got != "" {
		t.Errorf("goroutineID on junk = %q, want empty", got)
	}
}

func TestCheckPassesOnCleanTest(t *testing.T) {
	defer Check(t)()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
