package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("reseed did not reset the stream: %d != %d", got, first)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("Bool(%v) rate %v", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	for _, p := range []float64{0.2, 0.5, 0.9} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += r.Geometric(p)
		}
		got := float64(sum) / n
		want := 1 / p
		if math.Abs(got-want) > 0.1*want {
			t.Fatalf("Geometric(%v) mean %v, want about %v", p, got, want)
		}
	}
}

func TestGeometricAtOne(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d", v)
		}
	}
}

func TestGeometricPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestDiscreteProportions(t *testing.T) {
	r := New(23)
	d := NewDiscrete([]float64{1, 2, 7})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("outcome %d rate %v, want %v", i, got, want)
		}
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	r := New(29)
	d := NewDiscrete([]float64{0, 1, 0})
	for i := 0; i < 1000; i++ {
		if v := d.Sample(r); v != 1 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	for _, weights := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDiscrete(%v) did not panic", weights)
				}
			}()
			NewDiscrete(weights)
		}()
	}
}

func TestDiscreteN(t *testing.T) {
	if n := NewDiscrete([]float64{1, 1, 1, 1}).N(); n != 4 {
		t.Fatalf("N = %d", n)
	}
}

// Property: Intn is always within range for arbitrary seeds and sizes.
func TestQuickIntn(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(size); v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Discrete.Sample always returns a valid index.
func TestQuickDiscrete(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, w := range raw {
			weights[i] = float64(w)
			total += float64(w)
		}
		if total == 0 {
			return true
		}
		d := NewDiscrete(weights)
		r := New(seed)
		for i := 0; i < 20; i++ {
			idx := d.Sample(r)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
