// Package rng provides small, fast, deterministic pseudo-random number
// generators and discrete distributions used by the synthetic workload
// generators. Determinism matters: the same (benchmark, seed) pair must
// produce bit-identical instruction traces across simulator configurations
// so that scheme comparisons replay the exact same program.
package rng

// SplitMix64 is a tiny, high-quality 64-bit PRNG (Steele et al., 2014).
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a SplitMix64 seeded with seed.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed resets the generator state.
func (r *SplitMix64) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *SplitMix64) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a geometrically distributed integer >= 1 with success
// probability p (mean 1/p). p must be in (0, 1].
func (r *SplitMix64) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<20 { // safety bound; unreachable for sane p
			break
		}
	}
	return n
}

// Discrete samples an index from a fixed discrete distribution.
// Construct with NewDiscrete; sampling is O(log n) via binary search
// on the cumulative table.
type Discrete struct {
	cum []float64
}

// NewDiscrete builds a sampler over the given non-negative weights.
// Weights need not sum to 1. It panics if the total weight is zero.
func NewDiscrete(weights []float64) *Discrete {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: zero total weight")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Discrete{cum: cum}
}

// Sample draws an index according to the weights.
func (d *Discrete) Sample(r *SplitMix64) int {
	u := r.Float64()
	lo, hi := 0, len(d.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of outcomes.
func (d *Discrete) N() int { return len(d.cum) }
