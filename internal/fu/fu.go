// Package fu models the function-unit pools of Table 1 with total/issue
// latencies: a unit accepts a new instruction only when its issue interval
// from the previous one has elapsed (pipelined units have interval 1;
// dividers block for their full latency).
package fu

import (
	"fmt"

	"repro/internal/isa"
)

// Pools tracks per-unit availability for every FU kind.
type Pools struct {
	nextFree [isa.NumFUKinds][]int64
	stats    Stats
}

// Stats counts issue activity per pool.
type Stats struct {
	Issued    [isa.NumFUKinds]uint64
	Conflicts [isa.NumFUKinds]uint64 // issue attempts denied by busy units
}

// New builds the pools from the ISA's Table-1 unit counts.
func New() *Pools {
	p := &Pools{}
	for k := isa.FUKind(0); k < isa.NumFUKinds; k++ {
		p.nextFree[k] = make([]int64, isa.FUCounts[k])
	}
	return p
}

// NewWithCounts builds pools with custom unit counts (ablations).
func NewWithCounts(counts [isa.NumFUKinds]int) (*Pools, error) {
	p := &Pools{}
	for k := isa.FUKind(0); k < isa.NumFUKinds; k++ {
		if counts[k] < 1 {
			return nil, fmt.Errorf("fu: pool %v needs at least one unit", k)
		}
		p.nextFree[k] = make([]int64, counts[k])
	}
	return p, nil
}

// TryIssue reserves a unit of the op's pool at cycle now, returning false
// when every unit is busy. On success the unit is busy for the op's issue
// interval.
func (p *Pools) TryIssue(op isa.OpClass, now int64) bool {
	t := isa.Timings[op]
	units := p.nextFree[t.FU]
	for i := range units {
		if units[i] <= now {
			units[i] = now + int64(t.IssueInterval)
			p.stats.Issued[t.FU]++
			return true
		}
	}
	p.stats.Conflicts[t.FU]++
	return false
}

// BusyCount returns how many units of a pool are busy at cycle now.
func (p *Pools) BusyCount(kind isa.FUKind, now int64) int {
	n := 0
	for _, f := range p.nextFree[kind] {
		if f > now {
			n++
		}
	}
	return n
}

// Stats returns the issue counters.
func (p *Pools) Stats() Stats { return p.stats }
