package fu

import (
	"testing"

	"repro/internal/isa"
)

func TestPoolWidth(t *testing.T) {
	p := New()
	// 8 integer adders: 8 issues in one cycle, the 9th is refused.
	for i := 0; i < 8; i++ {
		if !p.TryIssue(isa.OpIntAlu, 0) {
			t.Fatalf("adder %d refused", i)
		}
	}
	if p.TryIssue(isa.OpIntAlu, 0) {
		t.Fatal("ninth adder issue succeeded")
	}
	if !p.TryIssue(isa.OpIntAlu, 1) {
		t.Fatal("pipelined adders not free next cycle")
	}
	s := p.Stats()
	if s.Issued[isa.FUIntAdd] != 9 || s.Conflicts[isa.FUIntAdd] != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDividerBlocksForIssueInterval(t *testing.T) {
	p := New()
	// 4 integer dividers, issue interval 19.
	for i := 0; i < 4; i++ {
		if !p.TryIssue(isa.OpIntDiv, 0) {
			t.Fatalf("divider %d refused", i)
		}
	}
	if p.TryIssue(isa.OpIntDiv, 5) {
		t.Fatal("divider free during issue interval")
	}
	if !p.TryIssue(isa.OpIntDiv, 19) {
		t.Fatal("divider not free after issue interval")
	}
}

func TestPoolsIndependent(t *testing.T) {
	p := New()
	for i := 0; i < 4; i++ {
		p.TryIssue(isa.OpLoad, 0)
	}
	if p.TryIssue(isa.OpStore, 0) {
		t.Fatal("load/store pool not shared between loads and stores")
	}
	if !p.TryIssue(isa.OpFPAdd, 0) {
		t.Fatal("FP pool affected by load/store saturation")
	}
}

func TestBusyCount(t *testing.T) {
	p := New()
	p.TryIssue(isa.OpFPDiv, 0) // busy for 12 cycles
	if n := p.BusyCount(isa.FUFPMultDiv, 5); n != 1 {
		t.Fatalf("busy = %d", n)
	}
	if n := p.BusyCount(isa.FUFPMultDiv, 12); n != 0 {
		t.Fatalf("busy after interval = %d", n)
	}
}

func TestCustomCounts(t *testing.T) {
	var counts [isa.NumFUKinds]int
	for k := range counts {
		counts[k] = 1
	}
	p, err := NewWithCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TryIssue(isa.OpIntAlu, 0) || p.TryIssue(isa.OpIntAlu, 0) {
		t.Fatal("single-unit pool misbehaves")
	}
	counts[0] = 0
	if _, err := NewWithCounts(counts); err == nil {
		t.Fatal("zero-unit pool accepted")
	}
}
