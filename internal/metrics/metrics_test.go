package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 1, 1, 3, 7} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Sum() != 12 {
		t.Fatalf("total=%d sum=%d", h.Total(), h.Sum())
	}
	if h.Counts[1] != 2 || h.Counts[0] != 1 {
		t.Fatalf("counts: %v", h.Counts)
	}
	if got := h.Mean(); math.Abs(got-2.4) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(4)
	h.Add(10)
	if h.Overflow != 1 || h.Sum() != 10 {
		t.Fatalf("overflow=%d sum=%d", h.Overflow, h.Sum())
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	h := NewHistogram(4)
	defer func() {
		if recover() == nil {
			t.Fatal("negative value accepted")
		}
	}()
	h.Add(-1)
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(4), NewHistogram(4)
	a.Add(1)
	b.Add(2)
	b.Add(9)
	a.Merge(b)
	if a.Total() != 3 || a.Counts[2] != 1 || a.Overflow != 1 || a.Sum() != 12 {
		t.Fatalf("merged: %+v", a)
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	if NewHistogram(4).Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestWeightedIPC(t *testing.T) {
	if got := WeightedIPC(0.5, 1.0); got != 0.5 {
		t.Fatalf("weighted = %v", got)
	}
	if got := WeightedIPC(0.5, 0); got != 0 {
		t.Fatalf("zero denominator = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("unit mean = %v", got)
	}
	// harmonic(2, 2/3) = 2/(0.5+1.5) = 1
	if got := HarmonicMean([]float64{2, 2.0 / 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("mixed mean = %v", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("starved thread must zero the FT metric")
	}
}

func TestFairThroughputMatchesPaperFormula(t *testing.T) {
	// FT = N / sum(1/w_i), the harmonic mean of weighted IPCs [7].
	w := []float64{0.5, 0.25}
	want := 2 / (1/0.5 + 1/0.25)
	if got := FairThroughput(w); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FT = %v, want %v", got, want)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.0, 1.3); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("speedup = %v", got)
	}
	if Speedup(0, 2) != 0 {
		t.Fatal("zero baseline speedup not 0")
	}
}

// Property: the harmonic mean is never above the arithmetic mean and never
// above the max element (for positive inputs).
func TestQuickHarmonicBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		sum, maxV := 0.0, 0.0
		for i, r := range raw {
			vals[i] = float64(r)/100 + 0.01
			sum += vals[i]
			if vals[i] > maxV {
				maxV = vals[i]
			}
		}
		h := HarmonicMean(vals)
		arith := sum / float64(len(vals))
		return h <= arith+1e-9 && h <= maxV+1e-9 && h > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histograms count exactly what was added.
func TestQuickHistogramAccounting(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(16)
		var sum uint64
		for _, v := range vals {
			h.Add(int(v))
			sum += uint64(v)
		}
		return h.Total() == uint64(len(vals)) && h.Sum() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
