// Package metrics provides the performance metrics the paper reports:
// per-thread IPC, weighted IPC (relative progress versus a single-threaded
// run), the Fair Throughput metric of Luo et al. [7] — the harmonic mean
// of weighted IPCs — and the integer histograms behind the
// dependent-count figures.
package metrics

import "fmt"

// Histogram counts non-negative integer observations; values at or above
// the bucket count land in Overflow.
type Histogram struct {
	Counts   []uint64
	Overflow uint64
	total    uint64
	sum      uint64
}

// NewHistogram builds a histogram with buckets for values 0..max-1.
func NewHistogram(max int) *Histogram {
	if max < 1 {
		panic("metrics: histogram needs at least one bucket")
	}
	return &Histogram{Counts: make([]uint64, max)}
}

// Add records one observation. Negative values panic.
func (h *Histogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative histogram value %d", v))
	}
	if v < len(h.Counts) {
		h.Counts[v]++
	} else {
		h.Overflow++
	}
	h.total++
	h.sum += uint64(v)
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all observed values (overflowed values count at
// their true magnitude).
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Merge adds other's counts into h. Bucket counts must match.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.Counts) != len(other.Counts) {
		panic("metrics: merging histograms of different shapes")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Overflow += other.Overflow
	h.total += other.total
	h.sum += other.sum
}

// WeightedIPC is a thread's relative progress: its IPC in the
// multithreaded run divided by its IPC when running alone.
func WeightedIPC(multi, single float64) float64 {
	if single <= 0 {
		return 0
	}
	return multi / single
}

// HarmonicMean returns the harmonic mean of strictly positive values; any
// non-positive value makes the result 0 (a fully starved thread gives the
// workload a fair throughput of zero, which is the metric's intent).
func HarmonicMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += 1 / v
	}
	return float64(len(vals)) / sum
}

// FairThroughput is the paper's FT metric: the harmonic mean of the
// threads' weighted IPCs.
func FairThroughput(weighted []float64) float64 { return HarmonicMean(weighted) }

// Speedup returns (b-a)/a as a fraction (e.g. 0.30 for +30%).
func Speedup(baseline, improved float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return (improved - baseline) / baseline
}

// PerSecond converts a count observed over a nanosecond interval into a
// per-second rate (simulator-performance reporting).
func PerSecond(count float64, nanos int64) float64 {
	if nanos <= 0 {
		return 0
	}
	return count * 1e9 / float64(nanos)
}

// NanosPer divides a nanosecond interval by an event count (e.g. wall
// nanoseconds per simulated instruction).
func NanosPer(nanos int64, count float64) float64 {
	if count <= 0 {
		return 0
	}
	return float64(nanos) / count
}
