package policy

import "testing"

func lims() Limits { return Limits{IQ: 64, IntRegs: 224, FPRegs: 224} }

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{ICOUNT, DCRA, STALL, FLUSH} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DCRA, 0.5, lims()); err == nil {
		t.Error("alpha < 1 accepted")
	}
	if _, err := New(DCRA, 2, Limits{}); err == nil {
		t.Error("empty limits accepted")
	}
	if _, err := New(Kind(99), 2, lims()); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestICountOrdering(t *testing.T) {
	p := MustNew(ICOUNT, 2, lims())
	snaps := []Snapshot{
		{FrontEnd: 10, IQ: 5}, // total 15
		{FrontEnd: 0, IQ: 2},  // total 2 -> first
		{FrontEnd: 4, IQ: 4},  // total 8
	}
	order := p.FetchOrder(snaps, nil)
	if len(order) != 3 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
	if order[1] != 2 || order[2] != 0 {
		t.Fatalf("order = %v", order)
	}
}

func TestFinishedThreadsExcluded(t *testing.T) {
	p := MustNew(ICOUNT, 2, lims())
	snaps := []Snapshot{{Finished: true}, {}}
	order := p.FetchOrder(snaps, nil)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakRotates(t *testing.T) {
	p := MustNew(ICOUNT, 2, lims())
	snaps := []Snapshot{{}, {}, {}, {}}
	first := map[int]bool{}
	for i := 0; i < 8; i++ {
		order := p.FetchOrder(snaps, nil)
		first[order[0]] = true
	}
	if len(first) < 4 {
		t.Fatalf("tie-break favoured a subset: %v", first)
	}
}

func TestStallGatesL2MissThreads(t *testing.T) {
	p := MustNew(STALL, 2, lims())
	snaps := []Snapshot{{PendingL2Miss: true}, {}}
	order := p.FetchOrder(snaps, nil)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
	if p.FlushOnL2Miss() {
		t.Fatal("STALL must not flush")
	}
}

func TestFlushPolicy(t *testing.T) {
	p := MustNew(FLUSH, 2, lims())
	if !p.FlushOnL2Miss() {
		t.Fatal("FLUSH must flush")
	}
	snaps := []Snapshot{{PendingL2Miss: true}, {}}
	if order := p.FetchOrder(snaps, nil); len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
}

func TestDCRAIQShares(t *testing.T) {
	p := MustNew(DCRA, 2, lims())
	// Two fast, two slow active threads: fast share 64/(2+2*2)=10,
	// slow share 21.
	snaps := []Snapshot{
		{IQ: 9},                      // fast, under share
		{IQ: 10},                     // fast, at share
		{IQ: 20, PendingDMiss: true}, // slow, under share
		{IQ: 21, PendingDMiss: true}, // slow, at share
	}
	if !p.MayDispatchIQ(0, snaps) {
		t.Error("fast thread under share refused")
	}
	if p.MayDispatchIQ(1, snaps) {
		t.Error("fast thread at share allowed")
	}
	if !p.MayDispatchIQ(2, snaps) {
		t.Error("slow thread under share refused")
	}
	if p.MayDispatchIQ(3, snaps) {
		t.Error("slow thread at share allowed")
	}
}

func TestDCRAOwnerDoubleBudget(t *testing.T) {
	p := MustNew(DCRA, 2, lims())
	snaps := []Snapshot{
		{IQ: 30, PendingDMiss: true, OwnsROB: true},
		{IQ: 5, PendingDMiss: true},
		{IQ: 5},
		{IQ: 5},
	}
	// Slow share = 2*64/(2+2*2) = 21; the owner gets 2x = 42.
	if !p.MayDispatchIQ(0, snaps) {
		t.Error("owner refused within doubled budget")
	}
	snaps[0].IQ = 45
	if p.MayDispatchIQ(0, snaps) {
		t.Error("owner allowed beyond doubled budget")
	}
}

func TestDCRAOwnerFetchPriority(t *testing.T) {
	p := MustNew(DCRA, 2, lims())
	snaps := []Snapshot{
		{FrontEnd: 20, IQ: 20, OwnsROB: true, PendingDMiss: true},
		{FrontEnd: 0, IQ: 0},
	}
	for i := 0; i < 4; i++ {
		order := p.FetchOrder(snaps, nil)
		if order[0] != 0 {
			t.Fatalf("owner not first: %v", order)
		}
	}
}

func TestDCRAInactiveThreadsDoNotDilute(t *testing.T) {
	p := MustNew(DCRA, 2, lims())
	// Only thread 0 is active for the IQ; its share is the whole queue.
	snaps := []Snapshot{
		{IQ: 50},
		{IQ: 0},
		{IQ: 0},
		{IQ: 0},
	}
	if !p.MayDispatchIQ(0, snaps) {
		t.Error("sole active thread capped as if sharing")
	}
}

func TestNonDCRANeverRefusesDispatch(t *testing.T) {
	for _, k := range []Kind{ICOUNT, STALL, FLUSH} {
		p := MustNew(k, 2, lims())
		snaps := []Snapshot{{IQ: 63}, {IQ: 1}}
		if !p.MayDispatchIQ(0, snaps) {
			t.Errorf("%v refused dispatch", k)
		}
	}
}

func TestNames(t *testing.T) {
	for _, k := range []Kind{ICOUNT, DCRA, STALL, FLUSH} {
		p := MustNew(k, 2, lims())
		if p.Name() != k.String() {
			t.Errorf("%v name %q", k, p.Name())
		}
	}
}

func TestMLPPolicyGating(t *testing.T) {
	p := MustNew(MLP, 2, lims())
	snaps := []Snapshot{
		{PendingL2Miss: true, PredictedMLP: 0}, // isolated miss: gated
		{PendingL2Miss: true, PredictedMLP: 4}, // parallel episode: fetches
		{},                                     // no miss: fetches
	}
	order := p.FetchOrder(snaps, nil)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	for _, tid := range order {
		if tid == 0 {
			t.Fatal("isolated-miss thread not gated")
		}
	}
	if p.FlushOnL2Miss() || !p.MayDispatchIQ(0, snaps) {
		t.Fatal("MLP policy must not flush or cap dispatch")
	}
}
