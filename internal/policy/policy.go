// Package policy implements the SMT front-end fetch and shared-resource
// allocation policies the paper uses and compares against: ICOUNT [13],
// STALL and FLUSH [12], and DCRA [3], the paper's baseline for all
// experiments. The pipeline consults the policy for (a) the order in which
// threads may fetch each cycle, (b) whether a thread may fetch at all, and
// (c) whether a thread may consume one more unit of a capped shared
// resource at dispatch.
package policy

import (
	"fmt"
)

// Kind selects a policy implementation.
type Kind uint8

const (
	ICOUNT Kind = iota
	DCRA
	STALL
	FLUSH
	// MLP is the MLP-aware fetch policy of Eyerman & Eeckhout [25]: a
	// thread with an outstanding L2 miss keeps its fetch slots only while
	// its current miss episode is predicted to contain overlapped misses.
	MLP

	numKinds
)

var kindNames = [numKinds]string{"icount", "dcra", "stall", "flush", "mlp"}

// String returns the policy name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("policy(%d)", uint8(k))
}

// ParseKind converts a policy name to its Kind.
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// Resource identifies a capped shared resource.
type Resource uint8

const (
	ResIQ Resource = iota
	ResIntReg
	ResFPReg

	NumResources
)

// Snapshot is the per-thread state the policy decides from, rebuilt by the
// pipeline every cycle.
type Snapshot struct {
	FrontEnd      int // instructions fetched but not yet dispatched
	IQ            int // issue-queue entries held
	IntRegs       int // integer physical registers held beyond committed state
	FPRegs        int // FP physical registers held beyond committed state
	PendingDMiss  bool
	PendingL2Miss bool
	PredictedMLP  int  // predicted overlapped misses of the current episode (MLP policy)
	OwnsROB       bool // holds the second-level ROB partition
	Finished      bool // thread reached its instruction budget
}

func (s *Snapshot) usage(r Resource) int {
	switch r {
	case ResIQ:
		return s.IQ
	case ResIntReg:
		return s.IntRegs
	default:
		return s.FPRegs
	}
}

// Limits carries the shared-resource pool sizes a policy divides among
// threads. Register pools are the renameable registers beyond the
// architected state.
type Limits struct {
	IQ      int
	IntRegs int
	FPRegs  int
}

func (l Limits) size(r Resource) int {
	switch r {
	case ResIQ:
		return l.IQ
	case ResIntReg:
		return l.IntRegs
	default:
		return l.FPRegs
	}
}

// Policy is consulted by the pipeline front end. Resource control follows
// DCRA's actual design point: a thread exceeding its share of a shared
// resource is excluded from FETCHING until it drains back under — already
// fetched instructions still dispatch, so shares can be overshot by the
// front-end backlog. That overshoot is what lets across-the-board large
// ROBs clog the shared IQ and register files (the paper's Baseline_128).
type Policy interface {
	// Name returns the policy's canonical name.
	Name() string
	// FetchOrder fills order with thread indices in fetch-priority order,
	// excluding threads that must not fetch this cycle, and returns it.
	FetchOrder(snaps []Snapshot, order []int) []int
	// MayDispatchIQ reports whether tid may insert one more instruction
	// into the shared issue queue (DCRA's hard per-thread sharing
	// counters; the other policies never refuse).
	MayDispatchIQ(tid int, snaps []Snapshot) bool
	// FlushOnL2Miss reports whether the pipeline should squash the
	// instructions younger than a load that misses in the L2 and gate the
	// thread's fetch until the miss returns (the FLUSH policy [12]).
	FlushOnL2Miss() bool
}

// New constructs a policy. alpha is DCRA's slow-thread share multiplier
// (ignored by the others); 2 reproduces DCRA's qualitative behaviour.
// lim supplies the shared pool sizes DCRA divides.
func New(kind Kind, alpha float64, lim Limits) (Policy, error) {
	switch kind {
	case ICOUNT:
		return &icount{}, nil
	case STALL:
		return &stall{}, nil
	case FLUSH:
		return &flush{}, nil
	case MLP:
		return &mlpAware{}, nil
	case DCRA:
		if alpha < 1 {
			return nil, fmt.Errorf("policy: DCRA alpha %g must be >= 1", alpha)
		}
		if lim.IQ < 1 || lim.IntRegs < 1 || lim.FPRegs < 1 {
			return nil, fmt.Errorf("policy: DCRA needs positive resource pools, got %+v", lim)
		}
		return &dcra{alpha: alpha, lim: lim}, nil
	}
	return nil, fmt.Errorf("policy: unknown kind %d", kind)
}

// MustNew panics on error; for vetted static configs.
func MustNew(kind Kind, alpha float64, lim Limits) Policy {
	p, err := New(kind, alpha, lim)
	if err != nil {
		panic(err)
	}
	return p
}

// CycleSkipper is implemented by policies whose only cycle-to-cycle
// state is the rotating tie-break offset. The pipeline's skip-ahead
// engine calls SkipCycles(k, threads) in place of the k FetchOrder
// calls a span of provably idle cycles would have made; afterwards the
// policy must be in exactly the state those calls would have left it
// in, or fetch fairness diverges from the naive ticker. A policy that
// carries other per-cycle state must not implement this interface —
// the pipeline then falls back to ticking every cycle.
type CycleSkipper interface {
	SkipCycles(k int64, threads int)
}

// rotor supplies a rotating tie-break offset so that equal-count threads
// share fetch slots fairly instead of always yielding to the lowest id.
type rotor struct{ rr int }

func (r *rotor) next(n int) int {
	if n == 0 {
		return 0
	}
	r.rr++
	if r.rr >= n {
		r.rr = 0
	}
	return r.rr
}

// SkipCycles advances the rotor as k FetchOrder calls on a
// threads-thread machine would (one next() per call). Every built-in
// policy embeds the rotor and carries no other per-cycle state, so this
// single method makes them all CycleSkippers.
//
//tlrob:allocfree
func (r *rotor) SkipCycles(k int64, threads int) {
	if threads <= 0 || k <= 0 {
		return
	}
	r.rr = int((int64(r.rr) + k) % int64(threads))
}

// icountOrder sorts runnable threads by fewest in-flight front-end+IQ
// instructions — the ICOUNT heuristic every policy here reuses for
// ordering. Candidates are enumerated starting at a rotating offset so
// the stable sort breaks count ties fairly.
func icountOrder(snaps []Snapshot, order []int, off int, skip func(*Snapshot) bool) []int {
	order = order[:0]
	n := len(snaps)
	for i := 0; i < n; i++ {
		t := (i + off) % n
		if snaps[t].Finished || (skip != nil && skip(&snaps[t])) {
			continue
		}
		order = append(order, t)
	}
	// Stable insertion sort: equal-count threads keep their rotated
	// enumeration order, and nothing is boxed — sort.SliceStable here
	// allocated twice per simulated cycle.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			sa := snaps[order[j-1]].FrontEnd + snaps[order[j-1]].IQ
			sb := snaps[order[j]].FrontEnd + snaps[order[j]].IQ
			if sb >= sa {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return order
}

// icount is the ICOUNT 2.8 fetch policy: priority to threads with the
// fewest instructions in the front end and issue queue; no resource caps.
type icount struct{ rotor }

func (*icount) Name() string { return "icount" }
func (p *icount) FetchOrder(snaps []Snapshot, order []int) []int {
	return icountOrder(snaps, order, p.next(len(snaps)), nil)
}
func (*icount) MayDispatchIQ(int, []Snapshot) bool { return true }
func (*icount) FlushOnL2Miss() bool                { return false }

// stall is ICOUNT plus L2-miss fetch gating: a thread with an outstanding
// L2 miss fetches nothing until the miss returns.
type stall struct{ rotor }

func (*stall) Name() string { return "stall" }
func (p *stall) FetchOrder(snaps []Snapshot, order []int) []int {
	return icountOrder(snaps, order, p.next(len(snaps)), func(s *Snapshot) bool { return s.PendingL2Miss })
}
func (*stall) MayDispatchIQ(int, []Snapshot) bool { return true }
func (*stall) FlushOnL2Miss() bool                { return false }

// flush extends STALL by squashing the instructions already dispatched
// after the missing load, freeing the shared IQ for other threads.
type flush struct{ rotor }

func (*flush) Name() string { return "flush" }
func (p *flush) FetchOrder(snaps []Snapshot, order []int) []int {
	return icountOrder(snaps, order, p.next(len(snaps)), func(s *Snapshot) bool { return s.PendingL2Miss })
}
func (*flush) MayDispatchIQ(int, []Snapshot) bool { return true }
func (*flush) FlushOnL2Miss() bool                { return true }

// mlpAware gates fetch like STALL, but only for threads whose current
// miss episode is predicted to expose no memory-level parallelism —
// threads with overlapped misses ahead keep fetching to uncover them [25].
type mlpAware struct{ rotor }

func (*mlpAware) Name() string { return "mlp" }
func (p *mlpAware) FetchOrder(snaps []Snapshot, order []int) []int {
	return icountOrder(snaps, order, p.next(len(snaps)), func(s *Snapshot) bool {
		return s.PendingL2Miss && s.PredictedMLP <= 1
	})
}
func (*mlpAware) MayDispatchIQ(int, []Snapshot) bool { return true }
func (*mlpAware) FlushOnL2Miss() bool                { return false }

// dcra approximates Dynamically Controlled Resource Allocation [3]:
// threads are "slow" for the shared resources while they have a pending
// data-cache miss and "active" while they are using the resource (or still
// running). With F fast-active and S slow-active sharers of a resource of
// size E, a fast thread may hold up to E/(F+alpha*S) units and a slow
// thread alpha times that — slow threads receive a larger share so that
// their misses can overlap (MLP), which is DCRA's defining property.
type dcra struct {
	rotor
	alpha float64
	lim   Limits
}

func (*dcra) Name() string { return "dcra" }

func (d *dcra) FetchOrder(snaps []Snapshot, order []int) []int {
	order = icountOrder(snaps, order, d.next(len(snaps)), nil)
	// The second-level ROB owner fetches first: the grant exists to
	// sustain dispatch through the miss shadow, and ICOUNT would
	// otherwise rank the owner last (it accumulates in-flight state by
	// design) and starve the extension it was just given.
	for i, t := range order {
		if snaps[t].OwnsROB && i > 0 {
			copy(order[1:i+1], order[:i])
			order[0] = t
			break
		}
	}
	return order
}

// MayDispatchIQ enforces DCRA's hard per-thread issue-queue sharing
// counters. Shares follow the DCRA sharing model: with F fast-active and
// S slow-active sharers of a pool of size E, a fast thread's share is
// E/(F+alpha*S) and a slow thread's alpha times that. The second-level
// ROB owner gets a doubled budget: the DoD threshold guarantees its extra
// shadow instructions mostly issue and leave quickly (paper §1, §4).
// Only the IQ is share-capped: register pressure is governed by natural
// free-list contention (plus the owner's reserve in the pipeline), which
// lets a slow thread consume renaming capacity the fast threads are not
// using — DCRA's defining generosity toward threads with misses.
func (d *dcra) MayDispatchIQ(tid int, snaps []Snapshot) bool {
	return !d.overShare(&snaps[tid], snaps)
}

func (d *dcra) overShare(s *Snapshot, snaps []Snapshot) bool {
	for r := ResIQ; r <= ResIQ; r++ {
		fast, slow := 0, 0
		for t := range snaps {
			o := &snaps[t]
			if o.Finished {
				continue
			}
			if o.usage(r) == 0 && o != s {
				continue
			}
			if o.PendingDMiss {
				slow++
			} else {
				fast++
			}
		}
		den := float64(fast) + d.alpha*float64(slow)
		if den <= 0 {
			continue
		}
		share := float64(d.lim.size(r)) / den
		if s.PendingDMiss {
			share *= d.alpha
		}
		if s.OwnsROB {
			// The second-level ROB grant comes with a doubled IQ budget:
			// the DoD threshold guarantees the extra shadow instructions
			// mostly issue and leave quickly (paper §1), so the extended
			// window needs headroom without being allowed to clog the
			// queue outright.
			share *= 2
		}
		limit := int(share)
		if limit < 1 {
			limit = 1
		}
		if s.usage(r) >= limit {
			return true
		}
	}
	return false
}

func (*dcra) FlushOnL2Miss() bool { return false }
