package report

// LoadSummary is cmd/simdload's machine-readable result: one load run
// against a simd node or coordinator, in the same spirit as Document —
// a stable schema that cmd/checkbench can gate on (throughput floors,
// p99 ceilings) without scraping human-oriented output.
type LoadSummary struct {
	Target      string  `json:"target"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Tenants     int     `json:"tenants"`
	DurationSec float64 `json:"duration_sec"`

	OK        int `json:"ok"`
	Errors    int `json:"errors"`
	Rejected  int `json:"rejected"` // 429s surfaced to the client
	CacheHits int `json:"cache_hits"`
	CacheMiss int `json:"cache_misses"`
	Hedged    int `json:"hedged"` // answered by a hedged backup request

	Throughput   float64 `json:"throughput_rps"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`

	// TenantRequests counts per-tenant submissions in tenant order
	// ("t0".."tN-1"), exposing the Zipf skew that drove the run.
	TenantRequests []int `json:"tenant_requests,omitempty"`
}
