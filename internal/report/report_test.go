package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

func sampleSeries() experiments.SchemeSeries {
	h := metrics.NewHistogram(32)
	h.Add(3)
	h.Add(5)
	return experiments.SchemeSeries{
		Label:  "2-Level R-ROB16",
		AvgFT:  1.25,
		AvgDoD: 12.5,
		AvgIPC: 2.0,
		Rows: []experiments.MixRow{{
			Mix:            "Mix 1",
			FairThroughput: 1.25,
			Throughput:     2.0,
			DoDMean:        12.5,
			Result: tlrob.MixResult{
				Cycles: 1000,
				Threads: []tlrob.ThreadResult{
					{Benchmark: "ammp", Committed: 500, IPC: 0.5, WeightedIPC: 0.9},
				},
				Raw: pipeline.Result{DoDHist: h},
			},
		}},
	}
}

func TestFromSeriesCarriesEverything(t *testing.T) {
	s := FromSeries(sampleSeries(), true)
	if s.Label != "2-Level R-ROB16" || s.AvgFT != 1.25 {
		t.Fatalf("series: %+v", s)
	}
	row := s.Rows[0]
	if row.Mix != "Mix 1" || row.Cycles != 1000 {
		t.Fatalf("row: %+v", row)
	}
	if len(row.Threads) != 1 || row.Threads[0].Benchmark != "ammp" {
		t.Fatalf("threads: %+v", row.Threads)
	}
	if len(row.DoDHist) != 32 || row.DoDHist[3] != 1 || row.DoDHist[5] != 1 {
		t.Fatalf("hist: %v", row.DoDHist)
	}
	if withoutHist := FromSeries(sampleSeries(), false); withoutHist.Rows[0].DoDHist != nil {
		t.Fatal("hist emitted without withHist")
	}
}

// TestSchemaFieldNames pins the wire schema shared with the simd
// service: renaming a JSON field is a breaking API change and must be
// deliberate.
func TestSchemaFieldNames(t *testing.T) {
	doc := NewDocument(200_000, 1)
	doc.AddFigure("Fig", []experiments.SchemeSeries{sampleSeries()}, true)
	doc.AddSweep("Sweep", []experiments.SweepPoint{{Label: "L2ROB=384", Value: 384, AvgFT: 1.1, AvgDoD: 9}})
	var sb strings.Builder
	if err := doc.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, field := range []string{
		`"budget"`, `"seed"`, `"go_version"`, `"figures"`, `"sweeps"`,
		`"title"`, `"series"`, `"label"`, `"avg_fair_throughput"`, `"avg_dod"`,
		`"avg_ipc"`, `"speedup"`, `"rows"`, `"mix"`, `"fair_throughput"`,
		`"throughput"`, `"dod_mean"`, `"cycles"`, `"threads"`, `"benchmark"`,
		`"committed"`, `"ipc"`, `"weighted_ipc"`, `"dod_hist"`, `"points"`, `"value"`,
	} {
		if !strings.Contains(out, field) {
			t.Errorf("schema missing %s", field)
		}
	}
	var back Document
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatal(err)
	}
	if back.Figures[0].Series[0].Rows[0].FairThroughput != 1.25 {
		t.Fatalf("round trip: %+v", back.Figures[0].Series[0].Rows[0])
	}
}
