// Package report defines the machine-readable result schema shared by
// every consumer of the experiment harness: cmd/experiments -json,
// cmd/bench's BENCH_results.json rows, and the simd service's run
// results all encode scheme series with the same field names, so a
// client can parse a CLI dump and a service response with one decoder.
package report

import (
	"encoding/json"
	"io"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// Thread is one hardware thread of a mix run.
type Thread struct {
	Benchmark   string  `json:"benchmark"`
	Committed   uint64  `json:"committed"`
	IPC         float64 `json:"ipc"`
	WeightedIPC float64 `json:"weighted_ipc"`
}

// Row is one mix's outcome under one scheme.
type Row struct {
	Mix            string   `json:"mix"`
	FairThroughput float64  `json:"fair_throughput"`
	Throughput     float64  `json:"throughput"`
	DoDMean        float64  `json:"dod_mean"`
	Cycles         int64    `json:"cycles"`
	Threads        []Thread `json:"threads,omitempty"`
	DoDHist        []uint64 `json:"dod_hist,omitempty"`
	// Telemetry is the run's stall-attribution and occupancy digest,
	// present only when the sweep ran with telemetry enabled.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
}

// Series is one scheme evaluated over a set of mixes.
type Series struct {
	Label   string  `json:"label"`
	AvgFT   float64 `json:"avg_fair_throughput"`
	AvgDoD  float64 `json:"avg_dod"`
	AvgIPC  float64 `json:"avg_ipc"`
	Speedup float64 `json:"speedup"`
	Rows    []Row   `json:"rows"`
}

// Figure groups the series of one paper figure.
type Figure struct {
	Title  string   `json:"title"`
	Series []Series `json:"series"`
}

// SweepPoint mirrors experiments.SweepPoint.
type SweepPoint struct {
	Label  string  `json:"label"`
	Value  int     `json:"value"`
	AvgFT  float64 `json:"avg_fair_throughput"`
	AvgDoD float64 `json:"avg_dod"`
}

// Sweep is one parameter sweep.
type Sweep struct {
	Title  string       `json:"title"`
	Points []SweepPoint `json:"points"`
}

// Document is the top-level cmd/experiments -json output.
type Document struct {
	Budget    uint64   `json:"budget"`
	Seed      uint64   `json:"seed"`
	GoVersion string   `json:"go_version"`
	Figures   []Figure `json:"figures,omitempty"`
	Sweeps    []Sweep  `json:"sweeps,omitempty"`
}

// NewDocument starts a document for the given sweep parameters.
func NewDocument(budget, seed uint64) *Document {
	return &Document{Budget: budget, Seed: seed, GoVersion: runtime.Version()}
}

// AddFigure converts and appends one figure's series.
func (d *Document) AddFigure(title string, series []experiments.SchemeSeries, withHist bool) {
	fig := Figure{Title: title}
	for _, s := range series {
		fig.Series = append(fig.Series, FromSeries(s, withHist))
	}
	d.Figures = append(d.Figures, fig)
}

// AddSweep converts and appends one parameter sweep.
func (d *Document) AddSweep(title string, pts []experiments.SweepPoint) {
	sw := Sweep{Title: title}
	for _, p := range pts {
		sw.Points = append(sw.Points, SweepPoint{Label: p.Label, Value: p.Value, AvgFT: p.AvgFT, AvgDoD: p.AvgDoD})
	}
	d.Sweeps = append(d.Sweeps, sw)
}

// WriteJSON renders the document indented, for diffability.
func (d *Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// FromSeries converts an experiments series to its wire form. withHist
// additionally carries the per-mix DoD histograms (Figures 1/3/7).
func FromSeries(s experiments.SchemeSeries, withHist bool) Series {
	out := Series{
		Label:   s.Label,
		AvgFT:   s.AvgFT,
		AvgDoD:  s.AvgDoD,
		AvgIPC:  s.AvgIPC,
		Speedup: s.Speedup,
		Rows:    make([]Row, len(s.Rows)),
	}
	for i, r := range s.Rows {
		row := Row{
			Mix:            r.Mix,
			FairThroughput: r.FairThroughput,
			Throughput:     r.Throughput,
			DoDMean:        r.DoDMean,
			Cycles:         r.Result.Cycles,
			Telemetry:      r.Result.Telemetry,
		}
		for _, th := range r.Result.Threads {
			row.Threads = append(row.Threads, Thread{
				Benchmark:   th.Benchmark,
				Committed:   th.Committed,
				IPC:         th.IPC,
				WeightedIPC: th.WeightedIPC,
			})
		}
		if withHist && r.Result.Raw.DoDHist != nil {
			row.DoDHist = append([]uint64(nil), r.Result.Raw.DoDHist.Counts...)
		}
		out.Rows[i] = row
	}
	return out
}
