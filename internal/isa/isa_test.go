package isa

import "testing"

func TestOpClassStrings(t *testing.T) {
	cases := map[OpClass]string{
		OpNop: "nop", OpIntAlu: "ialu", OpIntMult: "imult", OpIntDiv: "idiv",
		OpLoad: "load", OpStore: "store", OpFPAdd: "fpadd", OpFPMult: "fpmult",
		OpFPDiv: "fpdiv", OpFPSqrt: "fpsqrt", OpBranch: "branch",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := OpClass(200).String(); got != "op(200)" {
		t.Errorf("unknown op string %q", got)
	}
}

func TestIsMem(t *testing.T) {
	for op := OpClass(0); op < NumOpClasses; op++ {
		want := op == OpLoad || op == OpStore
		if op.IsMem() != want {
			t.Errorf("%v.IsMem() = %v", op, op.IsMem())
		}
	}
}

func TestIsFP(t *testing.T) {
	fp := map[OpClass]bool{OpFPAdd: true, OpFPMult: true, OpFPDiv: true, OpFPSqrt: true}
	for op := OpClass(0); op < NumOpClasses; op++ {
		if op.IsFP() != fp[op] {
			t.Errorf("%v.IsFP() = %v", op, op.IsFP())
		}
	}
}

func TestIsFPReg(t *testing.T) {
	if IsFPReg(0) || IsFPReg(NumIntRegs-1) {
		t.Error("integer registers classified as FP")
	}
	if !IsFPReg(NumIntRegs) || !IsFPReg(NumRegs-1) {
		t.Error("FP registers not classified as FP")
	}
}

func TestTimingsComplete(t *testing.T) {
	for op := OpClass(0); op < NumOpClasses; op++ {
		tm := Timings[op]
		if tm.Latency < 1 {
			t.Errorf("%v has latency %d", op, tm.Latency)
		}
		if tm.IssueInterval < 1 {
			t.Errorf("%v has issue interval %d", op, tm.IssueInterval)
		}
		if tm.IssueInterval > tm.Latency {
			t.Errorf("%v issue interval %d exceeds latency %d", op, tm.IssueInterval, tm.Latency)
		}
		if int(tm.FU) >= int(NumFUKinds) {
			t.Errorf("%v has bad FU kind %v", op, tm.FU)
		}
	}
}

func TestTable1Latencies(t *testing.T) {
	// Spot-check the values printed in Table 1.
	checks := []struct {
		op       OpClass
		lat, iss int
	}{
		{OpIntAlu, 1, 1}, {OpIntMult, 3, 1}, {OpIntDiv, 20, 19},
		{OpLoad, 2, 1}, {OpFPAdd, 2, 1}, {OpFPMult, 4, 1},
		{OpFPDiv, 12, 12}, {OpFPSqrt, 24, 24},
	}
	for _, c := range checks {
		if Timings[c.op].Latency != c.lat || Timings[c.op].IssueInterval != c.iss {
			t.Errorf("%v timing = %+v, want %d/%d", c.op, Timings[c.op], c.lat, c.iss)
		}
	}
}

func TestFUCounts(t *testing.T) {
	want := map[FUKind]int{
		FUIntAdd: 8, FUIntMultDiv: 4, FULoadStore: 4, FUFPAdd: 8, FUFPMultDiv: 4,
	}
	for k, n := range want {
		if FUCounts[k] != n {
			t.Errorf("FUCounts[%v] = %d, want %d", k, FUCounts[k], n)
		}
	}
}

func TestTraceInstValidate(t *testing.T) {
	good := []TraceInst{
		{Op: OpIntAlu, Dest: 3, Src1: 1, Src2: 2},
		{Op: OpLoad, Dest: 5, Src1: 1, Src2: RegNone, Addr: 0x1000},
		{Op: OpStore, Dest: RegNone, Src1: 1, Src2: 2, Addr: 0x2000},
		{Op: OpBranch, Dest: RegNone, Src1: 4, Src2: RegNone, Taken: true},
		{Op: OpFPAdd, Dest: NumIntRegs + 1, Src1: NumIntRegs + 2, Src2: NumIntRegs + 3},
	}
	for i, ti := range good {
		if err := ti.Validate(); err != nil {
			t.Errorf("valid record %d rejected: %v", i, err)
		}
	}
	bad := []TraceInst{
		{Op: NumOpClasses, Dest: RegNone, Src1: RegNone, Src2: RegNone},
		{Op: OpIntAlu, Dest: 70, Src1: 1, Src2: 2},
		{Op: OpIntAlu, Dest: 1, Src1: -5, Src2: 2},
		{Op: OpStore, Dest: 3, Src1: 1, Src2: 2, Addr: 0x10},
		{Op: OpBranch, Dest: 3, Src1: 1, Src2: RegNone},
		{Op: OpLoad, Dest: RegNone, Src1: 1, Src2: RegNone, Addr: 0x10},
		{Op: OpLoad, Dest: 1, Src1: 1, Src2: RegNone, Addr: 0},
	}
	for i, ti := range bad {
		if err := ti.Validate(); err == nil {
			t.Errorf("invalid record %d accepted", i)
		}
	}
}

func TestHasDest(t *testing.T) {
	ld := TraceInst{Op: OpLoad, Dest: 4}
	st := TraceInst{Op: OpStore, Dest: RegNone}
	if !ld.HasDest() || st.HasDest() {
		t.Error("HasDest misclassifies")
	}
}
