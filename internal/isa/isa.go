// Package isa defines the synthetic instruction set simulated by the
// pipeline: operation classes, architectural registers, function-unit
// kinds and the Table-1 latency model of the paper's machine.
//
// The ISA is deliberately minimal — the paper's mechanisms depend only on
// an instruction's operation class (which function unit it needs and for
// how long), its register dependences, and, for memory operations, the
// address it touches. Traces produced by package workload are streams of
// TraceInst records in this ISA.
package isa

import "fmt"

// OpClass identifies the kind of an instruction.
type OpClass uint8

const (
	OpNop OpClass = iota
	OpIntAlu
	OpIntMult
	OpIntDiv
	OpLoad
	OpStore
	OpFPAdd
	OpFPMult
	OpFPDiv
	OpFPSqrt
	OpBranch

	NumOpClasses
)

var opNames = [NumOpClasses]string{
	"nop", "ialu", "imult", "idiv", "load", "store",
	"fpadd", "fpmult", "fpdiv", "fpsqrt", "branch",
}

// String returns the mnemonic for the op class.
func (c OpClass) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", uint8(c))
}

// IsMem reports whether the class is a memory operation.
func (c OpClass) IsMem() bool { return c == OpLoad || c == OpStore }

// IsFP reports whether the class produces/consumes floating-point registers.
func (c OpClass) IsFP() bool {
	return c == OpFPAdd || c == OpFPMult || c == OpFPDiv || c == OpFPSqrt
}

// Architectural register file shape. Registers 0..NumIntRegs-1 are integer,
// NumIntRegs..NumIntRegs+NumFPRegs-1 are floating point. RegNone marks an
// absent operand.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
	RegNone    = -1
)

// IsFPReg reports whether architectural register r is a floating-point one.
func IsFPReg(r int) bool { return r >= NumIntRegs }

// FUKind identifies a function-unit pool (Table 1).
type FUKind uint8

const (
	FUIntAdd FUKind = iota
	FUIntMultDiv
	FULoadStore
	FUFPAdd
	FUFPMultDiv

	NumFUKinds
)

var fuNames = [NumFUKinds]string{"intadd", "intmuldiv", "ldst", "fpadd", "fpmuldiv"}

// String returns the pool name.
func (k FUKind) String() string {
	if int(k) < len(fuNames) {
		return fuNames[k]
	}
	return fmt.Sprintf("fu(%d)", uint8(k))
}

// OpTiming describes the execution timing of one op class on its unit:
// Latency is the total execution latency in cycles; IssueInterval is the
// number of cycles the unit is busy before it can accept another
// instruction (Table 1's "total/issue" pair).
type OpTiming struct {
	FU            FUKind
	Latency       int
	IssueInterval int
}

// Timings is the Table-1 latency model. Loads use the Latency entry as
// their cache-hit pipeline latency; cache misses extend it dynamically.
var Timings = [NumOpClasses]OpTiming{
	OpNop:     {FUIntAdd, 1, 1},
	OpIntAlu:  {FUIntAdd, 1, 1},
	OpIntMult: {FUIntMultDiv, 3, 1},
	OpIntDiv:  {FUIntMultDiv, 20, 19},
	OpLoad:    {FULoadStore, 2, 1},
	OpStore:   {FULoadStore, 2, 1},
	OpFPAdd:   {FUFPAdd, 2, 1},
	OpFPMult:  {FUFPMultDiv, 4, 1},
	OpFPDiv:   {FUFPMultDiv, 12, 12},
	OpFPSqrt:  {FUFPMultDiv, 24, 24},
	OpBranch:  {FUIntAdd, 1, 1},
}

// FUCounts is the number of units in each pool (Table 1: 8 Int Add, 4 Int
// Mult/Div, 4 Load/Store, 8 FP Add, 4 FP Mult/Div/Sqrt).
var FUCounts = [NumFUKinds]int{
	FUIntAdd:     8,
	FUIntMultDiv: 4,
	FULoadStore:  4,
	FUFPAdd:      8,
	FUFPMultDiv:  4,
}

// Region is an address range a workload touches; the simulator prewarns
// caches from these so short runs measure steady-state behaviour.
type Region struct {
	Base uint64
	Size uint64
	Code bool // instruction region (prewarm the I-cache side)
}

// TraceInst is one dynamic instruction in a synthetic trace. Src1/Src2 are
// architectural source registers (RegNone if absent); Dest is the
// architectural destination (RegNone for stores, branches and nops).
type TraceInst struct {
	PC    uint64
	Op    OpClass
	Dest  int8
	Src1  int8
	Src2  int8
	Addr  uint64 // effective address for loads/stores
	Taken bool   // actual outcome for branches
}

// HasDest reports whether the instruction writes a register.
func (t *TraceInst) HasDest() bool { return t.Dest != RegNone }

// Validate checks internal consistency of a trace record and returns a
// descriptive error for malformed records. Used by tests and tracegen.
func (t *TraceInst) Validate() error {
	if t.Op >= NumOpClasses {
		return fmt.Errorf("isa: bad op class %d", t.Op)
	}
	checkReg := func(name string, r int8) error {
		if r != RegNone && (r < 0 || int(r) >= NumRegs) {
			return fmt.Errorf("isa: %s register %d out of range", name, r)
		}
		return nil
	}
	if err := checkReg("dest", t.Dest); err != nil {
		return err
	}
	if err := checkReg("src1", t.Src1); err != nil {
		return err
	}
	if err := checkReg("src2", t.Src2); err != nil {
		return err
	}
	switch t.Op {
	case OpStore, OpBranch, OpNop:
		if t.Dest != RegNone {
			return fmt.Errorf("isa: %v must not write a register", t.Op)
		}
	case OpLoad:
		if t.Dest == RegNone {
			return fmt.Errorf("isa: load must write a register")
		}
	}
	if t.Op.IsMem() && t.Addr == 0 {
		return fmt.Errorf("isa: memory op with zero address")
	}
	return nil
}
