package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rng"
)

func testProgram(t *testing.T, name string) *program {
	t.Helper()
	prof, ok := ProfileFor(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	return synthesize(&prof, rng.New(1))
}

func TestProgramShape(t *testing.T) {
	for _, name := range Names() {
		prof, _ := ProfileFor(name)
		p := synthesize(&prof, rng.New(1))
		if len(p.blockStart) != prof.Blocks {
			t.Errorf("%s: %d blocks, profile wants %d", name, len(p.blockStart), prof.Blocks)
		}
		if len(p.insts) < prof.Blocks*2 {
			t.Errorf("%s: program too short: %d", name, len(p.insts))
		}
	}
}

func TestEveryBlockEndsWithBranch(t *testing.T) {
	p := testProgram(t, "parser")
	for b, start := range p.blockStart {
		var end int32
		if b+1 < len(p.blockStart) {
			end = p.blockStart[b+1] - 1
		} else {
			end = int32(len(p.insts)) - 1
		}
		if p.insts[end].op != isa.OpBranch {
			t.Fatalf("block %d does not end with a branch (op %v)", b, p.insts[end].op)
		}
		// No branches inside the block body.
		for i := start; i < end; i++ {
			if p.insts[i].op == isa.OpBranch {
				t.Fatalf("stray branch inside block %d at %d", b, i)
			}
		}
	}
}

func TestBranchTargetsAreBlockStarts(t *testing.T) {
	p := testProgram(t, "crafty")
	starts := map[int32]bool{}
	for _, s := range p.blockStart {
		starts[s] = true
	}
	for i := range p.insts {
		si := &p.insts[i]
		if si.op != isa.OpBranch {
			continue
		}
		if !starts[si.takenTarget] {
			t.Fatalf("branch %d taken target %d is not a block start", i, si.takenTarget)
		}
		if !starts[si.notTakenTarget] {
			t.Fatalf("branch %d fallthrough %d is not a block start", i, si.notTakenTarget)
		}
	}
}

func TestChaseLoadsUseChaseRegister(t *testing.T) {
	p := testProgram(t, "mcf") // ChaseFrac 0.35
	chases, plain := 0, 0
	for i := range p.insts {
		si := &p.insts[i]
		if si.op != isa.OpLoad {
			continue
		}
		if si.role == memChase {
			chases++
			if si.dest != chaseReg || si.src1 != chaseReg {
				t.Fatalf("chase load %d: dest=%d src=%d, want %d", i, si.dest, si.src1, chaseReg)
			}
		} else {
			plain++
			if si.dest == chaseReg {
				t.Fatalf("non-chase load %d writes the chase register", i)
			}
		}
	}
	if chases == 0 {
		t.Fatal("mcf has no chase loads")
	}
	if plain == 0 {
		t.Fatal("mcf has only chase loads")
	}
}

func TestNoChaseInStreamingProfiles(t *testing.T) {
	p := testProgram(t, "art") // ChaseFrac 0
	for i := range p.insts {
		if p.insts[i].role == memChase {
			t.Fatalf("art has a chase load at %d", i)
		}
	}
}

func TestDestinationClassesConsistent(t *testing.T) {
	p := testProgram(t, "apsi")
	for i := range p.insts {
		si := &p.insts[i]
		switch si.op {
		case isa.OpStore, isa.OpBranch:
			if si.dest != isa.RegNone {
				t.Fatalf("inst %d (%v) has a destination", i, si.op)
			}
		case isa.OpFPAdd, isa.OpFPMult, isa.OpFPDiv, isa.OpFPSqrt:
			if !isa.IsFPReg(int(si.dest)) {
				t.Fatalf("FP op %d writes int register %d", i, si.dest)
			}
		case isa.OpIntAlu, isa.OpIntMult, isa.OpIntDiv:
			if isa.IsFPReg(int(si.dest)) {
				t.Fatalf("int op %d writes fp register %d", i, si.dest)
			}
		}
	}
}

func TestStreamIndicesWithinProfile(t *testing.T) {
	prof, _ := ProfileFor("art")
	p := synthesize(&prof, rng.New(1))
	for i := range p.insts {
		si := &p.insts[i]
		if si.role == memStream && int(si.streamIdx) >= prof.IndepMemPar {
			t.Fatalf("inst %d stream index %d out of %d", i, si.streamIdx, prof.IndepMemPar)
		}
	}
}

func TestSynthesisDeterministic(t *testing.T) {
	prof, _ := ProfileFor("gzip")
	a := synthesize(&prof, rng.New(5))
	b := synthesize(&prof, rng.New(5))
	if len(a.insts) != len(b.insts) {
		t.Fatal("lengths differ")
	}
	for i := range a.insts {
		if a.insts[i] != b.insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}
