package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
)

// Generator produces the dynamic instruction stream for one thread by
// executing a synthesized static program. It is deterministic: the same
// (profile, seed) pair yields the same stream, so different simulator
// configurations replay identical traces.
type Generator struct {
	prof Profile
	prog *program
	r    *rng.SplitMix64

	codeBase uint64
	dataBase uint64

	cur        int32 // current static instruction index
	generated  uint64
	streamPos  []uint64 // per-stream cursor offsets
	streamSpan uint64   // bytes per stream region
}

// NewGenerator synthesizes the static program for prof and returns a
// generator positioned at its first instruction. Each thread should use a
// distinct seed so that address regions and dynamic outcomes differ.
func NewGenerator(prof Profile, seed uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return newGenerator(prof, seed), nil
}

func newGenerator(prof Profile, seed uint64) *Generator {
	// The static program depends only on the benchmark name — the same
	// "binary" is used wherever the benchmark appears — while dynamic
	// outcomes (branch draws, random addresses) vary with seed.
	progR := rng.New(hashName(prof.Name))
	// Distinct 4 GiB regions per seed keep threads' address spaces
	// disjoint, and low-bit salt scatters each region across cache sets —
	// page-aligned bases would put every thread in the same few sets and
	// thrash the shared caches into starvation.
	salt := (seed + 1) * 0x9e3779b97f4a7c15
	g := &Generator{
		prof:      prof,
		prog:      synthesize(&prof, progR),
		r:         rng.New(seed*0x9e3779b97f4a7c15 + 2),
		codeBase:  (seed&0xffff|0x1_0000)<<32 + salt&0x3f_ffc0,
		dataBase:  (seed&0xffff|0x8_0000)<<32 + (salt>>20)&0x3fff_ff80,
		streamPos: make([]uint64, prof.IndepMemPar),
	}
	g.streamSpan = prof.WorkingSet / uint64(prof.IndepMemPar)
	if g.streamSpan < 4096 {
		g.streamSpan = 4096
	}
	for i := range g.streamPos {
		g.streamPos[i] = uint64(g.r.Intn(1<<12)) * 8
	}
	return g
}

// MustNewGenerator is NewGenerator but panics on an invalid profile; for
// use with the package's own vetted profile table.
func MustNewGenerator(prof Profile, seed uint64) *Generator {
	g, err := NewGenerator(prof, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// hashName is FNV-1a over the benchmark name.
func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Regions reports the thread's code and data address ranges so the
// simulator can prewarm its caches (steady-state measurement on short
// runs, standing in for the paper's 100M-instruction SimPoints).
func (g *Generator) Regions() []isa.Region {
	return []isa.Region{
		{Base: g.codeBase, Size: uint64(len(g.prog.insts)) * 4, Code: true},
		{Base: g.dataBase, Size: g.prof.WorkingSet},
	}
}

// Generated returns how many instructions have been produced so far.
func (g *Generator) Generated() uint64 { return g.generated }

// ProgramLen returns the static program length in instructions.
func (g *Generator) ProgramLen() int { return len(g.prog.insts) }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next fills out with the next dynamic instruction. The stream is endless
// (the program loops); callers stop at their instruction budget.
func (g *Generator) Next(out *isa.TraceInst) {
	si := &g.prog.insts[g.cur]
	out.PC = g.codeBase + uint64(g.cur)*4
	out.Op = si.op
	out.Dest = si.dest
	out.Src1 = si.src1
	out.Src2 = si.src2
	out.Addr = 0
	out.Taken = false

	switch si.op {
	case isa.OpBranch:
		taken := si.biasTaken
		if !g.r.Bool(si.biasP) {
			taken = !taken
		}
		out.Taken = taken
		if taken {
			g.cur = si.takenTarget
		} else {
			g.cur = si.notTakenTarget
		}
	case isa.OpLoad, isa.OpStore:
		out.Addr = g.address(si)
		g.advance()
	default:
		g.advance()
	}
	g.generated++
}

// BranchTarget returns the taken-target PC of the branch at pc, as the
// front end's BTB would need it. It panics if pc is not a branch of this
// generator's program (callers pass PCs produced by Next).
func (g *Generator) BranchTarget(pc uint64) uint64 {
	idx := int32((pc - g.codeBase) / 4)
	si := &g.prog.insts[idx]
	if si.op != isa.OpBranch {
		panic(fmt.Sprintf("workload: BranchTarget on non-branch pc %#x", pc))
	}
	return g.codeBase + uint64(si.takenTarget)*4
}

func (g *Generator) advance() {
	g.cur++
	if int(g.cur) >= len(g.prog.insts) {
		g.cur = 0
	}
}

func (g *Generator) address(si *staticInst) uint64 {
	switch si.role {
	case memStream:
		i := int(si.streamIdx)
		pos := g.streamPos[i]
		g.streamPos[i] = (pos + g.prof.Stride) % g.streamSpan
		return g.dataBase + uint64(i)*g.streamSpan + pos&^7 + 8
	case memChase:
		// Chase addresses are uniform over the working set; the chase's
		// serialization is carried by its register dependence.
		off := g.r.Uint64() % g.prof.WorkingSet
		return g.dataBase + off&^7 + 8
	case memRandom:
		// Temporal locality: most random accesses re-touch a small hot
		// region (which therefore survives LRU under neighbouring
		// threads' streaming pollution); the rest are uniform.
		span := g.prof.WorkingSet
		if g.prof.HotFrac > 0 && g.r.Bool(g.prof.HotFrac) {
			span = g.prof.HotSet
		}
		off := g.r.Uint64() % span
		return g.dataBase + off&^7 + 8
	default:
		panic("workload: memory op without an address role")
	}
}

// Stats summarizes a generated stream prefix; used by tracegen and tests
// to verify that a profile realizes its declared mix.
type Stats struct {
	Total    uint64
	PerOp    [isa.NumOpClasses]uint64
	Taken    uint64
	Branches uint64
}

// Measure runs the generator forward n instructions and tallies the mix.
func Measure(g *Generator, n int) Stats {
	var st Stats
	var ti isa.TraceInst
	for i := 0; i < n; i++ {
		g.Next(&ti)
		st.Total++
		st.PerOp[ti.Op]++
		if ti.Op == isa.OpBranch {
			st.Branches++
			if ti.Taken {
				st.Taken++
			}
		}
	}
	return st
}
