package workload

import "fmt"

// Mix is one of the paper's Table-2 four-thread workloads.
type Mix struct {
	Name           string
	Benchmarks     [4]string
	Classification string // the paper's row label
}

// Mixes reproduces Table 2 exactly.
var Mixes = []Mix{
	{"Mix 1", [4]string{"ammp", "art", "mgrid", "apsi"}, "4 Low IPC"},
	{"Mix 2", [4]string{"art", "mgrid", "apsi", "parser"}, "3 Low IPC + 1 Mid IPC"},
	{"Mix 3", [4]string{"ammp", "mgrid", "apsi", "parser"}, "3 Low IPC + 1 Mid IPC"},
	{"Mix 4", [4]string{"art", "mgrid", "apsi", "vortex"}, "3 Low IPC + 1 Mid IPC"},
	{"Mix 5", [4]string{"ammp", "apsi", "parser", "crafty"}, "2 Low IPC + 2 Mid IPC"},
	{"Mix 6", [4]string{"art", "apsi", "parser", "gap"}, "2 Low IPC + 2 Mid IPC"},
	{"Mix 7", [4]string{"ammp", "apsi", "vortex", "eon"}, "2 Low IPC + 2 Mid IPC"},
	{"Mix 8", [4]string{"art", "parser", "vpr", "gzip"}, "2 Low IPC + 2 Mid IPC"},
	{"Mix 9", [4]string{"mgrid", "parser", "perlbmk", "mcf"}, "2 Low IPC + 2 Mid IPC"},
	{"Mix 10", [4]string{"lucas", "twolf", "bzip2", "wupwise"}, "4 High IPC"},
	{"Mix 11", [4]string{"equake", "mesa", "swim", "twolf"}, "4 High IPC"},
}

// MixByName returns the mix with the given name ("Mix 1".."Mix 11").
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// MixProfiles resolves a mix's benchmark names to their profiles.
func MixProfiles(m Mix) ([4]Profile, error) {
	var out [4]Profile
	for i, b := range m.Benchmarks {
		p, ok := ProfileFor(b)
		if !ok {
			return out, fmt.Errorf("workload: mix %q references unknown benchmark %q", m.Name, b)
		}
		out[i] = p
	}
	return out, nil
}

// MixGenerators builds one generator per thread of the mix. Seeds are
// derived from baseSeed and the thread slot so that two threads running
// the same benchmark (none in Table 2, but allowed) do not collide.
func MixGenerators(m Mix, baseSeed uint64) ([4]*Generator, error) {
	profs, err := MixProfiles(m)
	if err != nil {
		return [4]*Generator{}, err
	}
	var out [4]*Generator
	for i, p := range profs {
		out[i] = MustNewGenerator(p, baseSeed*16+uint64(i)+1)
	}
	return out, nil
}
