package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p, ok := ProfileFor(name)
		if !ok {
			t.Fatalf("profile %q vanished", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
	}
}

func TestClassesCoverAllThree(t *testing.T) {
	seen := map[ILPClass]int{}
	for _, name := range Names() {
		p, _ := ProfileFor(name)
		seen[p.Class]++
	}
	if seen[LowILP] == 0 || seen[MidILP] == 0 || seen[HighILP] == 0 {
		t.Fatalf("class coverage: %v", seen)
	}
}

func TestClassWorkingSetsOrdered(t *testing.T) {
	// Low-ILP (memory-bound) working sets must exceed the 2MB L2; high-ILP
	// must fit comfortably.
	for _, name := range Names() {
		p, _ := ProfileFor(name)
		switch p.Class {
		case LowILP:
			if p.WorkingSet <= 2<<20 {
				t.Errorf("%s: low-ILP working set %d fits L2", name, p.WorkingSet)
			}
		case HighILP:
			if p.WorkingSet >= 2<<20 {
				t.Errorf("%s: high-ILP working set %d overflows L2", name, p.WorkingSet)
			}
		}
	}
}

func TestMixesMatchTable2(t *testing.T) {
	if len(Mixes) != 11 {
		t.Fatalf("%d mixes", len(Mixes))
	}
	// Spot-check Table 2 rows.
	m1, ok := MixByName("Mix 1")
	if !ok || m1.Benchmarks != [4]string{"ammp", "art", "mgrid", "apsi"} {
		t.Fatalf("Mix 1 = %+v", m1)
	}
	m9, _ := MixByName("Mix 9")
	if m9.Benchmarks != [4]string{"mgrid", "parser", "perlbmk", "mcf"} {
		t.Fatalf("Mix 9 = %+v", m9)
	}
	if _, ok := MixByName("Mix 99"); ok {
		t.Fatal("bogus mix found")
	}
}

func TestMixClassificationConsistent(t *testing.T) {
	// Every mix's label must match the classes of its benchmarks.
	count := func(m Mix, class ILPClass) int {
		n := 0
		for _, b := range m.Benchmarks {
			p, ok := ProfileFor(b)
			if !ok {
				t.Fatalf("%s: unknown benchmark %q", m.Name, b)
			}
			if p.Class == class {
				n++
			}
		}
		return n
	}
	for _, m := range Mixes {
		low, high := count(m, LowILP), count(m, HighILP)
		switch m.Classification {
		case "4 Low IPC":
			if low != 4 {
				t.Errorf("%s: %d low", m.Name, low)
			}
		case "3 Low IPC + 1 Mid IPC":
			if low != 3 || high != 0 {
				t.Errorf("%s: low=%d high=%d", m.Name, low, high)
			}
		case "2 Low IPC + 2 Mid IPC":
			if low != 2 || high != 0 {
				t.Errorf("%s: low=%d high=%d", m.Name, low, high)
			}
		case "4 High IPC":
			if high != 4 {
				t.Errorf("%s: %d high", m.Name, high)
			}
		default:
			t.Errorf("%s: unknown label %q", m.Name, m.Classification)
		}
	}
}

func TestMixGenerators(t *testing.T) {
	m, _ := MixByName("Mix 1")
	gens, err := MixGenerators(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gens {
		if g == nil {
			t.Fatalf("generator %d nil", i)
		}
	}
	// Distinct threads must have distinct address regions.
	r0 := gens[0].Regions()
	r1 := gens[1].Regions()
	if r0[1].Base == r1[1].Base {
		t.Fatal("threads share a data region")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	prof, _ := ProfileFor("art")
	a := MustNewGenerator(prof, 9)
	b := MustNewGenerator(prof, 9)
	var ia, ib isa.TraceInst
	for i := 0; i < 10000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	prof, _ := ProfileFor("art")
	a := MustNewGenerator(prof, 1)
	b := MustNewGenerator(prof, 2)
	var ia, ib isa.TraceInst
	diff := false
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia.Addr != ib.Addr {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical address streams")
	}
}

func TestStaticProgramStablePerBenchmark(t *testing.T) {
	prof, _ := ProfileFor("parser")
	a := MustNewGenerator(prof, 1)
	b := MustNewGenerator(prof, 99)
	if a.ProgramLen() != b.ProgramLen() {
		t.Fatal("static program depends on the seed")
	}
}

func TestTraceValidity(t *testing.T) {
	for _, name := range Names() {
		prof, _ := ProfileFor(name)
		g := MustNewGenerator(prof, 3)
		var ti isa.TraceInst
		for i := 0; i < 20000; i++ {
			g.Next(&ti)
			if err := ti.Validate(); err != nil {
				t.Fatalf("%s instruction %d: %v", name, i, err)
			}
		}
	}
}

func TestMeasuredMixPlausible(t *testing.T) {
	// The profile fractions seed the static program; the dynamic mix also
	// depends on which blocks the biased branches make hot, so only broad
	// plausibility is asserted (each op class present in sane proportion).
	for _, name := range []string{"art", "parser", "swim", "mcf"} {
		prof, _ := ProfileFor(name)
		g := MustNewGenerator(prof, 5)
		st := Measure(g, 200000)
		loadFrac := float64(st.PerOp[isa.OpLoad]) / float64(st.Total)
		if loadFrac < 0.10 || loadFrac > 0.60 {
			t.Errorf("%s: implausible load fraction %.3f", name, loadFrac)
		}
		storeFrac := float64(st.PerOp[isa.OpStore]) / float64(st.Total)
		if storeFrac < 0.01 || storeFrac > 0.30 {
			t.Errorf("%s: implausible store fraction %.3f", name, storeFrac)
		}
		if st.Branches == 0 {
			t.Errorf("%s: no branches generated", name)
		}
	}
}

func TestBranchBiasRealized(t *testing.T) {
	prof, _ := ProfileFor("swim") // bias 0.99
	g := MustNewGenerator(prof, 5)
	st := Measure(g, 100000)
	// With a 0.99 per-branch bias, the taken rate must be strongly
	// polarized (either high or low depending on static directions) and
	// outcomes must not be 50/50 noise.
	rate := float64(st.Taken) / float64(st.Branches)
	if rate > 0.45 && rate < 0.55 {
		t.Fatalf("biased branches look random: taken rate %.2f", rate)
	}
}

func TestAddressesWithinRegion(t *testing.T) {
	prof, _ := ProfileFor("mcf")
	g := MustNewGenerator(prof, 7)
	regions := g.Regions()
	data := regions[1]
	var ti isa.TraceInst
	for i := 0; i < 50000; i++ {
		g.Next(&ti)
		if !ti.Op.IsMem() {
			continue
		}
		if ti.Addr < data.Base || ti.Addr >= data.Base+data.Size+16 {
			t.Fatalf("address %#x outside region [%#x, %#x)", ti.Addr, data.Base, data.Base+data.Size)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	prof, _ := ProfileFor("gzip")
	g := MustNewGenerator(prof, 7)
	var ti isa.TraceInst
	for i := 0; i < 10000; i++ {
		g.Next(&ti)
		if ti.Op == isa.OpBranch {
			tgt := g.BranchTarget(ti.PC)
			code := g.Regions()[0]
			if tgt < code.Base || tgt >= code.Base+code.Size {
				t.Fatalf("branch target %#x outside code region", tgt)
			}
		}
	}
}

func TestRegionsShape(t *testing.T) {
	prof, _ := ProfileFor("art")
	g := MustNewGenerator(prof, 7)
	regions := g.Regions()
	if len(regions) != 2 || !regions[0].Code || regions[1].Code {
		t.Fatalf("regions: %+v", regions)
	}
	if regions[1].Size != prof.WorkingSet {
		t.Fatal("data region size mismatch")
	}
}

func TestInvalidProfileRejected(t *testing.T) {
	prof, _ := ProfileFor("art")
	prof.LoadFrac = 0.9 // no compute left
	if _, err := NewGenerator(prof, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
	prof2, _ := ProfileFor("art")
	prof2.LocalFrac = 0
	if _, err := NewGenerator(prof2, 1); err == nil {
		t.Fatal("zero LocalFrac accepted")
	}
}
