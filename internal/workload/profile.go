// Package workload synthesizes deterministic instruction traces that stand
// in for the SPEC CPU2000 benchmarks used in the paper (see DESIGN.md §2).
//
// Each benchmark is described by a Profile: an operation mix, a dependency
// structure (how far back source operands reach, how many consumers a load
// feeds, whether loads chase pointers), a memory behaviour (working-set
// size, streaming vs random access), and branch behaviour. From a profile
// the package synthesizes a static "program" — a loop of basic blocks with
// a fixed instruction sequence — which a Generator then executes
// dynamically. Because the program is static, the same static load sees
// similar degrees of dependence across dynamic instances and branches have
// stable biases, which is precisely the property the paper's last-value
// DoD predictor and the gShare predictor rely on.
package workload

import (
	"fmt"
	"sort"
)

// ILPClass is the paper's three-way benchmark classification: low-ILP
// benchmarks are memory bound, high-ILP benchmarks are execution bound.
type ILPClass uint8

const (
	LowILP ILPClass = iota
	MidILP
	HighILP
)

// String returns the class label used in Table 2.
func (c ILPClass) String() string {
	switch c {
	case LowILP:
		return "low"
	case MidILP:
		return "mid"
	case HighILP:
		return "high"
	}
	return fmt.Sprintf("ilp(%d)", uint8(c))
}

// Profile parameterizes the synthetic stand-in for one SPEC benchmark.
type Profile struct {
	Name  string
	Class ILPClass

	// Operation mix (fractions; need not sum to exactly 1 — the remainder
	// is integer ALU work).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // fraction of compute ops that are floating point
	LongOpFrac float64 // fraction of compute ops that are long-latency (div/sqrt/mult)

	// Dependency structure.
	LocalFrac   float64 // probability a source reads a recent producer (else a loop-invariant register)
	DepP        float64 // geometric parameter for dependence distance (higher = tighter chains)
	LoadFanout  float64 // probability each instruction in the fanout window directly consumes the preceding load
	FanoutWin   int     // size of that window
	ChaseFrac   float64 // fraction of static loads that pointer-chase (address depends on previous load)
	IndepMemPar int     // number of independent streaming cursors (memory-level parallelism potential)

	// Memory behaviour.
	WorkingSet uint64  // bytes touched by the random-access component
	Stride     uint64  // bytes between consecutive streaming accesses
	StreamFrac float64 // fraction of non-chase memory ops that stream (rest are random in WorkingSet)
	HotFrac    float64 // fraction of random accesses that hit a small hot set (temporal locality)
	HotSet     uint64  // bytes of the frequently re-touched hot region (at the region base)

	// Control flow.
	Blocks      int     // number of basic blocks in the synthetic loop
	BlockLen    int     // average instructions per block
	BranchBias  float64 // probability a branch follows its biased direction
	FwdJumpFrac float64 // fraction of branches whose taken target skips forward (rest loop backward)
}

// Validate sanity-checks a profile.
func (p *Profile) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("workload: profile %q: %s=%g out of [0,1]", p.Name, name, v)
		}
		return nil
	}
	for _, c := range []struct {
		n string
		v float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac},
		{"BranchFrac", p.BranchFrac}, {"FPFrac", p.FPFrac},
		{"LongOpFrac", p.LongOpFrac}, {"LoadFanout", p.LoadFanout},
		{"ChaseFrac", p.ChaseFrac}, {"StreamFrac", p.StreamFrac},
		{"BranchBias", p.BranchBias}, {"FwdJumpFrac", p.FwdJumpFrac},
	} {
		if err := frac(c.n, c.v); err != nil {
			return err
		}
	}
	if p.LoadFrac+p.StoreFrac+p.BranchFrac > 0.9 {
		return fmt.Errorf("workload: profile %q: op fractions leave no compute", p.Name)
	}
	if p.LocalFrac <= 0 || p.LocalFrac > 1 {
		return fmt.Errorf("workload: profile %q: LocalFrac=%g out of (0,1]", p.Name, p.LocalFrac)
	}
	if p.DepP <= 0 || p.DepP > 1 {
		return fmt.Errorf("workload: profile %q: DepP=%g out of (0,1]", p.Name, p.DepP)
	}
	if p.Blocks < 1 || p.BlockLen < 2 {
		return fmt.Errorf("workload: profile %q: degenerate program shape", p.Name)
	}
	if p.WorkingSet == 0 {
		return fmt.Errorf("workload: profile %q: zero working set", p.Name)
	}
	if err := frac("HotFrac", p.HotFrac); err != nil {
		return err
	}
	if p.HotFrac > 0 && (p.HotSet == 0 || p.HotSet > p.WorkingSet) {
		return fmt.Errorf("workload: profile %q: HotSet %d out of range", p.Name, p.HotSet)
	}
	if p.IndepMemPar < 1 {
		return fmt.Errorf("workload: profile %q: IndepMemPar must be >= 1", p.Name)
	}
	return nil
}

const (
	kib = 1024
	mib = 1024 * kib
)

// profiles is the per-benchmark table. Classes are assigned so that every
// Table-2 mix matches the paper's row label (see DESIGN.md). Within a
// class, parameters vary to give each benchmark a distinct personality:
//
//   - low-ILP  (memory bound): large working sets that overflow the 2 MB L2,
//     frequent loads, small DoD fanout; mcf/ammp/twolf-style pointer chasing
//     where noted.
//   - mid-ILP: working sets around the L2 size, moderate miss rates.
//   - high-ILP (execution bound): cache-resident working sets, wide
//     dependence distances, FP-heavy where the original is an FP code.
var profiles = map[string]Profile{
	// ---- low ILP / memory bound ----
	"ammp": {
		Name: "ammp", Class: LowILP,
		LoadFrac: 0.30, StoreFrac: 0.08, BranchFrac: 0.08, FPFrac: 0.6, LongOpFrac: 0.06,
		LocalFrac: 0.78, DepP: 0.45, LoadFanout: 0.48, FanoutWin: 6, ChaseFrac: 0.10, IndepMemPar: 2,
		WorkingSet: 48 * mib, Stride: 24, StreamFrac: 0.75, HotFrac: 0.5, HotSet: 64 * kib,
		Blocks: 24, BlockLen: 18, BranchBias: 0.92, FwdJumpFrac: 0.3,
	},
	"art": {
		Name: "art", Class: LowILP,
		LoadFrac: 0.32, StoreFrac: 0.06, BranchFrac: 0.07, FPFrac: 0.7, LongOpFrac: 0.04,
		LocalFrac: 0.75, DepP: 0.35, LoadFanout: 0.44, FanoutWin: 5, ChaseFrac: 0.0, IndepMemPar: 6,
		WorkingSet: 64 * mib, Stride: 16, StreamFrac: 0.8, HotFrac: 0.2, HotSet: 64 * kib,
		Blocks: 12, BlockLen: 22, BranchBias: 0.96, FwdJumpFrac: 0.2,
	},
	"mgrid": {
		Name: "mgrid", Class: LowILP,
		LoadFrac: 0.33, StoreFrac: 0.09, BranchFrac: 0.04, FPFrac: 0.8, LongOpFrac: 0.05,
		LocalFrac: 0.74, DepP: 0.30, LoadFanout: 0.57, FanoutWin: 5, ChaseFrac: 0.0, IndepMemPar: 4,
		WorkingSet: 56 * mib, Stride: 16, StreamFrac: 0.9, HotFrac: 0.5, HotSet: 64 * kib,
		Blocks: 8, BlockLen: 30, BranchBias: 0.97, FwdJumpFrac: 0.1,
	},
	"apsi": {
		Name: "apsi", Class: LowILP,
		LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.06, FPFrac: 0.7, LongOpFrac: 0.08,
		LocalFrac: 0.77, DepP: 0.40, LoadFanout: 0.48, FanoutWin: 6, ChaseFrac: 0.05, IndepMemPar: 3,
		WorkingSet: 40 * mib, Stride: 24, StreamFrac: 0.75, HotFrac: 0.5, HotSet: 64 * kib,
		Blocks: 20, BlockLen: 20, BranchBias: 0.93, FwdJumpFrac: 0.25,
	},
	"vpr": {
		Name: "vpr", Class: LowILP,
		LoadFrac: 0.29, StoreFrac: 0.09, BranchFrac: 0.11, FPFrac: 0.2, LongOpFrac: 0.03,
		LocalFrac: 0.78, DepP: 0.50, LoadFanout: 0.64, FanoutWin: 6, ChaseFrac: 0.10, IndepMemPar: 2,
		WorkingSet: 24 * mib, Stride: 16, StreamFrac: 0.4, HotFrac: 0.6, HotSet: 64 * kib,
		Blocks: 32, BlockLen: 12, BranchBias: 0.88, FwdJumpFrac: 0.4,
	},
	"mcf": {
		Name: "mcf", Class: LowILP,
		LoadFrac: 0.34, StoreFrac: 0.08, BranchFrac: 0.10, FPFrac: 0.0, LongOpFrac: 0.02,
		LocalFrac: 0.80, DepP: 0.55, LoadFanout: 0.44, FanoutWin: 5, ChaseFrac: 0.35, IndepMemPar: 2,
		WorkingSet: 96 * mib, Stride: 32, StreamFrac: 0.15, HotFrac: 0.25, HotSet: 64 * kib,
		Blocks: 28, BlockLen: 12, BranchBias: 0.87, FwdJumpFrac: 0.35,
	},

	// ---- mid ILP ----
	"parser": {
		Name: "parser", Class: MidILP,
		LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.13, FPFrac: 0.0, LongOpFrac: 0.02,
		LocalFrac: 0.55, DepP: 0.45, LoadFanout: 0.77, FanoutWin: 6, ChaseFrac: 0.10, IndepMemPar: 2,
		WorkingSet: 768 * kib, Stride: 16, StreamFrac: 0.3, HotFrac: 0.97, HotSet: 48 * kib,
		Blocks: 40, BlockLen: 10, BranchBias: 0.90, FwdJumpFrac: 0.45,
	},
	"vortex": {
		Name: "vortex", Class: MidILP,
		LoadFrac: 0.27, StoreFrac: 0.14, BranchFrac: 0.12, FPFrac: 0.0, LongOpFrac: 0.01,
		LocalFrac: 0.50, DepP: 0.40, LoadFanout: 0.64, FanoutWin: 6, ChaseFrac: 0.06, IndepMemPar: 2,
		WorkingSet: 896 * kib, Stride: 16, StreamFrac: 0.4, HotFrac: 0.97, HotSet: 48 * kib,
		Blocks: 36, BlockLen: 12, BranchBias: 0.94, FwdJumpFrac: 0.4,
	},
	"crafty": {
		Name: "crafty", Class: MidILP,
		LoadFrac: 0.24, StoreFrac: 0.07, BranchFrac: 0.12, FPFrac: 0.0, LongOpFrac: 0.03,
		LocalFrac: 0.50, DepP: 0.35, LoadFanout: 0.64, FanoutWin: 5, ChaseFrac: 0.02, IndepMemPar: 3,
		WorkingSet: 768 * kib, Stride: 16, StreamFrac: 0.3, HotFrac: 0.97, HotSet: 48 * kib,
		Blocks: 30, BlockLen: 14, BranchBias: 0.91, FwdJumpFrac: 0.5,
	},
	"gap": {
		Name: "gap", Class: MidILP,
		LoadFrac: 0.25, StoreFrac: 0.09, BranchFrac: 0.10, FPFrac: 0.0, LongOpFrac: 0.04,
		LocalFrac: 0.50, DepP: 0.40, LoadFanout: 0.57, FanoutWin: 5, ChaseFrac: 0.08, IndepMemPar: 2,
		WorkingSet: 896 * kib, Stride: 16, StreamFrac: 0.35, HotFrac: 0.97, HotSet: 48 * kib,
		Blocks: 26, BlockLen: 13, BranchBias: 0.92, FwdJumpFrac: 0.4,
	},
	"eon": {
		Name: "eon", Class: MidILP,
		LoadFrac: 0.23, StoreFrac: 0.12, BranchFrac: 0.09, FPFrac: 0.45, LongOpFrac: 0.05,
		LocalFrac: 0.50, DepP: 0.33, LoadFanout: 0.57, FanoutWin: 5, ChaseFrac: 0.0, IndepMemPar: 3,
		WorkingSet: 640 * kib, Stride: 8, StreamFrac: 0.4, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 22, BlockLen: 16, BranchBias: 0.93, FwdJumpFrac: 0.35,
	},
	"gzip": {
		Name: "gzip", Class: MidILP,
		LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.12, FPFrac: 0.0, LongOpFrac: 0.01,
		LocalFrac: 0.55, DepP: 0.42, LoadFanout: 0.77, FanoutWin: 6, ChaseFrac: 0.03, IndepMemPar: 2,
		WorkingSet: 1 * mib, Stride: 8, StreamFrac: 0.55, HotFrac: 0.97, HotSet: 48 * kib,
		Blocks: 18, BlockLen: 12, BranchBias: 0.89, FwdJumpFrac: 0.45,
	},
	"perlbmk": {
		Name: "perlbmk", Class: MidILP,
		LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.13, FPFrac: 0.0, LongOpFrac: 0.02,
		LocalFrac: 0.55, DepP: 0.44, LoadFanout: 0.70, FanoutWin: 6, ChaseFrac: 0.08, IndepMemPar: 2,
		WorkingSet: 640 * kib, Stride: 16, StreamFrac: 0.3, HotFrac: 0.97, HotSet: 48 * kib,
		Blocks: 44, BlockLen: 10, BranchBias: 0.92, FwdJumpFrac: 0.5,
	},

	// ---- high ILP / execution bound ----
	"lucas": {
		Name: "lucas", Class: HighILP,
		LoadFrac: 0.20, StoreFrac: 0.08, BranchFrac: 0.03, FPFrac: 0.85, LongOpFrac: 0.04,
		LocalFrac: 0.45, DepP: 0.12, LoadFanout: 0.33, FanoutWin: 4, ChaseFrac: 0.0, IndepMemPar: 8,
		WorkingSet: 448 * kib, Stride: 16, StreamFrac: 0.9, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 6, BlockLen: 36, BranchBias: 0.98, FwdJumpFrac: 0.1,
	},
	"twolf": {
		Name: "twolf", Class: HighILP,
		LoadFrac: 0.22, StoreFrac: 0.07, BranchFrac: 0.11, FPFrac: 0.1, LongOpFrac: 0.02,
		LocalFrac: 0.50, DepP: 0.20, LoadFanout: 0.44, FanoutWin: 5, ChaseFrac: 0.02, IndepMemPar: 4,
		WorkingSet: 384 * kib, Stride: 8, StreamFrac: 0.4, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 28, BlockLen: 14, BranchBias: 0.90, FwdJumpFrac: 0.45,
	},
	"bzip2": {
		Name: "bzip2", Class: HighILP,
		LoadFrac: 0.21, StoreFrac: 0.09, BranchFrac: 0.10, FPFrac: 0.0, LongOpFrac: 0.01,
		LocalFrac: 0.50, DepP: 0.18, LoadFanout: 0.44, FanoutWin: 5, ChaseFrac: 0.0, IndepMemPar: 4,
		WorkingSet: 448 * kib, Stride: 8, StreamFrac: 0.65, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 16, BlockLen: 16, BranchBias: 0.92, FwdJumpFrac: 0.4,
	},
	"wupwise": {
		Name: "wupwise", Class: HighILP,
		LoadFrac: 0.19, StoreFrac: 0.08, BranchFrac: 0.04, FPFrac: 0.9, LongOpFrac: 0.05,
		LocalFrac: 0.45, DepP: 0.10, LoadFanout: 0.33, FanoutWin: 4, ChaseFrac: 0.0, IndepMemPar: 8,
		WorkingSet: 448 * kib, Stride: 16, StreamFrac: 0.85, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 8, BlockLen: 32, BranchBias: 0.98, FwdJumpFrac: 0.1,
	},
	"equake": {
		Name: "equake", Class: HighILP,
		LoadFrac: 0.23, StoreFrac: 0.07, BranchFrac: 0.05, FPFrac: 0.75, LongOpFrac: 0.03,
		LocalFrac: 0.45, DepP: 0.15, LoadFanout: 0.37, FanoutWin: 4, ChaseFrac: 0.0, IndepMemPar: 6,
		WorkingSet: 448 * kib, Stride: 16, StreamFrac: 0.8, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 10, BlockLen: 26, BranchBias: 0.97, FwdJumpFrac: 0.15,
	},
	"mesa": {
		Name: "mesa", Class: HighILP,
		LoadFrac: 0.20, StoreFrac: 0.10, BranchFrac: 0.07, FPFrac: 0.6, LongOpFrac: 0.04,
		LocalFrac: 0.45, DepP: 0.14, LoadFanout: 0.33, FanoutWin: 4, ChaseFrac: 0.0, IndepMemPar: 6,
		WorkingSet: 384 * kib, Stride: 8, StreamFrac: 0.7, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 14, BlockLen: 20, BranchBias: 0.95, FwdJumpFrac: 0.25,
	},
	"swim": {
		Name: "swim", Class: HighILP,
		LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.02, FPFrac: 0.9, LongOpFrac: 0.03,
		LocalFrac: 0.45, DepP: 0.10, LoadFanout: 0.33, FanoutWin: 4, ChaseFrac: 0.0, IndepMemPar: 8,
		WorkingSet: 448 * kib, Stride: 16, StreamFrac: 0.95, HotFrac: 0.97, HotSet: 32 * kib,
		Blocks: 4, BlockLen: 40, BranchBias: 0.99, FwdJumpFrac: 0.05,
	},
}

// ProfileFor returns the profile for a benchmark name.
func ProfileFor(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Names returns all benchmark names in deterministic (sorted) order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
