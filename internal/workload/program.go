package workload

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// memRole classifies how a static memory instruction forms its addresses.
type memRole uint8

const (
	memNone   memRole = iota
	memStream         // walks one of the profile's independent stream cursors
	memRandom         // uniform over the working set
	memChase          // pointer chase: address register is the previous load's dest
)

// chaseReg is the dedicated integer register that threads the pointer-chase
// chain (dest and source of every chase load). It is excluded from the
// round-robin destination pool so the chain is never broken by reuse.
const chaseReg = isa.NumIntRegs - 1

// staticInst is one instruction slot of the synthesized static program.
type staticInst struct {
	op         isa.OpClass
	dest       int8
	src1, src2 int8
	role       memRole
	streamIdx  uint8 // which stream cursor, for memStream
	// branch fields
	biasTaken      bool    // the biased direction
	biasP          float64 // probability the biased direction is followed
	takenTarget    int32   // static index jumped to when taken
	notTakenTarget int32   // static index when not taken
}

// program is a synthesized static loop: a flat instruction sequence divided
// into basic blocks, each terminated by a conditional branch.
type program struct {
	insts      []staticInst
	blockStart []int32 // static index of each block's first instruction
}

// regAlloc hands out destination registers round-robin within a class and
// remembers recent writers so sources can reach back a geometric distance.
type regAlloc struct {
	intNext, fpNext int
	intHist, fpHist []int8 // most recent writers, newest last, bounded
}

const histDepth = 48

func (a *regAlloc) noteWrite(r int8) {
	if isa.IsFPReg(int(r)) {
		a.fpHist = appendBounded(a.fpHist, r)
	} else {
		a.intHist = appendBounded(a.intHist, r)
	}
}

func appendBounded(h []int8, r int8) []int8 {
	if len(h) == histDepth {
		copy(h, h[1:])
		h[histDepth-1] = r
		return h
	}
	return append(h, r)
}

// allocInt returns the next integer destination register, skipping the
// chase register and register 0 (kept as an always-ready base).
func (a *regAlloc) allocInt() int8 {
	for {
		r := a.intNext
		a.intNext = (a.intNext + 1) % isa.NumIntRegs
		if r != chaseReg && r != 0 {
			return int8(r)
		}
	}
}

func (a *regAlloc) allocFP() int8 {
	r := a.fpNext
	a.fpNext = (a.fpNext + 1) % isa.NumFPRegs
	if r == 0 { // fp reg 0 kept always-ready
		r = a.fpNext
		a.fpNext = (a.fpNext + 1) % isa.NumFPRegs
	}
	return int8(isa.NumIntRegs + r)
}

// pickSource selects a source register. With probability localFrac it
// reads a recent producer at a geometric distance back in the write
// history; otherwise it reads the class's loop-invariant base register
// (always ready). The invariant fraction is what bounds a load's
// transitive dependence slice: without it, dependence percolates through
// the whole instruction stream and the number of load dependents grows
// linearly with the window — real codes saturate (paper Fig. 3 sees only
// +56% going from a 32-entry to an effectively 416-entry window).
func (a *regAlloc) pickSource(r *rng.SplitMix64, fp bool, depP, localFrac float64) int8 {
	hist := a.intHist
	base := int8(0)
	if fp {
		hist = a.fpHist
		base = int8(isa.NumIntRegs)
	}
	if len(hist) == 0 || !r.Bool(localFrac) {
		return base
	}
	d := r.Geometric(depP)
	if d > len(hist) {
		d = len(hist)
	}
	return hist[len(hist)-d]
}

// synthesize builds the static program for a profile. All randomness comes
// from r, so the same (profile, seed) yields the same program.
func synthesize(p *Profile, r *rng.SplitMix64) *program {
	prog := &program{}
	alloc := &regAlloc{}

	computeFrac := 1 - p.LoadFrac - p.StoreFrac - p.BranchFrac
	if computeFrac < 0 {
		computeFrac = 0
	}
	opDist := rng.NewDiscrete([]float64{p.LoadFrac, p.StoreFrac, computeFrac})

	// Pending fanout: after a load, force upcoming instructions to consume
	// its destination.
	fanoutReg := int8(isa.RegNone)
	fanoutLeft := 0

	for b := 0; b < p.Blocks; b++ {
		prog.blockStart = append(prog.blockStart, int32(len(prog.insts)))
		// Block length varies within ±50% of the average, min 2
		// (one body instruction plus the terminating branch).
		blen := p.BlockLen/2 + r.Intn(p.BlockLen+1)
		if blen < 2 {
			blen = 2
		}
		for i := 0; i < blen-1; i++ {
			var si staticInst
			switch opDist.Sample(r) {
			case 0: // load
				si = synthLoad(p, r, alloc)
				if p.FanoutWin > 0 {
					fanoutReg = si.dest
					fanoutLeft = p.FanoutWin
				}
			case 1: // store
				si = synthStore(p, r, alloc)
			default: // compute
				si = synthCompute(p, r, alloc)
			}
			// Apply load fanout: with probability LoadFanout, rewrite a
			// class-compatible source to consume the last load's
			// destination.
			if fanoutLeft > 0 && si.op != isa.OpLoad {
				fanoutLeft--
				if r.Bool(p.LoadFanout) {
					if classCompatible(si.src1, fanoutReg) {
						si.src1 = fanoutReg
					} else if classCompatible(si.src2, fanoutReg) {
						si.src2 = fanoutReg
					}
				}
			}
			if si.dest != isa.RegNone {
				alloc.noteWrite(si.dest)
			}
			prog.insts = append(prog.insts, si)
		}
		// Terminating branch.
		br := staticInst{
			op:        isa.OpBranch,
			dest:      isa.RegNone,
			src1:      alloc.pickSource(r, false, p.DepP, p.LocalFrac),
			src2:      isa.RegNone,
			biasTaken: r.Bool(0.5),
			biasP:     p.BranchBias,
		}
		prog.insts = append(prog.insts, br)
	}

	// Resolve branch targets now that block boundaries are known.
	nblocks := len(prog.blockStart)
	bi := 0
	for idx := range prog.insts {
		si := &prog.insts[idx]
		if si.op != isa.OpBranch {
			continue
		}
		next := (bi + 1) % nblocks
		var target int
		if r.Bool(p.FwdJumpFrac) {
			target = (bi + 2 + r.Intn(2)) % nblocks // short forward skip
		} else {
			// Backward jump: to loop head or a recent earlier block.
			back := 1 + r.Intn(4)
			target = bi - back
			if target < 0 {
				target = 0
			}
		}
		si.takenTarget = prog.blockStart[target]
		si.notTakenTarget = prog.blockStart[next]
		bi++
	}
	return prog
}

func classCompatible(cur, repl int8) bool {
	if cur == isa.RegNone || repl == isa.RegNone {
		return false
	}
	return isa.IsFPReg(int(cur)) == isa.IsFPReg(int(repl))
}

func synthLoad(p *Profile, r *rng.SplitMix64, alloc *regAlloc) staticInst {
	si := staticInst{op: isa.OpLoad}
	if r.Bool(p.ChaseFrac) {
		// Pointer chase: ptr = *ptr through the dedicated chase register.
		si.role = memChase
		si.dest = chaseReg
		si.src1 = chaseReg
		si.src2 = isa.RegNone
		return si
	}
	if r.Bool(p.StreamFrac) {
		si.role = memStream
		si.streamIdx = uint8(r.Intn(p.IndepMemPar))
	} else {
		si.role = memRandom
	}
	// Address base register: integer, recent.
	si.src1 = alloc.pickSource(r, false, p.DepP, p.LocalFrac)
	si.src2 = isa.RegNone
	if r.Bool(p.FPFrac) {
		si.dest = alloc.allocFP()
	} else {
		si.dest = alloc.allocInt()
	}
	return si
}

func synthStore(p *Profile, r *rng.SplitMix64, alloc *regAlloc) staticInst {
	si := staticInst{op: isa.OpStore, dest: isa.RegNone}
	if r.Bool(p.StreamFrac) {
		si.role = memStream
		si.streamIdx = uint8(r.Intn(p.IndepMemPar))
	} else {
		si.role = memRandom
	}
	si.src1 = alloc.pickSource(r, false, p.DepP, p.LocalFrac) // address
	si.src2 = alloc.pickSource(r, r.Bool(p.FPFrac), p.DepP, p.LocalFrac)
	return si
}

func synthCompute(p *Profile, r *rng.SplitMix64, alloc *regAlloc) staticInst {
	fp := r.Bool(p.FPFrac)
	long := r.Bool(p.LongOpFrac)
	var op isa.OpClass
	switch {
	case fp && long:
		if r.Bool(0.5) {
			op = isa.OpFPDiv
		} else {
			op = isa.OpFPSqrt
		}
	case fp:
		if r.Bool(0.35) {
			op = isa.OpFPMult
		} else {
			op = isa.OpFPAdd
		}
	case long:
		if r.Bool(0.5) {
			op = isa.OpIntDiv
		} else {
			op = isa.OpIntMult
		}
	default:
		op = isa.OpIntAlu
	}
	si := staticInst{op: op}
	si.src1 = alloc.pickSource(r, fp, p.DepP, p.LocalFrac)
	si.src2 = alloc.pickSource(r, fp, p.DepP, p.LocalFrac)
	if fp {
		si.dest = alloc.allocFP()
	} else {
		si.dest = alloc.allocInt()
	}
	return si
}
