package pipeline

// evKind distinguishes scheduled pipeline events.
type evKind uint8

const (
	evComplete   evKind = iota // instruction finishes executing
	evMissDetect               // L2 miss discovered for an issued load
)

// event is a scheduled future action on an in-flight uop, validated at
// fire time by (slot, seq) so events for squashed entries are dropped.
type event struct {
	at   int64
	seq  uint64
	slot int32
	tid  int8
	kind evKind
}

// eventHeap is a binary min-heap on the fire cycle. Hand-rolled to avoid
// interface boxing in the per-cycle hot path.
type eventHeap struct {
	items []event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].at <= h.items[i].at {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// peekAt returns the earliest fire cycle; callers must check len first.
func (h *eventHeap) peekAt() int64 { return h.items[0].at }

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].at < h.items[smallest].at {
			smallest = l
		}
		if r < len(h.items) && h.items[r].at < h.items[smallest].at {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
