package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/uop"

	"repro/internal/cache"
	"repro/internal/fu"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/predictor"
	"repro/internal/regfile"
	"repro/internal/rob"
	"repro/internal/telemetry"
)

// TraceSource supplies one thread's dynamic instruction stream.
// workload.Generator implements it.
type TraceSource interface {
	// Next fills out with the next instruction on the thread's actual path.
	Next(out *isa.TraceInst)
	// BranchTarget returns the taken-target PC for the branch at pc.
	BranchTarget(pc uint64) uint64
}

// RegionProvider is optionally implemented by trace sources that can
// report their address ranges for cache prewarming.
type RegionProvider interface {
	Regions() []isa.Region
}

// feEntry is a fetched instruction waiting in the front end.
type feEntry struct {
	inst      isa.TraceInst
	readyAt   int64
	hist      uint64 // gshare history snapshot at prediction
	predTaken bool
	isBranch  bool
	wrongPath bool
}

// thread is the per-thread front-end and bookkeeping state.
type thread struct {
	src TraceSource

	// Front-end queue (fetched, not yet dispatched), plus a replay queue
	// of real-path instructions squashed by a FLUSH so they can be
	// re-fetched (a trace cannot rewind).
	fq     feQueue
	replay replayQueue

	// Squash-path scratch buffers, reused across mispredictions so the
	// replay rebuild is allocation-free in steady state: sqScratch holds
	// the squashed ROB entries youngest-first, mergeScratch becomes the
	// rebuilt replay backing array (swapped with the old one).
	sqScratch    []isa.TraceInst
	mergeScratch []isa.TraceInst

	// instScratch receives the next trace instruction in fetchThread. It
	// lives on the thread (not the stack) because TraceSource.Next takes a
	// pointer through an interface, which escape analysis would otherwise
	// heap-allocate once per fetched instruction.
	instScratch isa.TraceInst

	fetchStalledUntil int64
	mispredPending    bool // a fetched mispredicted branch is unresolved
	wrongPath         bool // fetching synthetic wrong-path instructions
	flushWait         bool // FLUSH policy: gated until flushLoadSeq returns
	flushLoadSeq      uint64

	committed uint64
	fetched   uint64
	finished  bool

	pendingDMiss  int // issued loads with an L1D miss outstanding
	pendingL2Miss int // detected, unserviced L2 misses

	intRegs, fpRegs int // in-flight physical registers held

	// MLP-policy episode tracking: the load that opened the current miss
	// episode, the misses observed since, and the episode's prediction.
	episodePC     uint64
	episodeMisses int
	predictedMLP  int

	wpCounter uint64 // wrong-path synthesis state
}

// Stats aggregates run-wide counters beyond the substrates' own stats.
type Stats struct {
	Cycles              int64
	Committed           []uint64
	Fetched             []uint64
	Loads               []uint64 // issued demand loads per thread
	LoadL1Miss          []uint64
	LoadL2Miss          []uint64
	LoadLatencySum      []uint64 // issue-to-data cycles summed per thread
	SquashedUops        uint64
	WrongPathDispatched uint64
	EarlyRegReleases    uint64
	FlushSquashes       uint64
	ApproxDoDSamples    uint64
	ApproxExactDiffSum  uint64 // sum |approx-exact| over sampled misses
}

// Result is everything a run reports.
type Result struct {
	Stats
	IPC          []float64
	DoDHist      *metrics.Histogram // service-time dependents (Figs 1/3/7)
	ROBStats     rob.Stats
	IQStats      iq.Stats
	LSQStats     lsq.Stats
	L1D, L1I, L2 cache.Stats
	HierStats    cache.HierStats
	Branch       predictor.GShareStats
	LoadHit      predictor.LoadHitStats
	DoDPred      *rob.DoDPredStats // nil unless the predictive scheme ran

	// Telemetry is the run's instrumentation collector (stall
	// attribution, occupancy rings, grant intervals); nil unless
	// Config.Telemetry was set.
	Telemetry *telemetry.Collector
}

// CPU is one simulated SMT machine instance. Not safe for concurrent use;
// run one CPU per goroutine.
type CPU struct {
	cfg Config

	threads []thread
	rob     *rob.TwoLevel
	iq      *iq.IQ
	lsq     *lsq.LSQ
	rf      *regfile.File
	early   *regfile.EarlyReleaser
	fus     *fu.Pools
	hier    *cache.Hierarchy
	gshare  *predictor.GShare
	btb     *predictor.BTB
	loadHit *predictor.LoadHit
	mlp     *predictor.MLP
	pol     policy.Policy

	// CommitHook, when set before Run, observes every committed
	// instruction in program order per thread — the integration point for
	// trace validation and custom instrumentation.
	CommitHook func(tid int, u *uop.UOp)

	events     eventHeap
	now        int64
	seqNext    uint64
	dispatchRR int
	commitRR   int

	snaps    []policy.Snapshot
	order    []int
	readyBuf []int

	dodHist *metrics.Histogram
	stats   Stats

	// tel is nil when telemetry is disabled; every per-cycle hook is
	// guarded by that nil check so the disabled path stays free of
	// telemetry work. telState is the reusable per-cycle snapshot.
	tel      *telemetry.Collector
	telState *telemetry.CycleState
}

// New builds a CPU; sources must supply cfg.Threads trace streams.
func New(cfg Config, sources []TraceSource) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Threads {
		return nil, fmt.Errorf("pipeline: %d trace sources for %d threads", len(sources), cfg.Threads)
	}
	c := &CPU{cfg: cfg}
	var err error
	if c.rob, err = rob.New(cfg.ROB); err != nil {
		return nil, err
	}
	if c.iq, err = iq.New(cfg.IQSize, cfg.Threads); err != nil {
		return nil, err
	}
	if c.lsq, err = lsq.New(cfg.Threads, cfg.LSQSize); err != nil {
		return nil, err
	}
	if c.rf, err = regfile.New(cfg.IntRegs, cfg.FPRegs, cfg.Threads); err != nil {
		return nil, err
	}
	if cfg.EarlyRegRelease {
		c.early = regfile.NewEarlyReleaser(c.rf, cfg.Threads)
	}
	c.fus = fu.New()
	if c.hier, err = cache.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	if c.gshare, err = predictor.NewGShare(cfg.GShareEntries, cfg.GShareHistBits, cfg.Threads); err != nil {
		return nil, err
	}
	if c.btb, err = predictor.NewBTB(cfg.BTBEntries, cfg.BTBAssoc); err != nil {
		return nil, err
	}
	if c.loadHit, err = predictor.NewLoadHit(cfg.LoadHitEntries, cfg.Threads); err != nil {
		return nil, err
	}
	if cfg.PolicyKind == policy.MLP {
		if c.mlp, err = predictor.NewMLP(4096); err != nil {
			return nil, err
		}
	}
	lim := policy.Limits{
		IQ:      cfg.IQSize,
		IntRegs: cfg.IntRegs,
		FPRegs:  cfg.FPRegs,
	}
	if c.pol, err = policy.New(cfg.PolicyKind, cfg.DCRAAlpha, lim); err != nil {
		return nil, err
	}
	c.threads = make([]thread, cfg.Threads)
	var regions []isa.Region
	for i := range c.threads {
		c.threads[i].src = sources[i]
		if cfg.Prewarm {
			if rp, ok := sources[i].(RegionProvider); ok {
				regions = append(regions, rp.Regions()...)
			}
		}
	}
	// Prewarm largest regions first: working sets that exceed the L2 miss
	// regardless of residency, while the cache-resident sets of the other
	// threads must end up warm — a later multi-megabyte insert would evict
	// them and strand those threads in a cold-start regime the paper's
	// 100M-instruction SimPoints never see.
	sort.Slice(regions, func(a, b int) bool { return regions[a].Size > regions[b].Size })
	for _, r := range regions {
		c.hier.Prewarm(r.Base, r.Size, r.Code)
	}
	c.snaps = make([]policy.Snapshot, cfg.Threads)
	c.order = make([]int, 0, cfg.Threads)
	c.readyBuf = make([]int, 0, cfg.IQSize)
	c.dodHist = metrics.NewHistogram(cfg.ROB.L1Size + cfg.ROB.L2Size + 1)
	c.stats.Committed = make([]uint64, cfg.Threads)
	c.stats.Fetched = make([]uint64, cfg.Threads)
	c.stats.Loads = make([]uint64, cfg.Threads)
	c.stats.LoadL1Miss = make([]uint64, cfg.Threads)
	c.stats.LoadL2Miss = make([]uint64, cfg.Threads)
	c.stats.LoadLatencySum = make([]uint64, cfg.Threads)
	if cfg.Telemetry != nil {
		c.tel = telemetry.NewCollector(cfg.Threads, *cfg.Telemetry)
		c.telState = telemetry.NewCycleState(cfg.Threads)
		c.rob.OnGrantAcquired = c.tel.GrantAcquired
		c.rob.OnGrantPiggyback = c.tel.GrantPiggyback
		c.rob.OnGrantReleased = c.tel.GrantReleased
	}
	return c, nil
}

// Run simulates until any thread commits budget instructions (the paper's
// stop rule) and returns the collected results.
func (c *CPU) Run(budget uint64) (Result, error) {
	if budget == 0 {
		return Result{}, fmt.Errorf("pipeline: zero instruction budget")
	}
	maxCycles := c.cfg.MaxCycles
	if maxCycles == 0 {
		// Worst realistic case is one commit per memory round-trip.
		maxCycles = int64(budget) * 2000
		if maxCycles < 1_000_000 {
			maxCycles = 1_000_000
		}
	}
	//tlrob:allocfree (the per-cycle loop: every iteration is one simulated cycle)
	for {
		c.writeback()
		if done := c.commit(budget); done {
			break
		}
		c.rob.Tick(c.now)
		c.iq.Tick()
		c.buildSnapshots()
		c.issue()
		c.dispatch()
		if c.tel != nil {
			c.recordTelemetry()
		}
		c.fetch()
		c.now++
		if c.now >= maxCycles {
			//tlrob:allow(cold: terminal error path, runs at most once per simulation)
			return Result{}, fmt.Errorf("pipeline: no thread reached %d commits within %d cycles (deadlock or budget too large)", budget, maxCycles)
		}
	}
	return c.result(), nil
}

// Cycle returns the current cycle (for tests driving stages manually).
func (c *CPU) Cycle() int64 { return c.now }

func (c *CPU) result() Result {
	res := Result{
		Stats:     c.stats,
		IPC:       make([]float64, c.cfg.Threads),
		DoDHist:   c.dodHist,
		ROBStats:  c.rob.Stats(),
		IQStats:   c.iq.Stats(),
		LSQStats:  c.lsq.Stats(),
		L1D:       c.hier.L1D.Stats(),
		L1I:       c.hier.L1I.Stats(),
		L2:        c.hier.L2.Stats(),
		HierStats: c.hier.Stats(),
		Branch:    c.gshare.Stats(),
		LoadHit:   c.loadHit.Stats(),
	}
	res.Cycles = c.now
	if c.tel != nil {
		c.tel.Finish(c.now)
		res.Telemetry = c.tel
	}
	if c.early != nil {
		res.EarlyRegReleases = c.early.Released()
	}
	if p := c.rob.Predictor(); p != nil {
		s := p.Stats()
		res.DoDPred = &s
	}
	for t := range c.threads {
		if c.now > 0 {
			res.IPC[t] = float64(c.stats.Committed[t]) / float64(c.now)
		}
	}
	return res
}

// recordTelemetry charges the just-simulated cycle: dispatch classified
// the blocked threads during its walk (telState.Causes); threads it
// never reached are classified here, then the occupancy snapshot is
// taken and the cycle committed to the collector. Runs only when
// telemetry is enabled.
//
//tlrob:allocfree
func (c *CPU) recordTelemetry() {
	st := c.telState
	for t := range c.threads {
		th := &c.threads[t]
		st.ROBLen[t] = int32(c.rob.Ring(t).Len())
		if st.Dispatched[t] != 0 || st.Causes[t] != telemetry.CauseNone {
			continue
		}
		// Dispatch never blocked on a resource for this thread: it was
		// starved of eligible instructions, already finished, or lost
		// the shared dispatch bandwidth to the other threads.
		switch {
		case th.finished:
			st.Causes[t] = telemetry.CauseFinished
		case th.fq.len() == 0 || th.fq.peek().readyAt > c.now:
			st.Causes[t] = telemetry.CauseFetchStarved
		default:
			st.Causes[t] = telemetry.CauseDispatchBW
		}
	}
	st.IQLen = int32(c.iq.Len())
	st.IntRegs = int32(c.rf.InFlight(false))
	st.FPRegs = int32(c.rf.InFlight(true))
	st.Owner = int8(c.rob.Owner())
	c.tel.RecordCycle(c.now, st)
	st.Reset()
}

// buildSnapshots refreshes the per-thread state the policy decides from.
//
//tlrob:allocfree
func (c *CPU) buildSnapshots() {
	for t := range c.threads {
		th := &c.threads[t]
		c.snaps[t] = policy.Snapshot{
			FrontEnd:      th.fq.len(),
			IQ:            c.iq.CountOf(t),
			IntRegs:       th.intRegs,
			FPRegs:        th.fpRegs,
			PendingDMiss:  th.pendingDMiss > 0,
			PendingL2Miss: th.pendingL2Miss > 0,
			PredictedMLP:  th.predictedMLP,
			OwnsROB:       c.rob.Owner() == t,
			Finished:      th.finished,
		}
	}
}
