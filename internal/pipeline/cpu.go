package pipeline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/uop"

	"repro/internal/cache"
	"repro/internal/fu"
	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/predictor"
	"repro/internal/regfile"
	"repro/internal/rob"
	"repro/internal/telemetry"
)

// TraceSource supplies one thread's dynamic instruction stream.
// workload.Generator implements it.
type TraceSource interface {
	// Next fills out with the next instruction on the thread's actual path.
	Next(out *isa.TraceInst)
	// BranchTarget returns the taken-target PC for the branch at pc.
	BranchTarget(pc uint64) uint64
}

// RegionProvider is optionally implemented by trace sources that can
// report their address ranges for cache prewarming.
type RegionProvider interface {
	Regions() []isa.Region
}

// feEntry is a fetched instruction waiting in the front end.
type feEntry struct {
	inst      isa.TraceInst
	readyAt   int64
	hist      uint64 // gshare history snapshot at prediction
	predTaken bool
	isBranch  bool
	wrongPath bool
}

// thread is the per-thread front-end and bookkeeping state.
type thread struct {
	src TraceSource

	// Front-end queue (fetched, not yet dispatched), plus a replay queue
	// of real-path instructions squashed by a FLUSH so they can be
	// re-fetched (a trace cannot rewind).
	fq     feQueue
	replay replayQueue

	// Squash-path scratch buffers, reused across mispredictions so the
	// replay rebuild is allocation-free in steady state: sqScratch holds
	// the squashed ROB entries youngest-first, mergeScratch becomes the
	// rebuilt replay backing array (swapped with the old one).
	sqScratch    []isa.TraceInst
	mergeScratch []isa.TraceInst

	// instScratch receives the next trace instruction in fetchThread. It
	// lives on the thread (not the stack) because TraceSource.Next takes a
	// pointer through an interface, which escape analysis would otherwise
	// heap-allocate once per fetched instruction.
	instScratch isa.TraceInst

	fetchStalledUntil int64
	mispredPending    bool // a fetched mispredicted branch is unresolved
	wrongPath         bool // fetching synthetic wrong-path instructions
	flushWait         bool // FLUSH policy: gated until flushLoadSeq returns
	flushLoadSeq      uint64
	// squashRefill marks the replay queue's current contents as squash
	// debris: set when a squash queues real-path instructions for
	// re-fetch, cleared when the queue drains. While it holds (and the
	// queue is non-empty), a starved front end is charged to the squash
	// machinery rather than to ordinary fetch starvation — an I-cache
	// stall also parks one instruction in the replay queue, which is why
	// a bare replay.len()>0 test cannot make that call.
	squashRefill bool

	committed uint64
	fetched   uint64
	finished  bool

	pendingDMiss  int // issued loads with an L1D miss outstanding
	pendingL2Miss int // detected, unserviced L2 misses

	intRegs, fpRegs int // in-flight physical registers held

	// MLP-policy episode tracking: the load that opened the current miss
	// episode, the misses observed since, and the episode's prediction.
	episodePC     uint64
	episodeMisses int
	predictedMLP  int

	wpCounter uint64 // wrong-path synthesis state
}

// Stats aggregates run-wide counters beyond the substrates' own stats.
type Stats struct {
	Cycles              int64
	Committed           []uint64
	Fetched             []uint64
	Loads               []uint64 // issued demand loads per thread
	LoadL1Miss          []uint64
	LoadL2Miss          []uint64
	LoadLatencySum      []uint64 // issue-to-data cycles summed per thread
	SquashedUops        uint64
	WrongPathDispatched uint64
	EarlyRegReleases    uint64
	FlushSquashes       uint64
	ApproxDoDSamples    uint64
	ApproxExactDiffSum  uint64 // sum |approx-exact| over sampled misses
}

// Result is everything a run reports.
type Result struct {
	Stats
	IPC          []float64
	DoDHist      *metrics.Histogram // service-time dependents (Figs 1/3/7)
	ROBStats     rob.Stats
	IQStats      iq.Stats
	LSQStats     lsq.Stats
	L1D, L1I, L2 cache.Stats
	HierStats    cache.HierStats
	Branch       predictor.GShareStats
	LoadHit      predictor.LoadHitStats
	DoDPred      *rob.DoDPredStats // nil unless the predictive scheme ran

	// Telemetry is the run's instrumentation collector (stall
	// attribution, occupancy rings, grant intervals); nil unless
	// Config.Telemetry was set.
	Telemetry *telemetry.Collector
}

// CPU is one simulated SMT machine instance. Not safe for concurrent use;
// run one CPU per goroutine.
type CPU struct {
	cfg Config

	threads []thread
	rob     *rob.TwoLevel
	iq      *iq.IQ
	lsq     *lsq.LSQ
	rf      *regfile.File
	early   *regfile.EarlyReleaser
	fus     *fu.Pools
	hier    *cache.Hierarchy
	gshare  *predictor.GShare
	btb     *predictor.BTB
	loadHit *predictor.LoadHit
	mlp     *predictor.MLP
	pol     policy.Policy

	// CommitHook, when set before Run, observes every committed
	// instruction in program order per thread — the integration point for
	// trace validation and custom instrumentation.
	CommitHook func(tid int, u *uop.UOp)

	events     eventHeap
	now        int64
	seqNext    uint64
	dispatchRR int
	commitRR   int

	snaps    []policy.Snapshot
	order    []int
	readyBuf []int

	dodHist *metrics.Histogram
	stats   Stats

	// skipAhead enables the event-driven engine: advance consults
	// nextInterestingCycle after each simulated cycle and fast-forwards
	// across provably idle spans. Cleared by Config.NaiveTicker or when
	// the policy cannot be skipped (no CycleSkipper implementation).
	skipAhead bool
	// polSkip is the policy's skip-ahead hook (nil when absent).
	polSkip policy.CycleSkipper

	// tel is nil when telemetry is disabled; the per-cycle collector
	// calls are guarded by that nil check. telState is the reusable
	// per-cycle snapshot; it is always allocated — dispatch records each
	// thread's outcome into it unconditionally because the skip decision
	// needs the blocking causes even with telemetry off.
	tel      *telemetry.Collector
	telState *telemetry.CycleState
}

// New builds a CPU; sources must supply cfg.Threads trace streams.
func New(cfg Config, sources []TraceSource) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Threads {
		return nil, fmt.Errorf("pipeline: %d trace sources for %d threads", len(sources), cfg.Threads)
	}
	c := &CPU{cfg: cfg}
	var err error
	if c.rob, err = rob.New(cfg.ROB); err != nil {
		return nil, err
	}
	if c.iq, err = iq.New(cfg.IQSize, cfg.Threads); err != nil {
		return nil, err
	}
	if c.lsq, err = lsq.New(cfg.Threads, cfg.LSQSize); err != nil {
		return nil, err
	}
	if c.rf, err = regfile.New(cfg.IntRegs, cfg.FPRegs, cfg.Threads); err != nil {
		return nil, err
	}
	if cfg.EarlyRegRelease {
		c.early = regfile.NewEarlyReleaser(c.rf, cfg.Threads)
	}
	c.fus = fu.New()
	if c.hier, err = cache.NewHierarchy(cfg.Hier); err != nil {
		return nil, err
	}
	if c.gshare, err = predictor.NewGShare(cfg.GShareEntries, cfg.GShareHistBits, cfg.Threads); err != nil {
		return nil, err
	}
	if c.btb, err = predictor.NewBTB(cfg.BTBEntries, cfg.BTBAssoc); err != nil {
		return nil, err
	}
	if c.loadHit, err = predictor.NewLoadHit(cfg.LoadHitEntries, cfg.Threads); err != nil {
		return nil, err
	}
	if cfg.PolicyKind == policy.MLP {
		if c.mlp, err = predictor.NewMLP(4096); err != nil {
			return nil, err
		}
	}
	lim := policy.Limits{
		IQ:      cfg.IQSize,
		IntRegs: cfg.IntRegs,
		FPRegs:  cfg.FPRegs,
	}
	if c.pol, err = policy.New(cfg.PolicyKind, cfg.DCRAAlpha, lim); err != nil {
		return nil, err
	}
	c.threads = make([]thread, cfg.Threads)
	var regions []isa.Region
	for i := range c.threads {
		c.threads[i].src = sources[i]
		if cfg.Prewarm {
			if rp, ok := sources[i].(RegionProvider); ok {
				regions = append(regions, rp.Regions()...)
			}
		}
	}
	// Prewarm largest regions first: working sets that exceed the L2 miss
	// regardless of residency, while the cache-resident sets of the other
	// threads must end up warm — a later multi-megabyte insert would evict
	// them and strand those threads in a cold-start regime the paper's
	// 100M-instruction SimPoints never see.
	sort.Slice(regions, func(a, b int) bool { return regions[a].Size > regions[b].Size })
	for _, r := range regions {
		c.hier.Prewarm(r.Base, r.Size, r.Code)
	}
	c.snaps = make([]policy.Snapshot, cfg.Threads)
	c.order = make([]int, 0, cfg.Threads)
	c.readyBuf = make([]int, 0, cfg.IQSize)
	c.dodHist = metrics.NewHistogram(cfg.ROB.L1Size + cfg.ROB.L2Size + 1)
	c.stats.Committed = make([]uint64, cfg.Threads)
	c.stats.Fetched = make([]uint64, cfg.Threads)
	c.stats.Loads = make([]uint64, cfg.Threads)
	c.stats.LoadL1Miss = make([]uint64, cfg.Threads)
	c.stats.LoadL2Miss = make([]uint64, cfg.Threads)
	c.stats.LoadLatencySum = make([]uint64, cfg.Threads)
	c.telState = telemetry.NewCycleState(cfg.Threads)
	if cfg.Telemetry != nil {
		c.tel = telemetry.NewCollector(cfg.Threads, *cfg.Telemetry)
		c.rob.OnGrantAcquired = c.tel.GrantAcquired
		c.rob.OnGrantPiggyback = c.tel.GrantPiggyback
		c.rob.OnGrantReleased = c.tel.GrantReleased
	}
	c.polSkip, _ = c.pol.(policy.CycleSkipper)
	c.skipAhead = !cfg.NaiveTicker && c.polSkip != nil
	return c, nil
}

// Run simulates until any thread commits budget instructions (the paper's
// stop rule) and returns the collected results. Each iteration simulates
// exactly one cycle and then advances the clock — by one, or (with the
// skip-ahead engine) straight to the next cycle at which anything can
// happen, charging the skipped span in closed form. Both paths produce
// bit-identical results; the differential tests hold them to it.
func (c *CPU) Run(budget uint64) (Result, error) {
	if budget == 0 {
		return Result{}, fmt.Errorf("pipeline: zero instruction budget")
	}
	maxCycles := watchdogCycles(budget, c.cfg.MaxCycles)
	for {
		if done := c.stepCycle(budget); done {
			break
		}
		if c.advance(maxCycles) {
			//tlrob:allow(cold: terminal error path, runs at most once per simulation)
			return Result{}, fmt.Errorf("pipeline: no thread reached %d commits within %d cycles (deadlock or budget too large)", budget, maxCycles)
		}
	}
	return c.result(), nil
}

// watchdogCycles derives the deadlock-watchdog limit from the
// instruction budget when the configuration does not pin one. The worst
// realistic case is one commit per memory round-trip (~2000 cycles);
// the product saturates at MaxInt64 instead of wrapping negative for
// astronomic budgets, which used to trip the watchdog on cycle 0.
func watchdogCycles(budget uint64, cfgMax int64) int64 {
	if cfgMax != 0 {
		return cfgMax
	}
	const cyclesPerCommit = 2000
	if budget > math.MaxInt64/cyclesPerCommit {
		return math.MaxInt64
	}
	maxCycles := int64(budget) * cyclesPerCommit
	if maxCycles < 1_000_000 {
		maxCycles = 1_000_000
	}
	return maxCycles
}

// stepCycle simulates exactly cycle c.now — every stage, in order — and
// reports whether a thread reached its commit budget (the stop rule).
// It leaves c.telState describing the cycle's per-thread dispatch
// outcome for the skip decision in advance.
//
//tlrob:allocfree (the per-cycle body: every call is one simulated cycle)
func (c *CPU) stepCycle(budget uint64) bool {
	c.telState.Reset()
	c.writeback()
	if done := c.commit(budget); done {
		return true
	}
	c.rob.Tick(c.now)
	c.iq.Tick()
	c.buildSnapshots()
	c.issue()
	c.dispatch()
	if c.tel != nil {
		c.recordTelemetry()
	}
	c.fetch()
	return false
}

// Cycle returns the current cycle (for tests driving stages manually).
func (c *CPU) Cycle() int64 { return c.now }

func (c *CPU) result() Result {
	res := Result{
		Stats:     c.stats,
		IPC:       make([]float64, c.cfg.Threads),
		DoDHist:   c.dodHist,
		ROBStats:  c.rob.Stats(),
		IQStats:   c.iq.Stats(),
		LSQStats:  c.lsq.Stats(),
		L1D:       c.hier.L1D.Stats(),
		L1I:       c.hier.L1I.Stats(),
		L2:        c.hier.L2.Stats(),
		HierStats: c.hier.Stats(),
		Branch:    c.gshare.Stats(),
		LoadHit:   c.loadHit.Stats(),
	}
	res.Cycles = c.now
	if c.tel != nil {
		c.tel.Finish(c.now)
		res.Telemetry = c.tel
	}
	if c.early != nil {
		res.EarlyRegReleases = c.early.Released()
	}
	if p := c.rob.Predictor(); p != nil {
		s := p.Stats()
		res.DoDPred = &s
	}
	for t := range c.threads {
		if c.now > 0 {
			res.IPC[t] = float64(c.stats.Committed[t]) / float64(c.now)
		}
	}
	return res
}

// recordTelemetry charges the just-simulated cycle: dispatch classified
// the blocked threads during its walk (telState.Causes); threads it
// never reached are classified here, then the occupancy snapshot is
// taken and the cycle committed to the collector. Runs only when
// telemetry is enabled; the state is reset at the top of the next
// stepCycle, not here, because the skip decision still needs it.
//
//tlrob:allocfree
func (c *CPU) recordTelemetry() {
	st := c.telState
	for t := range c.threads {
		th := &c.threads[t]
		st.ROBLen[t] = int32(c.rob.Ring(t).Len())
		if st.Dispatched[t] != 0 || st.Causes[t] != telemetry.CauseNone {
			continue
		}
		// Dispatch never blocked on a resource for this thread: it was
		// starved of eligible instructions, already finished, or lost
		// the shared dispatch bandwidth to the other threads.
		switch {
		case th.finished:
			st.Causes[t] = telemetry.CauseFinished
		case th.fq.len() == 0 || th.fq.peek().readyAt > c.now:
			st.Causes[t] = c.starvedCause(th)
		default:
			st.Causes[t] = telemetry.CauseDispatchBW
		}
	}
	st.IQLen = int32(c.iq.Len())
	st.IntRegs = int32(c.rf.InFlight(false))
	st.FPRegs = int32(c.rf.InFlight(true))
	st.Owner = int8(c.rob.Owner())
	c.tel.RecordCycle(c.now, st)
}

// starvedCause splits an empty (or not-yet-ready) front end between the
// squash machinery and ordinary fetch starvation: a thread gated by the
// FLUSH policy, or whose next real-path instructions sit in the replay
// queue because a squash put them there, is blocked by the squash — not
// by the I-cache or the front-end pipeline depth.
//
//tlrob:allocfree
func (c *CPU) starvedCause(th *thread) telemetry.Cause {
	if th.flushWait || (th.squashRefill && th.replay.len() > 0) {
		return telemetry.CauseSquashRefill
	}
	return telemetry.CauseFetchStarved
}

// buildSnapshots refreshes the per-thread state the policy decides from.
//
//tlrob:allocfree
func (c *CPU) buildSnapshots() {
	for t := range c.threads {
		th := &c.threads[t]
		c.snaps[t] = policy.Snapshot{
			FrontEnd:      th.fq.len(),
			IQ:            c.iq.CountOf(t),
			IntRegs:       th.intRegs,
			FPRegs:        th.fpRegs,
			PendingDMiss:  th.pendingDMiss > 0,
			PendingL2Miss: th.pendingL2Miss > 0,
			PredictedMLP:  th.predictedMLP,
			OwnsROB:       c.rob.Owner() == t,
			Finished:      th.finished,
		}
	}
}
