package pipeline

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/rob"
	"repro/internal/telemetry"
)

// diffBudget keeps the untagged differential matrix fast enough to gate
// every `go test ./...` run; the slowcheck harness covers long runs.
const diffBudget = 1500

// runBothEngines runs the same configuration twice — once with the
// naive cycle-by-cycle ticker, once with skip-ahead — on independently
// regenerated (hence identical) workload streams, and returns both
// Results.
func runBothEngines(t *testing.T, cfg Config, mix string, seed uint64, budget uint64) (naive, fast Result) {
	t.Helper()
	naiveCfg := cfg
	naiveCfg.NaiveTicker = true
	fastCfg := cfg
	fastCfg.NaiveTicker = false
	naive = run(t, naiveCfg, mixSources(t, mix, seed), budget)
	fast = run(t, fastCfg, mixSources(t, mix, seed), budget)
	return naive, fast
}

// requireIdentical asserts the two engines produced bit-identical
// Results, diffing top-level sections first so a failure names the
// subsystem that diverged.
func requireIdentical(t *testing.T, naive, fast Result) {
	t.Helper()
	if reflect.DeepEqual(naive, fast) {
		return
	}
	if naive.Cycles != fast.Cycles {
		t.Errorf("cycles diverged: naive %d, skip-ahead %d", naive.Cycles, fast.Cycles)
	}
	for _, sec := range []struct {
		name string
		n, f interface{}
	}{
		{"Stats", naive.Stats, fast.Stats},
		{"IPC", naive.IPC, fast.IPC},
		{"DoDHist", naive.DoDHist, fast.DoDHist},
		{"ROBStats", naive.ROBStats, fast.ROBStats},
		{"IQStats", naive.IQStats, fast.IQStats},
		{"LSQStats", naive.LSQStats, fast.LSQStats},
		{"L1D", naive.L1D, fast.L1D},
		{"L1I", naive.L1I, fast.L1I},
		{"L2", naive.L2, fast.L2},
		{"HierStats", naive.HierStats, fast.HierStats},
		{"Branch", naive.Branch, fast.Branch},
		{"LoadHit", naive.LoadHit, fast.LoadHit},
		{"DoDPred", naive.DoDPred, fast.DoDPred},
		{"Telemetry", naive.Telemetry, fast.Telemetry},
	} {
		if !reflect.DeepEqual(sec.n, sec.f) {
			t.Errorf("%s diverged:\n naive: %+v\n skip:  %+v", sec.name, sec.n, sec.f)
		}
	}
	if !t.Failed() {
		t.Error("results diverged in an uncategorised field")
	}
}

// TestSkipAheadMatchesNaive is the in-tree half of the differential
// harness: every evaluated scheme, on a memory-bound (skip-heavy) and a
// compute-bound (skip-poor) mix, across several seeds, must produce a
// Result bit-identical to the naive ticker's — telemetry included.
func TestSkipAheadMatchesNaive(t *testing.T) {
	schemes := []struct {
		name string
		cfg  rob.Config
	}{
		{"Baseline_32", rob.Config{Threads: 4, L1Size: 32, Scheme: rob.Baseline}},
		{"RROB_16", rob.DefaultConfig(4, rob.Reactive, 16)},
		{"RelaxedRROB_15", rob.DefaultConfig(4, rob.RelaxedReactive, 15)},
		{"CDRROB_15", rob.DefaultConfig(4, rob.CountDelayedReactive, 15)},
		{"PROB_5", rob.DefaultConfig(4, rob.Predictive, 5)},
		{"Shared_128", rob.Config{Threads: 4, L1Size: 32, Scheme: rob.SharedSingle}},
	}
	mixes := []string{"Mix 1", "Mix 10"} // 4×low-IPC, 4×high-IPC
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range schemes {
		for _, mix := range mixes {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", sc.name, mix, seed), func(t *testing.T) {
					cfg := DefaultConfig(4, sc.cfg)
					cfg.Telemetry = &telemetry.Config{}
					naive, fast := runBothEngines(t, cfg, mix, seed, diffBudget)
					requireIdentical(t, naive, fast)
				})
			}
		}
	}
}

// TestSkipAheadMatchesNaivePolicies covers the fetch policies whose
// admission decisions gate the fetch wake-up logic — FLUSH in
// particular exercises flushWait spans and squash-refill attribution.
func TestSkipAheadMatchesNaivePolicies(t *testing.T) {
	for _, kind := range []policy.Kind{policy.ICOUNT, policy.STALL, policy.FLUSH, policy.MLP} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
			cfg.PolicyKind = kind
			cfg.Telemetry = &telemetry.Config{}
			naive, fast := runBothEngines(t, cfg, "Mix 1", 1, diffBudget)
			requireIdentical(t, naive, fast)
		})
	}
}

// TestSkipAheadMatchesNaiveNoTelemetry checks the tel==nil fast path of
// skipTo, which must still advance the structural state.
func TestSkipAheadMatchesNaiveNoTelemetry(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	naive, fast := runBothEngines(t, cfg, "Mix 1", 1, diffBudget)
	requireIdentical(t, naive, fast)
}

// TestWatchdogCycles pins the fallback deadlock-watchdog derivation,
// including the saturation fix: budgets above MaxInt64/2000 used to
// overflow int64 and produce a negative limit that fired on cycle 0.
func TestWatchdogCycles(t *testing.T) {
	cases := []struct {
		budget uint64
		cfgMax int64
		want   int64
	}{
		{budget: 1, cfgMax: 0, want: 1_000_000},        // floor
		{budget: 50_000, cfgMax: 0, want: 100_000_000}, // budget * 2000
		{budget: 50_000, cfgMax: 777, want: 777},       // explicit override wins
		{budget: math.MaxUint64, cfgMax: 0, want: math.MaxInt64},
		{budget: math.MaxInt64/2000 + 1, cfgMax: 0, want: math.MaxInt64},
		{budget: math.MaxInt64 / 2000, cfgMax: 0, want: (math.MaxInt64 / 2000) * 2000},
	}
	for _, c := range cases {
		if got := watchdogCycles(c.budget, c.cfgMax); got != c.want {
			t.Errorf("watchdogCycles(%d, %d) = %d, want %d", c.budget, c.cfgMax, got, c.want)
		}
		if got := watchdogCycles(c.budget, c.cfgMax); got <= 0 {
			t.Errorf("watchdogCycles(%d, %d) = %d, not positive", c.budget, c.cfgMax, got)
		}
	}
}

// TestSquashRefillAttribution is the regression test for the
// fetch-starved misclassification: cycles a thread spends refilling its
// front end from the post-squash replay queue (or gated behind FLUSH's
// fetch hold) must be charged to squash_refill, not fetch_starved, and
// the stall identity must still balance exactly.
func TestSquashRefillAttribution(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	cfg.PolicyKind = policy.FLUSH // squashes on every L2 miss → plenty of refills
	cfg.Telemetry = &telemetry.Config{}
	res := run(t, cfg, mixSources(t, "Mix 1", 1), 3000)

	if res.FlushSquashes == 0 {
		t.Fatal("FLUSH policy run produced no squashes; workload no longer exercises the refill path")
	}
	sum := res.Telemetry.Summary()
	if err := sum.CheckInvariant(); err != nil {
		t.Fatalf("stall identity broken: %v", err)
	}
	var refill uint64
	for _, th := range sum.Threads {
		refill += th.StallCycles(telemetry.CauseSquashRefill)
	}
	if refill == 0 {
		t.Fatal("no cycles attributed to squash_refill despite flush squashes")
	}
}

// TestConfigBubbleDefaults pins the named fetch-bubble knobs: zero
// normalises to the historical constants, negatives are rejected, and
// the defaults are behaviour-preserving against a hand-built config
// that predates the fields.
func TestConfigBubbleDefaults(t *testing.T) {
	cfg := baselineCfg(2, 32)
	cfg.BTBMissBubble = 0
	cfg.RedirectBubble = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.BTBMissBubble != 2 || cfg.RedirectBubble != 1 {
		t.Fatalf("zero bubbles normalised to (%d, %d), want (2, 1)", cfg.BTBMissBubble, cfg.RedirectBubble)
	}
	bad := baselineCfg(2, 32)
	bad.BTBMissBubble = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative BTBMissBubble accepted")
	}
	bad = baselineCfg(2, 32)
	bad.RedirectBubble = -2
	if err := bad.Validate(); err == nil {
		t.Fatal("negative RedirectBubble accepted")
	}

	legacy := baselineCfg(4, 32)
	legacy.BTBMissBubble = 0
	legacy.RedirectBubble = 0
	a := run(t, legacy, mixSources(t, "Mix 1", 1), diffBudget)
	b := run(t, baselineCfg(4, 32), mixSources(t, "Mix 1", 1), diffBudget)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero-valued bubble knobs changed timing relative to the defaults")
	}
}
