package pipeline

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/rob"
	"repro/internal/workload"
)

// stressRun drives a CPU cycle by cycle, validating the full cross-
// structure invariant set every checkEvery cycles.
func stressRun(t *testing.T, cfg Config, srcs []TraceSource, cycles int64, checkEvery int64) {
	t.Helper()
	c, err := New(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1 << 60
	for c.now < cycles {
		c.writeback()
		c.commit(budget)
		c.rob.Tick(c.now)
		c.iq.Tick()
		c.buildSnapshots()
		c.issue()
		c.dispatch()
		c.fetch()
		c.now++
		if c.now%checkEvery == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", c.now, err)
			}
		}
	}
}

func mixSources(t *testing.T, name string, seed uint64) []TraceSource {
	t.Helper()
	mix, ok := workload.MixByName(name)
	if !ok {
		t.Fatalf("unknown mix %q", name)
	}
	gens, err := workload.MixGenerators(mix, seed)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]TraceSource, len(gens))
	for i := range gens {
		srcs[i] = gens[i]
	}
	return srcs
}

func TestStressInvariantsBaseline(t *testing.T) {
	cfg := baselineCfg(4, 32)
	stressRun(t, cfg, mixSources(t, "Mix 5", 1), 30_000, 193)
}

func TestStressInvariantsReactive(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	stressRun(t, cfg, mixSources(t, "Mix 1", 2), 30_000, 193)
}

func TestStressInvariantsPredictive(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Predictive, 5))
	stressRun(t, cfg, mixSources(t, "Mix 2", 3), 30_000, 193)
}

func TestStressInvariantsSharedROB(t *testing.T) {
	cfg := DefaultConfig(4, rob.Config{Threads: 4, L1Size: 32, Scheme: rob.SharedSingle})
	stressRun(t, cfg, mixSources(t, "Mix 8", 4), 30_000, 193)
}

func TestStressInvariantsFlushPolicy(t *testing.T) {
	cfg := baselineCfg(4, 32)
	cfg.PolicyKind = policy.FLUSH
	stressRun(t, cfg, mixSources(t, "Mix 4", 5), 30_000, 193)
}

func TestStressInvariantsEarlyRelease(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	cfg.EarlyRegRelease = true
	stressRun(t, cfg, mixSources(t, "Mix 3", 6), 30_000, 193)
}

func TestStressInvariantsBranchHeavy(t *testing.T) {
	// vpr/crafty-style codes maximize misprediction squashes, the hardest
	// path for rename rollback and IQ/LSQ consistency.
	profs := []string{"vpr", "crafty", "gzip", "twolf"}
	srcs := make([]TraceSource, len(profs))
	for i, name := range profs {
		p, _ := workload.ProfileFor(name)
		srcs[i] = workload.MustNewGenerator(p, uint64(i)+11)
	}
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	cfg.EarlyRegRelease = true
	stressRun(t, cfg, srcs, 30_000, 97)
}

func TestStressInvariantsBaseline128(t *testing.T) {
	cfg := baselineCfg(4, 128)
	stressRun(t, cfg, mixSources(t, "Mix 6", 7), 30_000, 193)
}
