//go:build slowcheck

// The slowcheck lock-step harness: the strong half of the skip-ahead
// differential suite. It drives a skip-ahead CPU and a naive-ticker CPU
// over the same workload in lock step — stepping the naive engine
// cycle-by-cycle through every span the fast engine jumps — and
// compares observable machine state at every aligned cycle, so a
// divergence is reported at the first cycle it appears rather than as a
// run-end statistics delta. Run with:
//
//	go test -tags slowcheck ./internal/pipeline/...
package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/iq"
	"repro/internal/lsq"
	"repro/internal/policy"
	"repro/internal/rob"
	"repro/internal/telemetry"
)

// obsState is the per-cycle observable machine state compared at every
// aligned cycle. It deliberately excludes rob.TwoLevel's internal
// nextDue/globalDue caches, which may transiently differ while both
// engines agree on everything observable.
type obsState struct {
	Now                  int64
	DispatchRR, CommitRR int

	Stats Stats
	ROB   rob.Stats
	Owner int

	RingLen, RingUnexec []int
	HeadSeq             []uint64
	HeadExec            []bool

	IQLen   int
	IQStats iq.Stats
	LSQ     lsq.Stats

	IntRegs, FPRegs int

	Events    int
	NextEvent int64

	FetchStalledUntil []int64
	FQLen, ReplayLen  []int
	Finished          []bool
	FlushWait         []bool
	WrongPath         []bool
	MispredPending    []bool
	SquashRefill      []bool
}

func observe(c *CPU) obsState {
	o := obsState{
		Now:        c.now,
		DispatchRR: c.dispatchRR,
		CommitRR:   c.commitRR,
		Stats:      c.stats,
		ROB:        c.rob.Stats(),
		Owner:      c.rob.Owner(),
		IQLen:      c.iq.Len(),
		IQStats:    c.iq.Stats(),
		LSQ:        c.lsq.Stats(),
		IntRegs:    c.rf.InFlight(false),
		FPRegs:     c.rf.InFlight(true),
		Events:     c.events.len(),
		NextEvent:  -1,
	}
	if c.events.len() > 0 {
		o.NextEvent = c.events.peekAt()
	}
	n := c.cfg.Threads
	o.RingLen = make([]int, n)
	o.RingUnexec = make([]int, n)
	o.HeadSeq = make([]uint64, n)
	o.HeadExec = make([]bool, n)
	o.FetchStalledUntil = make([]int64, n)
	o.FQLen = make([]int, n)
	o.ReplayLen = make([]int, n)
	o.Finished = make([]bool, n)
	o.FlushWait = make([]bool, n)
	o.WrongPath = make([]bool, n)
	o.MispredPending = make([]bool, n)
	o.SquashRefill = make([]bool, n)
	for t := 0; t < n; t++ {
		r := c.rob.Ring(t)
		o.RingLen[t] = r.Len()
		o.RingUnexec[t] = r.Unexecuted()
		if h := r.Head(); h != nil {
			o.HeadSeq[t] = h.Seq
			o.HeadExec[t] = h.Executed
		}
		th := &c.threads[t]
		o.FetchStalledUntil[t] = th.fetchStalledUntil
		o.FQLen[t] = th.fq.len()
		o.ReplayLen[t] = th.replay.len()
		o.Finished[t] = th.finished
		o.FlushWait[t] = th.flushWait
		o.WrongPath[t] = th.wrongPath
		o.MispredPending[t] = th.mispredPending
		o.SquashRefill[t] = th.squashRefill
	}
	return o
}

// lockstep runs the two engines in lock step and reports the first
// divergent cycle. wantSkips asserts the fast engine actually skipped —
// a differential test that never leaves the slow path proves nothing.
func lockstep(t *testing.T, cfg Config, mix string, seed uint64, budget uint64, wantSkips bool) {
	t.Helper()
	fastCfg := cfg
	fastCfg.NaiveTicker = false
	naiveCfg := cfg
	naiveCfg.NaiveTicker = true
	fast, err := New(fastCfg, mixSources(t, mix, seed))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := New(naiveCfg, mixSources(t, mix, seed))
	if err != nil {
		t.Fatal(err)
	}
	if !fast.skipAhead {
		t.Fatalf("skip-ahead engine not active for policy %v", cfg.PolicyKind)
	}
	maxC := watchdogCycles(budget, cfg.MaxCycles)

	var simulated, skips, skippedCycles int64
	for {
		doneF := fast.stepCycle(budget)
		doneN := naive.stepCycle(budget)
		if doneF != doneN {
			t.Fatalf("cycle %d: skip-ahead done=%v, naive done=%v", fast.now, doneF, doneN)
		}
		simulated++
		if doneF {
			break
		}
		watchF := fast.advance(maxC)
		atBoundary := fast.now > naive.now+1
		if atBoundary {
			skips++
			skippedCycles += fast.now - naive.now - 1
		}
		watchN := naive.advance(maxC)
		for naive.now < fast.now {
			if naive.stepCycle(budget) {
				t.Fatalf("naive engine finished at cycle %d inside a span skip-ahead jumped over (to %d)",
					naive.now, fast.now)
			}
			watchN = naive.advance(maxC)
		}
		if fast.now != naive.now {
			t.Fatalf("clocks desynchronised: skip-ahead at %d, naive at %d", fast.now, naive.now)
		}
		if watchF != watchN {
			t.Fatalf("cycle %d: watchdog fired on one engine only (skip-ahead=%v, naive=%v)",
				fast.now, watchF, watchN)
		}
		if watchF {
			t.Fatalf("watchdog fired at cycle %d; harness budget misconfigured", fast.now)
		}
		if diff := diffState(naive, fast); diff != "" {
			t.Fatalf("first divergence at cycle %d (after %d simulated cycles, %d skips):\n%s",
				fast.now, simulated, skips, diff)
		}
		// Full telemetry diff only at skip boundaries: it deep-compares the
		// sample rings, which is too heavy for every cycle.
		if atBoundary && !reflect.DeepEqual(naive.tel, fast.tel) {
			t.Fatalf("telemetry diverged at skip boundary, cycle %d:\n naive: %+v\n skip:  %+v",
				fast.now, naive.tel.Summary(), fast.tel.Summary())
		}
	}
	requireIdentical(t, naive.result(), fast.result())
	if wantSkips && skips == 0 {
		t.Error("fast engine never skipped; the differential run exercised nothing")
	}
	t.Logf("lockstep: %d cycles simulated, %d skipped across %d jumps (final cycle %d)",
		simulated, skippedCycles, skips, fast.now)
}

func diffState(naive, fast *CPU) string {
	n, f := observe(naive), observe(fast)
	if reflect.DeepEqual(n, f) {
		return ""
	}
	return fmt.Sprintf(" naive: %+v\n skip:  %+v", n, f)
}

const slowcheckBudget = 3000

func TestLockstepSchemes(t *testing.T) {
	schemes := []struct {
		name string
		cfg  rob.Config
	}{
		{"Baseline_32", rob.Config{Threads: 4, L1Size: 32, Scheme: rob.Baseline}},
		{"RROB_16", rob.DefaultConfig(4, rob.Reactive, 16)},
		{"RelaxedRROB_15", rob.DefaultConfig(4, rob.RelaxedReactive, 15)},
		{"CDRROB_15", rob.DefaultConfig(4, rob.CountDelayedReactive, 15)},
		{"PROB_5", rob.DefaultConfig(4, rob.Predictive, 5)},
		{"Shared_128", rob.Config{Threads: 4, L1Size: 32, Scheme: rob.SharedSingle}},
	}
	for _, sc := range schemes {
		for _, mix := range []string{"Mix 1", "Mix 10"} {
			t.Run(sc.name+"/"+mix, func(t *testing.T) {
				cfg := DefaultConfig(4, sc.cfg)
				cfg.Telemetry = &telemetry.Config{}
				// Memory-bound mixes must exercise the skip machinery.
				lockstep(t, cfg, mix, 1, slowcheckBudget, mix == "Mix 1")
			})
		}
	}
}

func TestLockstepPolicies(t *testing.T) {
	for _, kind := range []policy.Kind{policy.ICOUNT, policy.STALL, policy.FLUSH, policy.MLP} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
			cfg.PolicyKind = kind
			cfg.Telemetry = &telemetry.Config{}
			lockstep(t, cfg, "Mix 1", 2, slowcheckBudget, true)
		})
	}
}

func TestLockstepEarlyRelease(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	cfg.EarlyRegRelease = true
	cfg.Telemetry = &telemetry.Config{}
	lockstep(t, cfg, "Mix 1", 3, slowcheckBudget, true)
}

func TestLockstepNoTelemetry(t *testing.T) {
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	lockstep(t, cfg, "Mix 1", 1, slowcheckBudget, true)
}
