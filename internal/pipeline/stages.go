package pipeline

import (
	"fmt"

	"repro/internal/iq"
	"repro/internal/isa"
	"repro/internal/rob"
	"repro/internal/telemetry"
	"repro/internal/uop"
)

// ---- front-end queue helpers (slice-as-ring with a head index) ----

type feQueue struct {
	buf  []feEntry
	head int
}

func (q *feQueue) len() int { return len(q.buf) - q.head }

func (q *feQueue) push(e feEntry) { q.buf = append(q.buf, e) }

func (q *feQueue) peek() *feEntry { return &q.buf[q.head] }

func (q *feQueue) pop() feEntry {
	e := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return e
}

func (q *feQueue) clear() {
	q.buf = q.buf[:0]
	q.head = 0
}

// entries returns the live entries oldest-first (read-only use).
func (q *feQueue) entries() []feEntry { return q.buf[q.head:] }

// ---- replay queue ----

// replayQueue holds real-path instructions awaiting re-fetch after a
// squash or I-cache stall. It is a slice-as-deque with a head index so
// popFront and the common pushFront (re-queueing the instruction just
// popped) are O(1) and allocation-free in steady state — the seed's
// `append([]isa.TraceInst{inst}, replay...)` prepend allocated a fresh
// slice on every replayed instruction.
type replayQueue struct {
	buf  []isa.TraceInst
	head int
}

func (q *replayQueue) len() int { return len(q.buf) - q.head }

func (q *replayQueue) popFront(out *isa.TraceInst) {
	*out = q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

// pushFront re-queues one instruction at the head. When the head slot was
// vacated by a popFront this is a store; otherwise (a trace-fresh
// instruction hitting an I-cache stall with an empty queue) the buffer
// shifts right, which amortizes to nothing once its capacity has grown.
func (q *replayQueue) pushFront(inst isa.TraceInst) {
	if q.head > 0 {
		q.head--
		q.buf[q.head] = inst
		return
	}
	q.buf = append(q.buf, isa.TraceInst{})
	copy(q.buf[1:], q.buf)
	q.buf[0] = inst
}

// replace swaps in a rebuilt backing array (program order, head 0) and
// returns the old one for reuse as the next rebuild's scratch.
func (q *replayQueue) replace(buf []isa.TraceInst) []isa.TraceInst {
	old := q.buf[:0]
	q.buf = buf
	q.head = 0
	return old
}

// pending returns the queued instructions oldest-first (read-only use).
func (q *replayQueue) pending() []isa.TraceInst { return q.buf[q.head:] }

// ---- fetch ----

const wrongPathPCBase = 0xffff_0000_0000_0000

// wpInst synthesizes one wrong-path instruction: integer ALU work that
// consumes front-end, rename, IQ and FU bandwidth until the mispredicted
// branch resolves. Wrong-path memory ops are not modelled (DESIGN.md §5).
func (th *thread) wpInst() isa.TraceInst {
	th.wpCounter++
	d := int8(1 + th.wpCounter%28)
	s := int8(1 + (th.wpCounter*7)%28)
	return isa.TraceInst{
		PC:   wrongPathPCBase + th.wpCounter*4,
		Op:   isa.OpIntAlu,
		Dest: d,
		Src1: s,
		Src2: 0,
	}
}

// nextInst returns the next correct-path instruction, draining the replay
// queue (instructions squashed by FLUSH) before advancing the trace.
func (c *CPU) nextInst(th *thread, out *isa.TraceInst) {
	if th.replay.len() > 0 {
		th.replay.popFront(out)
		if th.replay.len() == 0 {
			th.squashRefill = false
		}
		return
	}
	th.src.Next(out)
}

func (c *CPU) fetch() {
	c.order = c.pol.FetchOrder(c.snaps, c.order)
	budget := c.cfg.FetchWidth
	threadsUsed := 0
	for _, tid := range c.order {
		if budget <= 0 || threadsUsed >= c.cfg.FetchThreads {
			break
		}
		th := &c.threads[tid]
		if th.finished || th.flushWait || th.fetchStalledUntil > c.now {
			continue
		}
		if th.fq.len() >= c.cfg.FrontEndBuf {
			continue
		}
		n := c.fetchThread(tid, th, budget)
		if n > 0 {
			budget -= n
			threadsUsed++
		}
	}
}

// fetchThread fetches up to limit instructions for one thread and returns
// how many were fetched.
func (c *CPU) fetchThread(tid int, th *thread, limit int) int {
	count := 0
	readyAt := c.now + int64(c.cfg.FrontEndDepth)
	checkedICache := false
	for count < limit && th.fq.len() < c.cfg.FrontEndBuf {
		if th.wrongPath {
			th.fq.push(feEntry{inst: th.wpInst(), readyAt: readyAt, wrongPath: true})
			count++
			continue
		}
		inst := &th.instScratch
		c.nextInst(th, inst)
		if !checkedICache {
			// One I-cache probe per fetch block; a miss stalls the thread.
			res := c.hier.Fetch(inst.PC, c.now)
			checkedICache = true
			if res.L1Miss {
				th.fetchStalledUntil = res.ReadyAt
				// The instruction is not lost: replay it when fetch resumes.
				th.replay.pushFront(*inst)
				break
			}
		}
		e := feEntry{inst: *inst, readyAt: readyAt}
		if inst.Op == isa.OpBranch {
			hist := c.gshare.Hist(tid)
			pred := c.gshare.Predict(inst.PC, hist)
			e.isBranch = true
			e.hist = hist
			e.predTaken = pred
			c.gshare.PushHist(tid, pred)
			th.fq.push(e)
			th.fetched++
			c.stats.Fetched[tid]++
			count++
			if pred != inst.Taken {
				// Mispredicted: subsequent fetch runs down the wrong path
				// until the branch resolves and squashes it.
				th.mispredPending = true
				th.wrongPath = true
			}
			if pred {
				// Fetch block ends at a predicted-taken branch; a BTB miss
				// leaves the target unknown until decode computes it, so
				// fetch resumes after the configured redirect bubble.
				if _, ok := c.btb.Lookup(inst.PC); !ok {
					th.fetchStalledUntil = c.now + int64(c.cfg.BTBMissBubble)
				}
				break
			}
			continue
		}
		th.fq.push(e)
		th.fetched++
		c.stats.Fetched[tid]++
		count++
	}
	return count
}

// ---- dispatch ----

//tlrob:allocfree
func (c *CPU) dispatch() {
	budget := c.cfg.DispatchWidth
	n := c.cfg.Threads
	tid := c.dispatchRR
	// telState is always present: beyond telemetry, the skip-ahead
	// engine's idle proof needs the per-thread dispatch outcome.
	st := c.telState
	for i := 0; i < n && budget > 0; i++ {
		if i > 0 {
			tid++
			if tid == n {
				tid = 0
			}
		}
		th := &c.threads[tid]
		for budget > 0 && th.fq.len() > 0 {
			fe := th.fq.peek()
			if fe.readyAt > c.now {
				break
			}
			if cause := c.dispatchOne(tid, th, fe); cause != telemetry.CauseNone {
				// In-order dispatch: head-of-line blocks the thread; the
				// cycle is charged to the first blocking resource.
				if st.Dispatched[tid] == 0 {
					st.Causes[tid] = cause
				}
				break
			}
			th.fq.pop()
			budget--
			st.Dispatched[tid]++
		}
	}
	c.dispatchRR++
	if c.dispatchRR == n {
		c.dispatchRR = 0
	}
}

// robStallCause classifies a CanDispatch refusal: a thread capped at its
// first level while an L2 miss is outstanding and the second level is
// held elsewhere (or not yet granted) is waiting on a grant — the cycles
// the two-level schemes exist to reclaim; every other refusal is plain
// ROB pressure.
//
//tlrob:allocfree
func (c *CPU) robStallCause(tid int, th *thread) telemetry.Cause {
	s := c.cfg.ROB.Scheme
	if s != rob.Baseline && s != rob.SharedSingle &&
		c.rob.Owner() != tid && th.pendingL2Miss > 0 {
		return telemetry.CauseL2GrantWait
	}
	return telemetry.CauseROBFull
}

// dispatchGate is the pure admission check of dispatchOne: it returns
// CauseNone when the instruction could rename and insert right now, or
// the first blocking resource otherwise, without mutating anything. The
// skip-ahead engine dry-runs it (against freshly rebuilt snapshots) to
// decide whether the next cycle would dispatch, and to charge blocked
// spans to the same cause the naive ticker would record.
//
//tlrob:allocfree
func (c *CPU) dispatchGate(tid int, th *thread, fe *feEntry) telemetry.Cause {
	inst := &fe.inst
	if !c.rob.CanDispatch(tid) {
		return c.robStallCause(tid, th)
	}
	if c.iq.Free() == 0 || !c.pol.MayDispatchIQ(tid, c.snaps) {
		return telemetry.CauseIQFull
	}
	// A thread dispatching beyond its private first level (the
	// second-level owner) must leave issue-queue headroom for the other
	// threads, exactly like the rename-register reserve below: the grant
	// is not a licence to starve co-runners of dispatch slots.
	if c.iq.Free() <= 2*c.cfg.Threads && c.rob.Ring(tid).Len() >= c.cfg.ROB.L1Size {
		return telemetry.CauseIQFull
	}
	if inst.Op.IsMem() && !c.lsq.CanInsert(tid) {
		return telemetry.CauseLSQFull
	}
	if inst.HasDest() {
		free := c.rf.FreeCount(isa.IsFPReg(int(inst.Dest)))
		if free == 0 {
			return telemetry.CauseRegFile
		}
		// A thread dispatching beyond its private first level (the
		// second-level owner) must leave renaming headroom for the other
		// threads; without the reserve a 416-deep window empties the
		// rename pools and starves everyone else at dispatch.
		if free <= 8*c.cfg.Threads && c.rob.Ring(tid).Len() >= c.cfg.ROB.L1Size {
			return telemetry.CauseRegFile
		}
	}
	return telemetry.CauseNone
}

// dispatchOne renames and inserts one instruction. It returns CauseNone
// on success; any other cause means that resource was unavailable and
// the thread must stall this cycle.
//
//tlrob:allocfree
func (c *CPU) dispatchOne(tid int, th *thread, fe *feEntry) telemetry.Cause {
	if cause := c.dispatchGate(tid, th, fe); cause != telemetry.CauseNone {
		return cause
	}
	inst := &fe.inst
	isMem := inst.Op.IsMem()

	slot, u := c.rob.Ring(tid).Push()
	u.PC = inst.PC
	u.Addr = inst.Addr
	u.Op = inst.Op
	u.Tid = int8(tid)
	u.Seq = c.seqNext
	c.seqNext++
	u.DestArch = inst.Dest
	u.SrcArch = [2]int8{inst.Src1, inst.Src2}
	u.Taken = inst.Taken
	u.PredTaken = fe.predTaken
	u.Hist = fe.hist
	u.FetchedAt = fe.readyAt - int64(c.cfg.FrontEndDepth)
	u.WrongPath = fe.wrongPath
	u.LsqSlot = -1
	u.DestPhys = uop.NoReg
	u.OldPhys = uop.NoReg

	for k, a := range u.SrcArch {
		if a == isa.RegNone {
			u.SrcPhys[k] = uop.NoReg
		} else {
			u.SrcPhys[k] = c.rf.Lookup(tid, int(a))
		}
	}
	if inst.HasDest() {
		newP, oldP, ok := c.rf.Allocate(tid, int(inst.Dest))
		if !ok {
			panic("pipeline: register allocation failed after availability check")
		}
		u.DestPhys, u.OldPhys = newP, oldP
		if isa.IsFPReg(int(inst.Dest)) {
			th.fpRegs++
			c.snaps[tid].FPRegs++
		} else {
			th.intRegs++
			c.snaps[tid].IntRegs++
		}
	}
	if isMem {
		u.LsqSlot = c.lsq.Insert(tid, slot, u.Seq, inst.Op == isa.OpStore, inst.Addr)
	}
	if inst.Op == isa.OpBranch && u.PredTaken != u.Taken {
		u.Mispred = true
	}

	e := iq.Entry{H: uop.Handle{Tid: int8(tid), Slot: slot}, Seq: u.Seq, Op: u.Op, Src: u.SrcPhys}
	for k, s := range u.SrcPhys {
		e.Rdy[k] = s == uop.NoReg || c.rf.Ready(s)
	}
	if !c.iq.Insert(e) {
		panic("pipeline: IQ insert failed after availability check")
	}
	c.snaps[tid].IQ++
	if fe.wrongPath {
		c.stats.WrongPathDispatched++
	}
	if c.early != nil {
		for _, s := range u.SrcPhys {
			c.early.OnDispatchRead(s)
		}
		if u.Op == isa.OpBranch {
			c.early.OnBranchDispatched(tid)
		}
		if u.DestPhys != uop.NoReg && !u.WrongPath {
			c.early.OnOverwriterDispatched(tid, u.Seq, u.OldPhys)
		}
	}
	return telemetry.CauseNone
}

// ---- issue ----

//tlrob:allocfree
func (c *CPU) issue() {
	c.readyBuf = c.iq.CollectReady(c.readyBuf)
	issued := 0
	for _, idx := range c.readyBuf {
		if issued >= c.cfg.IssueWidth {
			break
		}
		e := c.iq.Entry(idx)
		tid := int(e.H.Tid)
		u := c.rob.Ring(tid).At(e.H.Slot)
		var forward bool
		if u.Op == isa.OpLoad {
			blocked, fwd := c.lsq.LoadCheck(tid, u.LsqSlot)
			if blocked {
				continue // older same-address store still pending
			}
			forward = fwd
		}
		if !c.fus.TryIssue(u.Op, c.now) {
			continue
		}
		c.iq.Remove(idx)
		u.Issued = true
		u.IssuedAt = c.now
		if c.early != nil {
			for _, s := range u.SrcPhys {
				c.early.OnIssueRead(s)
			}
		}
		completeAt := c.execLatency(tid, u, forward)
		c.events.push(event{at: completeAt, seq: u.Seq, slot: u.RobSlot, tid: e.H.Tid, kind: evComplete})
		issued++
	}
}

// execLatency models execution timing and initiates memory accesses.
func (c *CPU) execLatency(tid int, u *uop.UOp, forward bool) int64 {
	lat := int64(isa.Timings[u.Op].Latency)
	if u.Op != isa.OpLoad {
		return c.now + lat
	}
	if forward {
		u.Forwarded = true
		return c.now + lat
	}
	res := c.hier.Load(u.Addr, c.now)
	u.L1Miss = res.L1Miss
	u.L2Miss = res.L2Miss
	base := c.now + lat
	if res.ReadyAt > base {
		base = res.ReadyAt
	}
	c.stats.Loads[tid]++
	if res.L1Miss {
		c.stats.LoadL1Miss[tid]++
	}
	if res.L2Miss {
		c.stats.LoadL2Miss[tid]++
	}
	c.stats.LoadLatencySum[tid] += uint64(base - c.now)
	pred := c.loadHit.Predict(tid, u.PC)
	u.LoadHitPred = pred
	c.loadHit.Update(tid, u.PC, !res.L1Miss, pred)
	if pred && res.L1Miss {
		// Consumers were speculatively scheduled against a hit and must
		// replay; the cost is modelled as added load latency.
		base += int64(c.cfg.ReplayPenalty)
	}
	if res.L1Miss {
		c.threads[tid].pendingDMiss++
	}
	if res.L2Miss {
		c.events.push(event{
			at:   c.now + int64(c.cfg.MissDetectDelay),
			seq:  u.Seq,
			slot: u.RobSlot,
			tid:  int8(tid),
			kind: evMissDetect,
		})
	}
	return base
}

// ---- writeback ----

//tlrob:allocfree
func (c *CPU) writeback() {
	for c.events.len() > 0 && c.events.peekAt() <= c.now {
		ev := c.events.pop()
		tid := int(ev.tid)
		ring := c.rob.Ring(tid)
		if ring.PosOf(ev.slot) < 0 {
			continue // entry squashed and slot not yet reused
		}
		u := ring.At(ev.slot)
		if u.Seq != ev.seq || u.Squashed {
			continue
		}
		switch ev.kind {
		case evMissDetect:
			c.missDetect(tid, u)
		case evComplete:
			c.complete(tid, u)
		}
	}
}

func (c *CPU) missDetect(tid int, u *uop.UOp) {
	if u.Executed {
		// The fill arrived before detection completed (merged with an
		// outstanding miss); nothing to track.
		return
	}
	th := &c.threads[tid]
	u.L2Detected = true
	th.pendingL2Miss++
	if c.mlp != nil {
		if th.pendingL2Miss == 1 {
			// A new miss episode opens; predict its parallelism.
			th.episodePC = u.PC
			th.episodeMisses = 0
			th.predictedMLP = c.mlp.Predict(u.PC)
		} else {
			th.episodeMisses++
		}
	}
	c.rob.MissDetected(tid, u.RobSlot, u.PC, u.Hist, c.now)
	if c.pol.FlushOnL2Miss() && !th.flushWait {
		c.stats.FlushSquashes++
		c.squash(tid, u.Seq)
		th.flushWait = true
		th.flushLoadSeq = u.Seq
	}
}

func (c *CPU) complete(tid int, u *uop.UOp) {
	th := &c.threads[tid]
	c.rob.Ring(tid).MarkExecuted(u.RobSlot)
	u.CompleteAt = c.now
	if u.DestPhys != uop.NoReg {
		c.rf.SetReady(u.DestPhys)
		c.iq.Wakeup(u.DestPhys)
		if c.early != nil && !u.WrongPath {
			c.early.OnOverwriterExecuted(u.Seq, u.OldPhys)
		}
	}
	switch u.Op {
	case isa.OpLoad:
		c.lsq.MarkExecuted(tid, u.LsqSlot)
		if u.L1Miss {
			th.pendingDMiss--
		}
		if u.L2Detected {
			th.pendingL2Miss--
			if c.mlp != nil && th.pendingL2Miss == 0 {
				// Episode over: train with the overlap actually observed.
				c.mlp.Train(th.episodePC, th.episodeMisses)
				th.predictedMLP = 0
			}
			if th.flushWait && th.flushLoadSeq == u.Seq {
				th.flushWait = false
				th.fetchStalledUntil = c.now + int64(c.cfg.RedirectBubble)
			}
			ring := c.rob.Ring(tid)
			var exact int
			if c.cfg.TrackExactDoD {
				exact = rob.ExactDoD(ring, u.RobSlot)
			}
			dod, ok := c.rob.MissServiced(tid, u.RobSlot, c.now)
			if ok {
				c.dodHist.Add(dod)
				if c.cfg.TrackExactDoD {
					diff := dod - exact
					if diff < 0 {
						diff = -diff
					}
					c.stats.ApproxDoDSamples++
					c.stats.ApproxExactDiffSum += uint64(diff)
				}
			}
		}
	case isa.OpStore:
		c.lsq.MarkExecuted(tid, u.LsqSlot)
	case isa.OpBranch:
		c.resolveBranch(tid, th, u)
	}
}

func (c *CPU) resolveBranch(tid int, th *thread, u *uop.UOp) {
	if c.early != nil {
		c.early.OnBranchResolved(tid)
	}
	c.gshare.Update(u.PC, u.Hist, u.Taken, u.PredTaken)
	if u.Taken && !u.WrongPath {
		c.btb.Update(u.PC, th.src.BranchTarget(u.PC))
	}
	if !u.Mispred {
		return
	}
	c.squash(tid, u.Seq)
	th.mispredPending = false
	th.wrongPath = false
	if redirect := c.now + int64(c.cfg.RedirectBubble); th.fetchStalledUntil < redirect {
		th.fetchStalledUntil = redirect
	}
	// Repair the speculative history: everything after this branch was
	// squashed; re-seed with the branch's own (actual) outcome.
	bit := uint64(0)
	if u.Taken {
		bit = 1
	}
	c.gshare.SetHist(tid, (u.Hist<<1)|bit)
}

// ---- squash ----

// squash removes every in-flight instruction of tid strictly younger than
// targetSeq: ROB entries (youngest-first rename rollback), IQ and LSQ
// entries, and the whole front-end queue. Real-path instructions are
// pushed onto the replay queue for re-fetch; wrong-path ones evaporate.
func (c *CPU) squash(tid int, targetSeq uint64) {
	th := &c.threads[tid]
	ring := c.rob.Ring(tid)

	replayRev := th.sqScratch[:0] // youngest-first; reversed below
	var oldestBranchHist uint64
	haveBranchHist := false

	for {
		t := ring.Tail()
		if t == nil || t.Seq <= targetSeq {
			break
		}
		if c.early != nil {
			if !t.Issued {
				for _, s := range t.SrcPhys {
					c.early.OnSquashRead(s)
				}
			}
			if t.Op == isa.OpBranch && !t.Executed {
				c.early.OnBranchResolved(tid)
			}
			if t.DestPhys != uop.NoReg && !t.WrongPath {
				if c.early.OnOverwriterGone(t.Seq, t.OldPhys) {
					panic("pipeline: squashing an early-released rename")
				}
			}
		}
		if t.DestPhys != uop.NoReg {
			c.rf.Rollback(tid, int(t.DestArch), t.DestPhys, t.OldPhys)
			if isa.IsFPReg(int(t.DestArch)) {
				th.fpRegs--
			} else {
				th.intRegs--
			}
		}
		if t.LsqSlot >= 0 {
			c.lsq.PopTail(tid, t.Seq)
		}
		if t.Op == isa.OpLoad && t.Issued && !t.Executed {
			if t.L1Miss {
				th.pendingDMiss--
			}
			if t.L2Detected {
				th.pendingL2Miss--
				if c.mlp != nil && th.pendingL2Miss == 0 {
					th.predictedMLP = 0
				}
			}
		}
		if th.flushWait && t.Seq == th.flushLoadSeq {
			th.flushWait = false
		}
		if t.Op == isa.OpBranch && t.Mispred && !t.Executed && !t.WrongPath {
			// The unresolved mispredicted branch itself is being squashed
			// (e.g. by a FLUSH): there is no resolver left, so wrong-path
			// fetch must stop — the branch replays and re-predicts.
			th.mispredPending = false
			th.wrongPath = false
		}
		c.rob.EntrySquashed(tid, t.RobSlot)
		if !t.WrongPath {
			if t.Op == isa.OpBranch {
				oldestBranchHist = t.Hist
				haveBranchHist = true
			}
			replayRev = append(replayRev, isa.TraceInst{
				PC:    t.PC,
				Op:    t.Op,
				Dest:  t.DestArch,
				Src1:  t.SrcArch[0],
				Src2:  t.SrcArch[1],
				Addr:  t.Addr,
				Taken: t.Taken,
			})
		}
		ring.MarkSquashed(t.RobSlot)
		c.stats.SquashedUops++
		ring.PopTail()
	}
	c.iq.SquashYounger(int8(tid), targetSeq)

	// Rebuild the replay queue in program order into the reusable merge
	// scratch: squashed ROB entries (oldest first), then squashed
	// front-end entries, then whatever was already queued for replay.
	// Front-end entries are younger than everything in the ROB; note the
	// oldest branch history there only if the ROB walk found none.
	merged := th.mergeScratch[:0]
	for i := len(replayRev) - 1; i >= 0; i-- {
		merged = append(merged, replayRev[i])
	}
	fePrepended := 0
	for i := range th.fq.entries() {
		e := &th.fq.entries()[i]
		if e.wrongPath {
			continue
		}
		if e.isBranch {
			if !haveBranchHist {
				oldestBranchHist = e.hist
				haveBranchHist = true
			}
			if e.predTaken != e.inst.Taken {
				// The pending mispredicted branch was still in the front
				// end; clearing it must also stop wrong-path fetch.
				th.mispredPending = false
				th.wrongPath = false
			}
		}
		merged = append(merged, e.inst)
		fePrepended++
	}
	th.fq.clear()

	if len(replayRev) > 0 || fePrepended > 0 {
		merged = append(merged, th.replay.pending()...)
		th.mergeScratch = th.replay.replace(merged)
		th.squashRefill = true
	} else {
		th.mergeScratch = merged[:0]
	}
	th.sqScratch = replayRev[:0]
	if haveBranchHist {
		c.gshare.SetHist(tid, oldestBranchHist)
	}
}

// ---- commit ----

// commit retires up to CommitWidth executed instructions across threads in
// program order per thread; returns true when a thread reaches its budget.
//
//tlrob:allocfree
func (c *CPU) commit(budget uint64) bool {
	remaining := c.cfg.CommitWidth
	n := c.cfg.Threads
	done := false
	for i := 0; i < n && remaining > 0; i++ {
		tid := (c.commitRR + i) % n
		th := &c.threads[tid]
		ring := c.rob.Ring(tid)
		for remaining > 0 {
			h := ring.Head()
			if h == nil || !h.Executed {
				break
			}
			if h.WrongPath {
				panic(fmt.Sprintf("pipeline: wrong-path uop at commit (tid=%d seq=%d)", tid, h.Seq))
			}
			c.commitOne(tid, th, h)
			remaining--
			if th.committed >= budget {
				th.finished = true
				done = true
			}
		}
	}
	c.commitRR = (c.commitRR + 1) % n
	return done
}

//tlrob:allocfree
func (c *CPU) commitOne(tid int, th *thread, u *uop.UOp) {
	if c.CommitHook != nil {
		c.CommitHook(tid, u)
	}
	if u.IsMem() {
		head := c.lsq.Head(tid)
		if head == nil || head.RobSlot != u.RobSlot {
			panic("pipeline: LSQ/ROB commit order mismatch")
		}
		if u.Op == isa.OpStore {
			c.hier.StoreCommit(u.Addr)
		}
		c.lsq.PopHead(tid)
	}
	if u.DestPhys != uop.NoReg {
		released := false
		if c.early != nil {
			released = c.early.OnOverwriterGone(u.Seq, u.OldPhys)
		}
		if !released {
			c.rf.Release(u.OldPhys)
		}
		if isa.IsFPReg(int(u.DestArch)) {
			th.fpRegs--
		} else {
			th.intRegs--
		}
	}
	c.rob.Ring(tid).PopHead()
	th.committed++
	c.stats.Committed[tid]++
}
