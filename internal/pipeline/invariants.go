package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/uop"
)

// CheckInvariants cross-validates the pipeline's structures mid-run. It is
// O(machine state) and intended for tests (stress runs call it every few
// hundred cycles), not for the simulation loop.
func (c *CPU) CheckInvariants() error {
	if err := c.iq.CheckInvariants(); err != nil {
		return err
	}
	if err := c.lsq.CheckInvariants(); err != nil {
		return err
	}
	if err := c.rf.CheckInvariants(); err != nil {
		return err
	}
	if c.early != nil {
		if err := c.early.CheckInvariants(); err != nil {
			return err
		}
	}

	perThreadIQ := make([]int, c.cfg.Threads)
	for tid := 0; tid < c.cfg.Threads; tid++ {
		th := &c.threads[tid]
		ring := c.rob.Ring(tid)
		if err := ring.CheckInvariants(); err != nil {
			return err
		}
		if ring.Len() > c.rob.Capacity(tid) && c.rob.Config().Scheme != 0 {
			// Capacity may legally shrink below occupancy right after a
			// release; dispatch is what respects CanDispatch. Only flag
			// physical overflow.
			if ring.Len() > ring.Cap() {
				return fmt.Errorf("thread %d: ROB %d over physical capacity %d", tid, ring.Len(), ring.Cap())
			}
		}

		var prevSeq uint64
		intRegs, fpRegs := 0, 0
		memOps := 0
		for i := 0; i < ring.Len(); i++ {
			u := ring.At(ring.SlotAt(i))
			if i > 0 && u.Seq <= prevSeq {
				return fmt.Errorf("thread %d: ROB out of program order at %d", tid, i)
			}
			prevSeq = u.Seq
			if u.Squashed {
				return fmt.Errorf("thread %d: squashed entry still live (seq %d)", tid, u.Seq)
			}
			if int(u.Tid) != tid {
				return fmt.Errorf("thread %d: foreign entry (tid %d)", tid, u.Tid)
			}
			if u.DestPhys != uop.NoReg {
				if isa.IsFPReg(int(u.DestArch)) {
					fpRegs++
				} else {
					intRegs++
				}
				// With early release, an executed entry's dest can be
				// legally freed and recycled before commit (its value is
				// provably dead), so the readiness check only applies to
				// the plain configuration.
				if c.early == nil && u.Executed && !c.rf.Ready(u.DestPhys) {
					return fmt.Errorf("thread %d: executed seq %d has unready dest", tid, u.Seq)
				}
			}
			if u.IsMem() {
				memOps++
				if u.LsqSlot < 0 {
					return fmt.Errorf("thread %d: memory op seq %d without LSQ slot", tid, u.Seq)
				}
			}
			if !u.Issued && !u.Executed && !u.InIQ {
				// InIQ is not tracked per-uop; reconstructed below via
				// queue counts instead.
				_ = u
			}
			if u.Executed && !u.Issued {
				return fmt.Errorf("thread %d: seq %d executed without issuing", tid, u.Seq)
			}
		}
		if intRegs != th.intRegs || fpRegs != th.fpRegs {
			return fmt.Errorf("thread %d: reg counters int=%d/%d fp=%d/%d",
				tid, th.intRegs, intRegs, th.fpRegs, fpRegs)
		}
		if memOps != c.lsq.Count(tid) {
			return fmt.Errorf("thread %d: %d memory ops in ROB but %d LSQ entries",
				tid, memOps, c.lsq.Count(tid))
		}
		if th.pendingDMiss < 0 || th.pendingL2Miss < 0 {
			return fmt.Errorf("thread %d: negative miss counters %d/%d",
				tid, th.pendingDMiss, th.pendingL2Miss)
		}
		perThreadIQ[tid] = c.iq.CountOf(tid)
	}

	// Every IQ entry must reference a live, unissued ROB entry.
	total := 0
	for i := 0; i < c.iq.Size(); i++ {
		e := c.iq.Entry(i)
		if !e.Valid {
			continue
		}
		total++
		ring := c.rob.Ring(int(e.H.Tid))
		if ring.PosOf(e.H.Slot) < 0 {
			return fmt.Errorf("IQ entry references dead ROB slot (tid %d slot %d)", e.H.Tid, e.H.Slot)
		}
		u := ring.At(e.H.Slot)
		if u.Seq != e.Seq {
			return fmt.Errorf("IQ entry stale: seq %d vs ROB %d", e.Seq, u.Seq)
		}
		if u.Issued {
			return fmt.Errorf("issued uop seq %d still in IQ", u.Seq)
		}
	}
	if total != c.iq.Len() {
		return fmt.Errorf("IQ count mismatch: %d valid vs %d", total, c.iq.Len())
	}
	return nil
}
