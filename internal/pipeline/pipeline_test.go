package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/policy"
	"repro/internal/rob"
	"repro/internal/uop"
	"repro/internal/workload"
)

// syntheticSource replays a fixed slice of instructions in a loop.
type syntheticSource struct {
	insts   []isa.TraceInst
	pos     int
	targets map[uint64]uint64
}

func (s *syntheticSource) Next(out *isa.TraceInst) {
	*out = s.insts[s.pos]
	s.pos = (s.pos + 1) % len(s.insts)
}

func (s *syntheticSource) BranchTarget(pc uint64) uint64 { return s.targets[pc] }

// aluLoop builds a branch-free ALU stream (reg i writes rotate).
func aluLoop(n int) *syntheticSource {
	insts := make([]isa.TraceInst, n)
	for i := range insts {
		insts[i] = isa.TraceInst{
			PC:   0x1000 + uint64(i)*4,
			Op:   isa.OpIntAlu,
			Dest: int8(1 + i%20),
			Src1: int8(1 + (i+7)%20),
			Src2: 0,
		}
	}
	return &syntheticSource{insts: insts}
}

func baselineCfg(threads, l1 int) Config {
	return DefaultConfig(threads, rob.Config{Threads: threads, L1Size: l1, Scheme: rob.Baseline})
}

func run(t *testing.T, cfg Config, srcs []TraceSource, budget uint64) Result {
	t.Helper()
	c, err := New(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	cfg := baselineCfg(1, 32)
	cfg.Threads = 2 // mismatch with ROB config
	if _, err := New(cfg, make([]TraceSource, 2)); err == nil {
		t.Fatal("thread/ROB mismatch accepted")
	}
	cfg = baselineCfg(1, 32)
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("missing sources accepted")
	}
	cfg.IssueWidth = 0
	if _, err := New(cfg, []TraceSource{aluLoop(8)}); err == nil {
		t.Fatal("zero issue width accepted")
	}
}

func TestALUThroughput(t *testing.T) {
	res := run(t, baselineCfg(1, 32), []TraceSource{aluLoop(64)}, 20000)
	if res.IPC[0] < 1.5 {
		t.Fatalf("ALU-only IPC %.2f too low for an 8-wide machine", res.IPC[0])
	}
	if res.Committed[0] < 20000 {
		t.Fatalf("committed %d", res.Committed[0])
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// Every instruction depends on the previous one: IPC must approach 1.
	insts := make([]isa.TraceInst, 32)
	for i := range insts {
		insts[i] = isa.TraceInst{
			PC: 0x1000 + uint64(i)*4, Op: isa.OpIntAlu,
			Dest: 5, Src1: 5, Src2: 0,
		}
	}
	res := run(t, baselineCfg(1, 32), []TraceSource{&syntheticSource{insts: insts}}, 5000)
	if res.IPC[0] > 1.2 {
		t.Fatalf("serial chain IPC %.2f exceeds 1", res.IPC[0])
	}
	if res.IPC[0] < 0.7 {
		t.Fatalf("serial chain IPC %.2f far below 1", res.IPC[0])
	}
}

func TestLongLatencyOpsThrottle(t *testing.T) {
	// FP divides with issue interval 12 on 4 units: peak throughput 1/3.
	insts := make([]isa.TraceInst, 16)
	for i := range insts {
		insts[i] = isa.TraceInst{
			PC: 0x1000 + uint64(i)*4, Op: isa.OpFPDiv,
			Dest: int8(isa.NumIntRegs + 1 + i%16), Src1: int8(isa.NumIntRegs), Src2: int8(isa.NumIntRegs),
		}
	}
	res := run(t, baselineCfg(1, 32), []TraceSource{&syntheticSource{insts: insts}}, 3000)
	if res.IPC[0] > 0.4 {
		t.Fatalf("divider-bound IPC %.2f above 4/12", res.IPC[0])
	}
}

func TestDeterministicRuns(t *testing.T) {
	prof, _ := workload.ProfileFor("parser")
	mk := func() Result {
		g := workload.MustNewGenerator(prof, 11)
		return run(t, baselineCfg(1, 32), []TraceSource{g}, 20000)
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.Committed[0] != b.Committed[0] {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.Committed[0], b.Cycles, b.Committed[0])
	}
}

func TestBranchMispredictionCostsCycles(t *testing.T) {
	prof, _ := workload.ProfileFor("crafty")
	g := workload.MustNewGenerator(prof, 3)
	res := run(t, baselineCfg(1, 32), []TraceSource{g}, 30000)
	if res.Branch.Mispreds == 0 {
		t.Fatal("no mispredictions on a branchy benchmark")
	}
	if res.WrongPathDispatched == 0 {
		t.Fatal("no wrong-path instructions modelled")
	}
	if res.SquashedUops == 0 {
		t.Fatal("no squashes despite mispredictions")
	}
}

func TestWrongPathNeverCommits(t *testing.T) {
	// Implicitly verified by the commit-stage panic; run a branchy load-
	// heavy mix to exercise it.
	prof, _ := workload.ProfileFor("vpr")
	g := workload.MustNewGenerator(prof, 5)
	res := run(t, baselineCfg(1, 32), []TraceSource{g}, 20000)
	if res.Committed[0] < 20000 {
		t.Fatal("did not finish")
	}
}

func TestMemoryBoundSlowerThanComputeBound(t *testing.T) {
	art, _ := workload.ProfileFor("art")
	mesa, _ := workload.ProfileFor("mesa")
	a := run(t, baselineCfg(1, 32), []TraceSource{workload.MustNewGenerator(art, 1)}, 20000)
	m := run(t, baselineCfg(1, 32), []TraceSource{workload.MustNewGenerator(mesa, 1)}, 20000)
	if a.IPC[0]*5 > m.IPC[0] {
		t.Fatalf("memory-bound art (%.3f) not clearly slower than mesa (%.3f)", a.IPC[0], m.IPC[0])
	}
}

func TestLargerWindowHelpsMemoryBound(t *testing.T) {
	// The enabling observation of the paper: art alone speeds up
	// substantially with a larger ROB (more MLP).
	art, _ := workload.ProfileFor("art")
	small := run(t, baselineCfg(1, 32), []TraceSource{workload.MustNewGenerator(art, 1)}, 20000)
	big := run(t, baselineCfg(1, 256), []TraceSource{workload.MustNewGenerator(art, 1)}, 20000)
	if big.IPC[0] < 1.5*small.IPC[0] {
		t.Fatalf("window scaling: 32-entry %.4f vs 256-entry %.4f", small.IPC[0], big.IPC[0])
	}
}

func TestSMTThroughputExceedsSingleThread(t *testing.T) {
	parser, _ := workload.ProfileFor("parser")
	crafty, _ := workload.ProfileFor("crafty")
	single := run(t, baselineCfg(1, 32), []TraceSource{workload.MustNewGenerator(parser, 1)}, 20000)
	duo := run(t, baselineCfg(2, 32), []TraceSource{
		workload.MustNewGenerator(parser, 1),
		workload.MustNewGenerator(crafty, 2),
	}, 20000)
	if duo.IPC[0]+duo.IPC[1] <= single.IPC[0] {
		t.Fatalf("SMT throughput %.3f below single-thread %.3f",
			duo.IPC[0]+duo.IPC[1], single.IPC[0])
	}
}

func TestFourThreadMixRuns(t *testing.T) {
	mix, _ := workload.MixByName("Mix 5")
	gens, err := workload.MixGenerators(mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]TraceSource, 4)
	for i := range gens {
		srcs[i] = gens[i]
	}
	res := run(t, baselineCfg(4, 32), srcs, 20000)
	for tid, c := range res.Committed {
		if c == 0 {
			t.Fatalf("thread %d starved completely", tid)
		}
	}
	if res.DoDHist.Total() == 0 {
		t.Fatal("no DoD observations on a memory-bound mix")
	}
}

func TestTwoLevelROBAllocates(t *testing.T) {
	mix, _ := workload.MixByName("Mix 1")
	gens, _ := workload.MixGenerators(mix, 1)
	srcs := make([]TraceSource, 4)
	for i := range gens {
		srcs[i] = gens[i]
	}
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	res := run(t, cfg, srcs, 20000)
	if res.ROBStats.Allocations == 0 {
		t.Fatal("reactive scheme never allocated on a 4-low mix")
	}
	if res.ROBStats.Releases == 0 {
		t.Fatal("partition never released")
	}
	if res.ROBStats.Releases > res.ROBStats.Allocations {
		t.Fatalf("more releases than allocations: %+v", res.ROBStats)
	}
}

func TestReactiveBeatsBaselineOnMemoryBoundMix(t *testing.T) {
	mix, _ := workload.MixByName("Mix 1")
	runScheme := func(robCfg rob.Config) Result {
		gens, _ := workload.MixGenerators(mix, 1)
		srcs := make([]TraceSource, 4)
		for i := range gens {
			srcs[i] = gens[i]
		}
		return run(t, DefaultConfig(4, robCfg), srcs, 40000)
	}
	base := runScheme(rob.Config{Threads: 4, L1Size: 32, Scheme: rob.Baseline})
	rrob := runScheme(rob.DefaultConfig(4, rob.Reactive, 16))
	baseTot, rrobTot := 0.0, 0.0
	for tid := range base.IPC {
		baseTot += base.IPC[tid]
		rrobTot += rrob.IPC[tid]
	}
	if rrobTot <= baseTot {
		t.Fatalf("R-ROB throughput %.4f not above baseline %.4f", rrobTot, baseTot)
	}
}

func TestExactDoDTracking(t *testing.T) {
	mix, _ := workload.MixByName("Mix 1")
	gens, _ := workload.MixGenerators(mix, 1)
	srcs := make([]TraceSource, 4)
	for i := range gens {
		srcs[i] = gens[i]
	}
	cfg := baselineCfg(4, 32)
	cfg.TrackExactDoD = true
	res := run(t, cfg, srcs, 10000)
	if res.ApproxDoDSamples == 0 {
		t.Fatal("exact-DoD comparison collected no samples")
	}
	mean := float64(res.ApproxExactDiffSum) / float64(res.ApproxDoDSamples)
	// The approximation must be close-ish to the truth at service time
	// (the paper's argument for the cheap counter).
	if mean > 16 {
		t.Fatalf("approximate DoD off by %.1f on average", mean)
	}
}

func TestStallPolicyGatesFetch(t *testing.T) {
	art, _ := workload.ProfileFor("art")
	cfg := baselineCfg(1, 32)
	cfg.PolicyKind = policy.STALL
	res := run(t, cfg, []TraceSource{workload.MustNewGenerator(art, 1)}, 10000)
	if res.Committed[0] < 10000 {
		t.Fatal("STALL policy deadlocked a single thread")
	}
}

func TestFlushPolicySquashes(t *testing.T) {
	art, _ := workload.ProfileFor("art")
	cfg := baselineCfg(1, 32)
	cfg.PolicyKind = policy.FLUSH
	res := run(t, cfg, []TraceSource{workload.MustNewGenerator(art, 1)}, 10000)
	if res.FlushSquashes == 0 {
		t.Fatal("FLUSH policy never flushed on a miss-heavy benchmark")
	}
	if res.Committed[0] < 10000 {
		t.Fatal("FLUSH run did not finish")
	}
}

func TestICountPolicyRuns(t *testing.T) {
	mix, _ := workload.MixByName("Mix 5")
	gens, _ := workload.MixGenerators(mix, 1)
	srcs := make([]TraceSource, 4)
	for i := range gens {
		srcs[i] = gens[i]
	}
	cfg := baselineCfg(4, 32)
	cfg.PolicyKind = policy.ICOUNT
	res := run(t, cfg, srcs, 15000)
	for tid, c := range res.Committed {
		if c == 0 {
			t.Fatalf("ICOUNT starved thread %d", tid)
		}
	}
}

func TestLoadHitPredictorExercised(t *testing.T) {
	parser, _ := workload.ProfileFor("parser")
	res := run(t, baselineCfg(1, 32), []TraceSource{workload.MustNewGenerator(parser, 1)}, 20000)
	if res.LoadHit.Lookups == 0 {
		t.Fatal("load-hit predictor never consulted")
	}
}

func TestStoreForwardingHappens(t *testing.T) {
	// Store then load to the same address back-to-back.
	insts := []isa.TraceInst{
		{PC: 0x1000, Op: isa.OpIntAlu, Dest: 1, Src1: 0, Src2: 0},
		{PC: 0x1004, Op: isa.OpStore, Dest: isa.RegNone, Src1: 1, Src2: 2, Addr: 0x4008},
		{PC: 0x1008, Op: isa.OpLoad, Dest: 3, Src1: 0, Src2: isa.RegNone, Addr: 0x4008},
		{PC: 0x100c, Op: isa.OpIntAlu, Dest: 4, Src1: 3, Src2: 0},
	}
	res := run(t, baselineCfg(1, 32), []TraceSource{&syntheticSource{insts: insts}}, 4000)
	if res.LSQStats.Forwarded == 0 {
		t.Fatal("no store-to-load forwarding")
	}
}

func TestBudgetStopsAtFirstThread(t *testing.T) {
	fast := aluLoop(64)
	slow, _ := workload.ProfileFor("mcf")
	res := run(t, baselineCfg(2, 32), []TraceSource{fast, workload.MustNewGenerator(slow, 1)}, 5000)
	if res.Committed[0] < 5000 {
		t.Fatal("fast thread under budget")
	}
	if res.Committed[1] >= 5000 {
		t.Fatal("slow thread also hit budget — stop rule broken")
	}
}

func TestZeroBudgetRejected(t *testing.T) {
	c, err := New(baselineCfg(1, 32), []TraceSource{aluLoop(8)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestEarlyRegReleaseRuns(t *testing.T) {
	mix, _ := workload.MixByName("Mix 1")
	gens, _ := workload.MixGenerators(mix, 1)
	srcs := make([]TraceSource, 4)
	for i := range gens {
		srcs[i] = gens[i]
	}
	cfg := DefaultConfig(4, rob.DefaultConfig(4, rob.Reactive, 16))
	cfg.EarlyRegRelease = true
	res := run(t, cfg, srcs, 25000)
	if res.EarlyRegReleases == 0 {
		t.Fatal("early register release never fired")
	}
	for tid, c := range res.Committed {
		if c == 0 {
			t.Fatalf("thread %d starved", tid)
		}
	}
}

func TestEarlyRegReleaseRejectedUnderFlush(t *testing.T) {
	cfg := baselineCfg(1, 32)
	cfg.PolicyKind = policy.FLUSH
	cfg.EarlyRegRelease = true
	if _, err := New(cfg, []TraceSource{aluLoop(8)}); err == nil {
		t.Fatal("early release under FLUSH accepted")
	}
}

func TestEarlyRegReleaseDeterministicAndConsistent(t *testing.T) {
	prof, _ := workload.ProfileFor("vpr") // branchy + memory-bound: stresses the gate
	mk := func() Result {
		cfg := baselineCfg(1, 32)
		cfg.EarlyRegRelease = true
		g := workload.MustNewGenerator(prof, 11)
		return run(t, cfg, []TraceSource{g}, 15000)
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.EarlyRegReleases != b.EarlyRegReleases {
		t.Fatal("early-release runs not deterministic")
	}
}

func TestMLPPolicyRuns(t *testing.T) {
	mix, _ := workload.MixByName("Mix 1")
	gens, _ := workload.MixGenerators(mix, 1)
	srcs := make([]TraceSource, 4)
	for i := range gens {
		srcs[i] = gens[i]
	}
	cfg := baselineCfg(4, 32)
	cfg.PolicyKind = policy.MLP
	res := run(t, cfg, srcs, 15000)
	for tid, c := range res.Committed {
		if c == 0 {
			t.Fatalf("MLP policy starved thread %d", tid)
		}
	}
}

func TestCommitHookSeesProgramOrder(t *testing.T) {
	// The committed PC stream of each thread must equal the trace prefix —
	// the end-to-end correctness statement for squash, replay and FLUSH.
	prof, _ := workload.ProfileFor("vpr")
	ref := workload.MustNewGenerator(prof, 21)
	var want []uint64
	var ti isa.TraceInst
	for i := 0; i < 12000; i++ {
		ref.Next(&ti)
		want = append(want, ti.PC)
	}
	for _, pol := range []policy.Kind{policy.DCRA, policy.FLUSH} {
		cfg := baselineCfg(1, 32)
		cfg.PolicyKind = pol
		c, err := New(cfg, []TraceSource{workload.MustNewGenerator(prof, 21)})
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		c.CommitHook = func(tid int, u *uop.UOp) { got = append(got, u.PC) }
		if _, err := c.Run(12000); err != nil {
			t.Fatal(err)
		}
		if len(got) < 12000 {
			t.Fatalf("%v: committed %d", pol, len(got))
		}
		for i := 0; i < 12000; i++ {
			if got[i] != want[i] {
				t.Fatalf("%v: commit %d: pc %#x, trace has %#x", pol, i, got[i], want[i])
			}
		}
	}
}
