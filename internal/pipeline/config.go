// Package pipeline is the cycle-level out-of-order SMT core: an 8-wide
// fetch/issue/commit machine with a shared issue queue, shared physical
// register files, private per-thread LSQs and the two-level reorder buffer
// under test. Each simulated cycle runs writeback → commit → ROB-scheme
// tick → issue → dispatch → fetch, so results produced in a cycle wake
// consumers for the next one. Between simulated cycles the skip-ahead
// engine (scheduler.go) fast-forwards the clock across provably idle
// spans, charging them in closed form; Config.NaiveTicker forces the
// cycle-by-cycle reference engine, and a differential harness holds the
// two to bit-identical results (see docs/PIPELINE.md).
package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/rob"
	"repro/internal/telemetry"
)

// Config assembles the full machine configuration (Table 1 defaults via
// DefaultConfig).
type Config struct {
	Threads int

	FetchWidth    int // instructions fetched per cycle (8)
	FetchThreads  int // threads fetched per cycle (ICOUNT 2.8 → 2)
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	FrontEndDepth int // cycles from fetch to dispatch-eligible
	FrontEndBuf   int // per-thread fetch buffer entries

	IQSize  int
	LSQSize int // per thread
	IntRegs int
	FPRegs  int

	ROB  rob.Config
	Hier cache.HierConfig

	PolicyKind policy.Kind
	DCRAAlpha  float64

	GShareEntries  int
	GShareHistBits uint
	BTBEntries     int
	BTBAssoc       int
	LoadHitEntries int
	ReplayPenalty  int // extra load latency when the load-hit predictor mispredicts

	MissDetectDelay int // cycles from load issue to L2-miss discovery (L1+L2 lookups)

	// BTBMissBubble is the extra fetch-redirect penalty when a
	// predicted-taken branch misses in the BTB: the target is unknown
	// until decode computes it, so fetch resumes BTBMissBubble cycles
	// later. 0 selects the default (2: one decode + one redirect cycle).
	BTBMissBubble int
	// RedirectBubble is the delay before fetch resumes after a
	// squash-side redirect — a resolved misprediction steering fetch back
	// to the correct path, or the FLUSH gate lifting when its load
	// returns. 0 selects the default (1: the redirect itself).
	RedirectBubble int

	// NaiveTicker forces the reference cycle-by-cycle engine: CPU.Run
	// simulates every cycle instead of fast-forwarding across provably
	// idle spans. Results are bit-identical either way (the differential
	// tests enforce it); the naive engine exists as the oracle those
	// tests and the slowcheck harness compare against.
	NaiveTicker bool

	// EarlyRegRelease enables the conservative early register deallocation
	// of [24] (regfile.EarlyReleaser). Incompatible with the FLUSH policy,
	// whose squashes are not covered by the branch-count safety rule.
	EarlyRegRelease bool

	Prewarm       bool  // prewarm caches from the sources' address regions
	TrackExactDoD bool  // also compute the exact dataflow DoD per serviced miss
	MaxCycles     int64 // safety stop; 0 = derive from the budget

	// Telemetry, when non-nil, enables the instrumentation layer of
	// internal/telemetry: per-cycle stall attribution, sampled structural
	// occupancy and second-level grant intervals. Nil (the default) is
	// the zero-overhead path: the per-cycle hook is a nil check and no
	// telemetry state exists.
	Telemetry *telemetry.Config
}

// DefaultConfig returns the paper's Table-1 machine for the given thread
// count and ROB configuration: 8-wide, 64-entry shared IQ, 48-entry
// per-thread LSQ, 224+224 physical registers, DCRA fetch, gShare 2K/10-bit,
// 2048-entry 2-way BTB, 1K-entry load-hit predictor.
func DefaultConfig(threads int, robCfg rob.Config) Config {
	return Config{
		Threads:         threads,
		FetchWidth:      8,
		FetchThreads:    2,
		DispatchWidth:   8,
		IssueWidth:      8,
		CommitWidth:     8,
		FrontEndDepth:   3,
		FrontEndBuf:     24,
		IQSize:          64,
		LSQSize:         48,
		IntRegs:         224,
		FPRegs:          224,
		ROB:             robCfg,
		Hier:            cache.DefaultHierConfig(),
		PolicyKind:      policy.DCRA,
		DCRAAlpha:       2,
		GShareEntries:   2048,
		GShareHistBits:  10,
		BTBEntries:      2048,
		BTBAssoc:        2,
		LoadHitEntries:  1024,
		ReplayPenalty:   3,
		MissDetectDelay: 11,
		BTBMissBubble:   2,
		RedirectBubble:  1,
		Prewarm:         true,
	}
}

// Validate cross-checks the machine configuration.
func (c *Config) Validate() error {
	if c.Threads < 1 {
		return fmt.Errorf("pipeline: need at least one thread")
	}
	if c.Threads != c.ROB.Threads {
		return fmt.Errorf("pipeline: %d threads but ROB configured for %d", c.Threads, c.ROB.Threads)
	}
	for _, w := range []struct {
		name string
		v    int
	}{
		{"fetch width", c.FetchWidth}, {"fetch threads", c.FetchThreads},
		{"dispatch width", c.DispatchWidth}, {"issue width", c.IssueWidth},
		{"commit width", c.CommitWidth}, {"front-end depth", c.FrontEndDepth},
		{"front-end buffer", c.FrontEndBuf}, {"IQ size", c.IQSize},
		{"LSQ size", c.LSQSize}, {"miss detect delay", c.MissDetectDelay},
	} {
		if w.v < 1 {
			return fmt.Errorf("pipeline: %s must be positive", w.name)
		}
	}
	if c.ReplayPenalty < 0 {
		return fmt.Errorf("pipeline: negative replay penalty")
	}
	if c.BTBMissBubble < 0 || c.RedirectBubble < 0 {
		return fmt.Errorf("pipeline: negative fetch-redirect bubble")
	}
	// Zero means "use the default" so hand-built configs predating these
	// knobs keep the exact timing they always had.
	if c.BTBMissBubble == 0 {
		c.BTBMissBubble = 2
	}
	if c.RedirectBubble == 0 {
		c.RedirectBubble = 1
	}
	if c.EarlyRegRelease && c.PolicyKind == policy.FLUSH {
		return fmt.Errorf("pipeline: early register release is unsafe under the FLUSH policy")
	}
	if err := c.ROB.Validate(); err != nil {
		return err
	}
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	return nil
}
