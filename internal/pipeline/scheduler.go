package pipeline

import (
	"math"

	"repro/internal/telemetry"
)

// This file is the skip-ahead engine: after each fully simulated cycle,
// advance asks every substrate for its next interesting cycle and, when
// the whole machine is provably idle until then, jumps the clock there
// in one step. "Provably idle" means the naive ticker would execute the
// intervening cycles as exact no-ops — nothing dispatches, issues,
// commits, fetches or fires — so their only effects are the per-cycle
// bookkeeping each substrate exposes in closed form (rob.FastForward,
// iq.FastForward, policy.CycleSkipper, telemetry.RecordIdleSpan) plus
// the pipeline's own round-robin offsets. The slowcheck differential
// harness and TestSkipAheadMatchesNaive hold the two engines to
// bit-identical results.

// advance moves c.now past the cycle stepCycle just simulated: to the
// next cycle when the machine is in motion, or straight to the next
// interesting cycle when it is provably idle, charging the skipped span
// in closed form. It returns true when the deadlock watchdog fires —
// on exactly the cycle the naive ticker would have reached it.
//
//tlrob:allocfree
func (c *CPU) advance(maxCycles int64) bool {
	next := c.now + 1
	if c.skipAhead {
		if t := c.nextInterestingCycle(); t > next {
			if t > maxCycles {
				t = maxCycles
			}
			if t > next {
				c.skipTo(next, t)
				next = t
			}
		}
	}
	c.now = next
	return c.now >= maxCycles
}

// nextInterestingCycle returns the earliest cycle after c.now at which
// simulating could have any observable effect. Returning c.now+1 means
// the very next cycle must be simulated; any later value T asserts the
// cycles (c.now, T) are no-ops for every substrate:
//
//   - events: completions and miss-detects sit in the heap; the
//     earliest fire cycle bounds writeback activity.
//   - commit: an executed ring head commits next cycle.
//   - issue: a ready IQ entry either issues or re-counts an FU/LSQ
//     conflict every cycle, so any ready entry forces simulation.
//   - rob.TwoLevel: an undecided miss record's evaluation comes due at
//     NextDue() (early-but-never-late, so waking at it is safe); a
//     pending grant retry with a free partition cannot outlive a Tick,
//     but is re-checked defensively.
//   - dispatch: a fetch-queue head that clears the front-end pipeline
//     at readyAt becomes dispatch-eligible then. A head that is already
//     eligible but did not dispatch was resource-blocked, and every
//     resource it can wait on is replenished only by events or commits
//     — both already wake points.
//   - fetch: a thread the policy admitted this cycle (membership in
//     c.order is a pure function of snapshots, which are frozen across
//     an idle span) wakes when its fetch stall expires; if it could
//     fetch right now, the next cycle must be simulated.
//
//tlrob:allocfree
func (c *CPU) nextInterestingCycle() int64 {
	next := c.now + 1
	st := c.telState
	for t := range c.threads {
		if st.Dispatched[t] != 0 {
			return next // window state is in motion
		}
	}
	for t := range c.threads {
		if h := c.rob.Ring(t).Head(); h != nil && h.Executed {
			return next // a commit is pending
		}
	}
	if c.iq.HasReady() {
		return next // selection would issue or re-count a conflict
	}
	if c.rob.PendingRetry() && c.rob.Owner() < 0 {
		return next // a grant retry could succeed (defensive)
	}

	horizon := int64(math.MaxInt64)
	if c.events.len() > 0 {
		if at := c.events.peekAt(); at < horizon {
			horizon = at
		}
	}
	if c.rob.Undecided() > 0 {
		if due := c.rob.NextDue(); due < horizon {
			horizon = due
		}
	}
	if horizon <= next {
		// An event fires or a miss evaluation comes due on the very next
		// cycle, so no skip is possible — the remaining checks could only
		// lower the horizon further or return next themselves. Bailing out
		// here keeps the snapshot rebuild and gate dry-runs off the dense
		// stretches (reactive rechecks every few cycles, back-to-back
		// completions) where they could not pay off.
		return next
	}
	snapsFresh := false
	for t := range c.threads {
		th := &c.threads[t]
		if th.fq.len() > 0 {
			fe := th.fq.peek()
			if fe.readyAt <= c.now {
				// An eligible head dispatches next cycle unless a resource
				// blocks it. The verdict must be dry-run against the
				// snapshots the next cycle's dispatch would see — rebuilt
				// from this cycle's post-issue, post-fetch state — not the
				// mid-cycle ones this cycle's dispatch judged: a
				// share-capped policy (DCRA) can admit next cycle a head it
				// refused this cycle purely because issue drained the
				// thread's queue occupancy after the snapshot was taken.
				// Rebuilding c.snaps here is safe (it is scratch that every
				// cycle rebuilds before its consumers run), and skipTo
				// relies on it staying fresh for its cause recomputation.
				if !snapsFresh {
					c.buildSnapshots()
					snapsFresh = true
				}
				// If the head stays blocked, it stays blocked for the whole
				// span: every resource the gate checks — ROB slots (commit),
				// IQ slots (issue), physical registers (writeback), LSQ
				// slots (commit), second-level capacity (grant) — is
				// replenished only at wake points already accounted for.
				if c.dispatchGate(t, th, fe) == telemetry.CauseNone {
					return next
				}
				continue
			}
			// A head that clears the front-end pipeline at readyAt becomes
			// dispatch-eligible then.
			if fe.readyAt < horizon {
				horizon = fe.readyAt
			}
		}
	}
	// Fetch wake-ups: only threads the policy admitted this cycle can
	// fetch during the span (snapshots are frozen, so admission is too).
	for _, tid := range c.order {
		th := &c.threads[tid]
		if th.finished || th.flushWait || th.fq.len() >= c.cfg.FrontEndBuf {
			continue // unblocked only by events or dispatch drain
		}
		if th.fetchStalledUntil <= c.now {
			return next // could fetch immediately
		}
		if th.fetchStalledUntil < horizon {
			horizon = th.fetchStalledUntil
		}
	}
	if horizon < next {
		return next
	}
	return horizon
}

// skipTo charges the provably idle cycles [from, to) in closed form,
// advancing every piece of per-cycle state the naive ticker would have
// touched: the ROB manager's rotation/ownership accounting, IQ occupancy
// statistics, the policy's fetch rotor, the dispatch and commit
// round-robin offsets, and — when telemetry is on — the stall,
// occupancy and sample accounting, cause-by-cause.
//
//tlrob:allocfree
func (c *CPU) skipTo(from, to int64) {
	k := to - from
	n := int64(c.cfg.Threads)
	c.rob.FastForward(to-1, k)
	c.iq.FastForward(k)
	if c.polSkip != nil {
		c.polSkip.SkipCycles(k, c.cfg.Threads)
	}
	c.dispatchRR = int((int64(c.dispatchRR) + k) % n)
	c.commitRR = int((int64(c.commitRR) + k) % n)
	if c.tel == nil {
		return
	}
	st := c.telState
	for t := range c.threads {
		th := &c.threads[t]
		st.ROBLen[t] = int32(c.rob.Ring(t).Len())
		switch {
		case th.fq.len() > 0 && th.fq.peek().readyAt <= c.now:
			// The head is dispatch-eligible but resource-blocked (or
			// nextInterestingCycle would have refused the skip). Re-run the
			// gate against the snapshots nextInterestingCycle just rebuilt:
			// the naive ticker charges the span to next cycle's verdict,
			// which can name a different resource than this cycle's —
			// dispatch judged stale, pre-issue snapshots.
			st.Causes[t] = c.dispatchGate(t, th, th.fq.peek())
		case th.finished:
			st.Causes[t] = telemetry.CauseFinished
		default:
			st.Causes[t] = c.starvedCause(th)
		}
	}
	st.IQLen = int32(c.iq.Len())
	st.IntRegs = int32(c.rf.InFlight(false))
	st.FPRegs = int32(c.rf.InFlight(true))
	st.Owner = int8(c.rob.Owner())
	c.tel.RecordIdleSpan(from, to, st)
}
