package pipeline

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	for _, at := range []int64{50, 10, 30, 20, 40} {
		h.push(event{at: at, seq: uint64(at)})
	}
	prev := int64(-1)
	for h.len() > 0 {
		e := h.pop()
		if e.at < prev {
			t.Fatalf("heap order violated: %d after %d", e.at, prev)
		}
		prev = e.at
	}
}

func TestEventHeapPeek(t *testing.T) {
	var h eventHeap
	h.push(event{at: 7})
	h.push(event{at: 3})
	if h.peekAt() != 3 {
		t.Fatalf("peek = %d", h.peekAt())
	}
	if h.pop().at != 3 || h.peekAt() != 7 {
		t.Fatal("pop/peek inconsistent")
	}
}

func TestEventHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h eventHeap
	var want []int64
	for i := 0; i < 2000; i++ {
		at := int64(rng.Intn(10000))
		h.push(event{at: at})
		want = append(want, at)
		// Occasionally drain a few to interleave push and pop.
		if i%7 == 0 && h.len() > 3 {
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			for k := 0; k < 3; k++ {
				if got := h.pop().at; got != want[0] {
					t.Fatalf("pop %d want %d", got, want[0])
				}
				want = want[1:]
			}
		}
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	for _, w := range want {
		if got := h.pop().at; got != w {
			t.Fatalf("drain: pop %d want %d", got, w)
		}
	}
	if h.len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestFeQueue(t *testing.T) {
	var q feQueue
	if q.len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.push(feEntry{readyAt: 1})
	q.push(feEntry{readyAt: 2})
	if q.len() != 2 || q.peek().readyAt != 1 {
		t.Fatal("peek/len wrong")
	}
	if q.pop().readyAt != 1 || q.pop().readyAt != 2 {
		t.Fatal("FIFO order broken")
	}
	if q.len() != 0 {
		t.Fatal("not empty after pops")
	}
	// Push after full drain reuses storage from the start.
	q.push(feEntry{readyAt: 3})
	if q.peek().readyAt != 3 {
		t.Fatal("reuse after drain broken")
	}
	q.clear()
	if q.len() != 0 {
		t.Fatal("clear failed")
	}
}
