// Package cache models the paper's memory hierarchy (Table 1): split L1
// instruction and data caches, a unified L2, a chunked-latency DRAM model,
// and an MSHR file at the L2 that merges and overlaps outstanding misses —
// the substrate for the Memory-Level Parallelism the two-level ROB exploits.
package cache

import "fmt"

// Config describes one set-associative cache.
type Config struct {
	Name     string
	SizeB    int // total bytes
	Assoc    int
	LineB    int // line size in bytes
	HitCycle int // hit latency
}

// Validate checks the geometry.
func (c *Config) Validate() error {
	if c.SizeB <= 0 || c.Assoc <= 0 || c.LineB <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.SizeB%(c.Assoc*c.LineB) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by assoc*line", c.Name, c.SizeB)
	}
	sets := c.SizeB / (c.Assoc * c.LineB)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.LineB&(c.LineB-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineB)
	}
	return nil
}

// Stats counts accesses per cache.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. Tags are
// stored per way in flat arrays; there is no data storage (timing model
// only). The zero value is unusable; use New.
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	lineBits uint
	tags     []uint64 // sets*assoc entries
	valid    []bool
	lru      []uint64 // last-touch stamp per way; smallest = LRU victim
	stamp    uint64
	stats    Stats
}

// New builds a cache from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeB / (cfg.Assoc * cfg.LineB)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*cfg.Assoc),
		valid:   make([]bool, sets*cfg.Assoc),
		lru:     make([]uint64, sets*cfg.Assoc),
	}
	for b := cfg.LineB; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// MustNew is New for static configs; panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Line returns the line-aligned address.
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineBits }

func (c *Cache) setOf(line uint64) int { return int(line & c.setMask) }

// Access performs a lookup, fills on miss (LRU victim), and reports hit.
func (c *Cache) Access(addr uint64) bool {
	line := c.Line(addr)
	set := c.setOf(line)
	base := set * c.cfg.Assoc
	c.stats.Accesses++
	hitWay := -1
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touch(base, hitWay)
		return true
	}
	c.stats.Misses++
	c.fill(base, line)
	return false
}

// Probe reports whether addr currently hits, without updating state or
// statistics. Used by predictors and tests.
func (c *Cache) Probe(addr uint64) bool {
	line := c.Line(addr)
	base := c.setOf(line) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Insert fills a line without counting an access (e.g. prefetch or fill
// from a lower level initiated elsewhere).
func (c *Cache) Insert(addr uint64) {
	line := c.Line(addr)
	c.fill(c.setOf(line)*c.cfg.Assoc, line)
}

func (c *Cache) touch(base, way int) {
	c.stamp++
	c.lru[base+way] = c.stamp
}

func (c *Cache) fill(base int, line uint64) {
	victim := 0
	best := ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] < best {
			best = c.lru[base+w]
			victim = w
		}
	}
	c.tags[base+victim] = line
	c.valid[base+victim] = true
	c.touch(base, victim)
}

// Flush invalidates the whole cache (tests only).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
}
