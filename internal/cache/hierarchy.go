package cache

import "fmt"

// HierConfig describes the full Table-1 memory hierarchy.
type HierConfig struct {
	L1I Config
	L1D Config
	L2  Config

	MemFirstChunk int // cycles to the first (critical) chunk
	MemInterChunk int // cycles between subsequent chunks
	BusBytes      int // bus width in bytes (chunk size)

	MSHRs int // outstanding L2 misses supported (MLP limit)

	// BusContention serializes line transfers on the memory data bus.
	// The paper's simulator uses the bus parameters only for latency
	// arithmetic (500 + chunk*2), so this defaults to off; the ablation
	// benches measure its effect.
	BusContention bool
}

// DefaultHierConfig returns the paper's Table-1 hierarchy: 64 KB 2-way
// 64 B-line L1I (1 cycle); 32 KB 4-way 32 B-line L1D (1 cycle); 2 MB 8-way
// 128 B-line unified L2 (10 cycles); 64-bit bus, 500-cycle first chunk,
// 2-cycle interchunk DRAM. The MSHR count is not given in the paper; 16
// supports ample miss overlap and is swept in the ablation benches.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:           Config{Name: "L1I", SizeB: 64 * 1024, Assoc: 2, LineB: 64, HitCycle: 1},
		L1D:           Config{Name: "L1D", SizeB: 32 * 1024, Assoc: 4, LineB: 32, HitCycle: 1},
		L2:            Config{Name: "L2", SizeB: 2 * 1024 * 1024, Assoc: 8, LineB: 128, HitCycle: 10},
		MemFirstChunk: 500,
		MemInterChunk: 2,
		BusBytes:      8,
		MSHRs:         64,
	}
}

// Validate checks the hierarchy configuration.
func (c *HierConfig) Validate() error {
	for _, cc := range []*Config{&c.L1I, &c.L1D, &c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.MemFirstChunk <= 0 || c.MemInterChunk < 0 || c.BusBytes <= 0 {
		return fmt.Errorf("cache: bad memory timing")
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("cache: need at least one MSHR")
	}
	return nil
}

// mshrEntry tracks one outstanding L2 line fill.
type mshrEntry struct {
	line   uint64
	fillAt int64 // cycle the full line is present in L2
	dataAt int64 // cycle the critical chunk is available to consumers
}

// HierStats aggregates hierarchy-level counters beyond per-cache stats.
type HierStats struct {
	L2MissLoads   uint64 // demand loads that missed in L2
	MSHRMerges    uint64 // misses merged into an outstanding fill
	MSHRStalls    uint64 // misses delayed waiting for a free MSHR
	BusQueued     uint64 // line fills delayed behind the memory data bus
	StoreAccesses uint64
}

// Hierarchy is the timing model for the full memory system. It is not
// concurrency-safe; the simulator drives it from a single goroutine.
type Hierarchy struct {
	cfg       HierConfig
	L1I       *Cache
	L1D       *Cache
	L2        *Cache
	mshrs     []mshrEntry
	busFreeAt int64 // memory data bus: one line transfer at a time
	stats     HierStats
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	h.L1I = MustNew(cfg.L1I)
	h.L1D = MustNew(cfg.L1D)
	h.L2 = MustNew(cfg.L2)
	h.mshrs = make([]mshrEntry, 0, cfg.MSHRs)
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// Stats returns hierarchy-level counters.
func (h *Hierarchy) Stats() HierStats { return h.stats }

// AccessResult reports the outcome of a timed access.
type AccessResult struct {
	ReadyAt   int64 // cycle at which the data is available
	L1Miss    bool
	L2Miss    bool
	MSHRStall bool // delayed because all MSHRs were busy
}

// transferCycles is how long one line occupies the memory data bus
// (Table 1: 64-bit bus, 2-cycle interchunk — 32 cycles for a 128 B line).
func (h *Hierarchy) transferCycles() int64 {
	chunks := h.cfg.L2.LineB / h.cfg.BusBytes
	if chunks < 1 {
		chunks = 1
	}
	return int64(chunks) * int64(h.cfg.MemInterChunk)
}

// l2Miss books an L2 line fill through the MSHR file and returns when the
// critical chunk is available, whether it merged, and whether it stalled.
func (h *Hierarchy) l2Miss(line uint64, now int64) (dataAt int64, merged, stalled bool) {
	// Merge with an outstanding fill of the same line.
	for i := range h.mshrs {
		e := &h.mshrs[i]
		if e.line == line && e.fillAt > now {
			h.stats.MSHRMerges++
			return e.dataAt, true, false
		}
	}
	// Reclaim completed entries lazily.
	live := h.mshrs[:0]
	for _, e := range h.mshrs {
		if e.fillAt > now {
			live = append(live, e)
		}
	}
	h.mshrs = live

	start := now
	if len(h.mshrs) >= h.cfg.MSHRs {
		// All miss-handling registers busy: the request waits for the
		// earliest fill to retire its entry.
		earliest := h.mshrs[0].fillAt
		for _, e := range h.mshrs[1:] {
			if e.fillAt < earliest {
				earliest = e.fillAt
			}
		}
		start = earliest
		stalled = true
		h.stats.MSHRStalls++
		// Evict the entry that completes at 'earliest' to make room.
		for i := range h.mshrs {
			if h.mshrs[i].fillAt == earliest {
				h.mshrs[i] = h.mshrs[len(h.mshrs)-1]
				h.mshrs = h.mshrs[:len(h.mshrs)-1]
				break
			}
		}
	}
	// DRAM access latency overlaps across banks, but the data bus
	// serializes line transfers: across-the-board large windows saturate
	// it and queue behind each other — the shared-resource pressure the
	// paper attributes to blindly enlarged ROBs.
	transfer := h.transferCycles()
	// Unloaded, the critical chunk arrives MemFirstChunk cycles after the
	// request and the transfer occupies the bus from just before it.
	slot := start + int64(h.cfg.MemFirstChunk) - int64(h.cfg.MemInterChunk)
	if h.cfg.BusContention && slot < h.busFreeAt {
		slot = h.busFreeAt
		h.stats.BusQueued++
	}
	h.busFreeAt = slot + transfer
	dataAt = slot + int64(h.cfg.MemInterChunk) // critical chunk first
	h.mshrs = append(h.mshrs, mshrEntry{line: line, fillAt: slot + transfer, dataAt: dataAt})
	return dataAt, false, stalled
}

// Load performs a timed demand-load access at cycle now.
func (h *Hierarchy) Load(addr uint64, now int64) AccessResult {
	res := AccessResult{}
	if h.L1D.Access(addr) {
		res.ReadyAt = now + int64(h.cfg.L1D.HitCycle)
		return res
	}
	res.L1Miss = true
	afterL1 := now + int64(h.cfg.L1D.HitCycle)
	if h.L2.Access(addr) {
		res.ReadyAt = afterL1 + int64(h.cfg.L2.HitCycle)
		return res
	}
	res.L2Miss = true
	h.stats.L2MissLoads++
	missAt := afterL1 + int64(h.cfg.L2.HitCycle)
	dataAt, _, stalled := h.l2Miss(h.L2.Line(addr), missAt)
	res.MSHRStall = stalled
	res.ReadyAt = dataAt
	return res
}

// StoreCommit performs the cache updates for a store retiring from the
// store buffer. Stores are off the critical path (write-allocate through a
// write buffer), so no latency is returned; misses do not hold MSHRs.
func (h *Hierarchy) StoreCommit(addr uint64) {
	h.stats.StoreAccesses++
	if h.L1D.Access(addr) {
		return
	}
	h.L2.Access(addr)
}

// Fetch performs a timed instruction-fetch access at cycle now.
func (h *Hierarchy) Fetch(pc uint64, now int64) AccessResult {
	res := AccessResult{}
	if h.L1I.Access(pc) {
		res.ReadyAt = now + int64(h.cfg.L1I.HitCycle)
		return res
	}
	res.L1Miss = true
	afterL1 := now + int64(h.cfg.L1I.HitCycle)
	if h.L2.Access(pc) {
		res.ReadyAt = afterL1 + int64(h.cfg.L2.HitCycle)
		return res
	}
	res.L2Miss = true
	missAt := afterL1 + int64(h.cfg.L2.HitCycle)
	dataAt, _, stalled := h.l2Miss(h.L2.Line(pc), missAt)
	res.MSHRStall = stalled
	res.ReadyAt = dataAt
	return res
}

// Prewarm installs a region's lines into the hierarchy without touching
// access statistics, so short simulations measure steady-state behaviour.
// Data regions fill the L2 (bounded by its capacity — a region larger than
// the L2 keeps missing, which is the point) and the leading lines fill the
// L1D; code regions fill the L1I and L2.
func (h *Hierarchy) Prewarm(base, size uint64, code bool) {
	if size == 0 {
		return
	}
	l2Cap := uint64(h.cfg.L2.SizeB)
	n := size
	if n > l2Cap {
		n = l2Cap
	}
	for off := uint64(0); off < n; off += uint64(h.cfg.L2.LineB) {
		h.L2.Insert(base + off)
	}
	l1 := h.L1D
	if code {
		l1 = h.L1I
	}
	n1 := size
	if n1 > uint64(l1.Config().SizeB) {
		n1 = uint64(l1.Config().SizeB)
	}
	for off := uint64(0); off < n1; off += uint64(l1.Config().LineB) {
		l1.Insert(base + off)
	}
}

// OutstandingMisses reports the number of line fills in flight at cycle now.
func (h *Hierarchy) OutstandingMisses(now int64) int {
	n := 0
	for _, e := range h.mshrs {
		if e.fillAt > now {
			n++
		}
	}
	return n
}
