package cache

import (
	"testing"
	"testing/quick"
)

func testCache(t *testing.T, sizeB, assoc, lineB int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeB: sizeB, Assoc: assoc, LineB: lineB, HitCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeB: 0, Assoc: 1, LineB: 64},
		{SizeB: 1024, Assoc: 0, LineB: 64},
		{SizeB: 1000, Assoc: 2, LineB: 64},       // not divisible
		{SizeB: 3 * 64 * 2, Assoc: 2, LineB: 64}, // 3 sets: not power of two
		{SizeB: 1024, Assoc: 2, LineB: 48},       // line not power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := Config{Name: "l1", SizeB: 32 * 1024, Assoc: 4, LineB: 32, HitCycle: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := testCache(t, 1024, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1008) {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 64B lines: addresses 0, 128, 256 share set 0.
	c := testCache(t, 256, 2, 64)
	c.Access(0)
	c.Access(128)
	c.Access(0)   // 0 now MRU, 128 LRU
	c.Access(256) // evicts 128
	if !c.Probe(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(128) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(256) {
		t.Fatal("filled line absent")
	}
}

func TestLRUFillsDoNotDegenerate(t *testing.T) {
	// Regression for the broken-aging bug: repeated fills into a full set
	// must rotate through ways, not evict the same way forever.
	c := testCache(t, 8*64, 8, 64) // one set, 8 ways
	for i := uint64(0); i < 8; i++ {
		c.Access(i * 64)
	}
	// Insert 3 more lines; the 3 oldest (0,1,2) should be gone, 3..7 kept.
	for i := uint64(8); i < 11; i++ {
		c.Access(i * 64)
	}
	for i := uint64(0); i < 3; i++ {
		if c.Probe(i * 64) {
			t.Fatalf("line %d should have been evicted", i)
		}
	}
	for i := uint64(3); i < 11; i++ {
		if !c.Probe(i * 64) {
			t.Fatalf("line %d should be resident", i)
		}
	}
}

func TestProbeDoesNotTouch(t *testing.T) {
	c := testCache(t, 128, 2, 64) // one set, 2 ways
	c.Access(0)
	c.Access(64)
	c.Probe(0) // must NOT refresh line 0
	c.Access(128)
	// LRU order by accesses: 0 older than 64, so 0 evicted despite probe.
	if c.Probe(0) {
		t.Fatal("probe refreshed LRU state")
	}
	if before := c.Stats().Accesses; before != 3 {
		t.Fatalf("probe counted as access: %d", before)
	}
}

func TestInsertNoStats(t *testing.T) {
	c := testCache(t, 1024, 2, 64)
	c.Insert(0x40)
	if st := c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("Insert changed stats: %+v", st)
	}
	if !c.Access(0x40) {
		t.Fatal("inserted line missed")
	}
}

func TestFlush(t *testing.T) {
	c := testCache(t, 1024, 2, 64)
	c.Access(0x40)
	c.Flush()
	if c.Probe(0x40) {
		t.Fatal("line survived flush")
	}
}

func TestWorkingSetFitsNoSteadyMisses(t *testing.T) {
	c := testCache(t, 4096, 4, 64)
	for round := 0; round < 3; round++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
		}
	}
	st := c.Stats()
	if st.Misses != 64 { // cold misses only
		t.Fatalf("resident working set missed %d times, want 64 cold", st.Misses)
	}
}

func TestWorkingSetExceedsAlwaysMisses(t *testing.T) {
	c := testCache(t, 1024, 2, 64)
	// Stream 4x the capacity twice: every access must miss (LRU + streaming).
	misses0 := c.Stats().Misses
	for round := 0; round < 2; round++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
		}
	}
	st := c.Stats()
	if got := st.Misses - misses0; got != 128 {
		t.Fatalf("streaming over capacity: %d misses, want 128", got)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("idle miss rate not 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("miss rate %v", s.MissRate())
	}
}

// Property: after accessing an address, it always probes resident.
func TestQuickAccessThenResident(t *testing.T) {
	c := testCache(t, 32*1024, 4, 32)
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Probe(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of distinct resident lines never exceeds capacity.
func TestQuickCapacityBound(t *testing.T) {
	const lines = 16
	c := testCache(t, lines*64, 4, 64)
	seen := map[uint64]bool{}
	f := func(addr uint64) bool {
		c.Access(addr)
		seen[addr>>6] = true
		resident := 0
		for line := range seen {
			if c.Probe(line << 6) {
				resident++
			}
		}
		return resident <= lines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
