package cache

import "testing"

func testHier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDefaultHierConfigValid(t *testing.T) {
	cfg := DefaultHierConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.MemFirstChunk != 500 || cfg.MemInterChunk != 2 || cfg.BusBytes != 8 {
		t.Fatalf("Table-1 memory timing wrong: %+v", cfg)
	}
}

func TestHierConfigValidation(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MSHRs = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
	cfg = DefaultHierConfig()
	cfg.MemFirstChunk = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
}

func TestLoadLatencies(t *testing.T) {
	h := testHier(t)
	addr := uint64(0x1234560)

	// Cold: miss everywhere -> critical chunk after L1+L2 lookups + 500.
	res := h.Load(addr, 0)
	if !res.L1Miss || !res.L2Miss {
		t.Fatalf("cold access: %+v", res)
	}
	want := int64(1 + 10 + 500)
	if res.ReadyAt != want {
		t.Fatalf("cold load ready at %d, want %d", res.ReadyAt, want)
	}

	// Now resident in L1: hit in 1 cycle.
	res = h.Load(addr, 1000)
	if res.L1Miss || res.ReadyAt != 1001 {
		t.Fatalf("warm load: %+v", res)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := testHier(t)
	base := uint64(0x40000)
	// Touch enough distinct L1 lines mapping over the L1 to evict base
	// while both stay in L2 (L2 line covers 4 L1 lines).
	h.Load(base, 0)
	// Five more lines into base's L1 set (stride = 32B line * 256 sets)
	// evict it from the 4-way L1D while its L2 line stays resident.
	for i := uint64(1); i <= 5; i++ {
		h.Load(base+i*32*256, 0)
	}
	res := h.Load(base, 100000)
	if res.L2Miss {
		t.Fatal("expected L2 hit after L1 eviction")
	}
	if res.L1Miss && res.ReadyAt != 100000+11 {
		t.Fatalf("L2 hit latency = %d", res.ReadyAt-100000)
	}
}

func TestMSHRMerge(t *testing.T) {
	h := testHier(t)
	a := h.Load(0x100000, 0)
	b := h.Load(0x100008, 3) // same 128B L2 line, later cycle
	if !a.L2Miss {
		t.Fatal("first access should miss")
	}
	if b.L2Miss {
		// second access hits L2 tags (fill is immediate in the tag model),
		// so it must NOT allocate a new MSHR entry
		t.Fatal("merged access counted as L2 miss")
	}
	if h.Stats().MSHRMerges != 0 && h.Stats().L2MissLoads != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
}

func TestMSHRLimitDelaysMisses(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MSHRs = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := h.Load(0x1_000000, 0)
	r2 := h.Load(0x2_000000, 0)
	r3 := h.Load(0x3_000000, 0) // third concurrent miss must stall
	if r1.MSHRStall || r2.MSHRStall {
		t.Fatal("first two misses stalled")
	}
	if !r3.MSHRStall {
		t.Fatal("third miss did not stall on full MSHRs")
	}
	if r3.ReadyAt <= r2.ReadyAt {
		t.Fatalf("stalled miss not delayed: %d <= %d", r3.ReadyAt, r2.ReadyAt)
	}
	if h.Stats().MSHRStalls != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
}

func TestOutstandingMisses(t *testing.T) {
	h := testHier(t)
	h.Load(0x1_000000, 0)
	h.Load(0x2_000000, 0)
	if n := h.OutstandingMisses(10); n != 2 {
		t.Fatalf("outstanding = %d", n)
	}
	if n := h.OutstandingMisses(10_000); n != 0 {
		t.Fatalf("outstanding after completion = %d", n)
	}
}

func TestBusContentionSerializes(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.BusContention = true
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := h.Load(0x1_000000, 0)
	r2 := h.Load(0x2_000000, 0)
	transfer := int64(cfg.L2.LineB/cfg.BusBytes) * int64(cfg.MemInterChunk)
	if r2.ReadyAt < r1.ReadyAt+transfer {
		t.Fatalf("bus did not serialize: %d then %d", r1.ReadyAt, r2.ReadyAt)
	}
	if h.Stats().BusQueued != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
}

func TestBusContentionOffOverlaps(t *testing.T) {
	h := testHier(t)
	r1 := h.Load(0x1_000000, 0)
	r2 := h.Load(0x2_000000, 0)
	if r2.ReadyAt != r1.ReadyAt {
		t.Fatalf("misses did not overlap: %d vs %d", r1.ReadyAt, r2.ReadyAt)
	}
}

func TestStoreCommitFills(t *testing.T) {
	h := testHier(t)
	h.StoreCommit(0x9000)
	if !h.L1D.Probe(0x9000) {
		t.Fatal("store did not allocate in L1D")
	}
	if h.Stats().StoreAccesses != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
}

func TestFetchPath(t *testing.T) {
	h := testHier(t)
	res := h.Fetch(0x400000, 0)
	if !res.L1Miss {
		t.Fatal("cold fetch hit")
	}
	res = h.Fetch(0x400000, 100)
	if res.L1Miss || res.ReadyAt != 101 {
		t.Fatalf("warm fetch: %+v", res)
	}
}

func TestPrewarm(t *testing.T) {
	h := testHier(t)
	h.Prewarm(0x10000, 64*1024, false)
	res := h.Load(0x10000, 0)
	if res.L1Miss || res.L2Miss {
		t.Fatal("prewarmed data missed")
	}
	// The leading 32 KB went to the L1D too; deeper lines only to the L2.
	deep := h.Load(0x10000+48*1024, 0)
	if !deep.L1Miss || deep.L2Miss {
		t.Fatalf("deep prewarmed line: %+v", deep)
	}
	h.Prewarm(0x900000, 4096, true)
	f := h.Fetch(0x900000, 0)
	if f.L1Miss {
		t.Fatal("prewarmed code missed L1I")
	}
	// Prewarm must not disturb stats: only the one demand access that
	// missed the L1D above reached the L2.
	if h.L2.Stats().Accesses != 1 {
		t.Fatalf("prewarm counted accesses: %+v", h.L2.Stats())
	}
}

func TestPrewarmCapsAtCapacity(t *testing.T) {
	h := testHier(t)
	// A 64MB region must not loop 512k times or evict itself completely:
	// only the leading L2-capacity worth is inserted.
	h.Prewarm(0x1_0000000, 64<<20, false)
	if !h.L2.Probe(0x1_0000000) {
		t.Fatal("leading line of big region not resident")
	}
}
