// Package server is the simulation-as-a-service job engine behind
// cmd/simd. It wraps experiments.Runner with a bounded job queue
// (backpressure when full), a worker pool, request coalescing
// (concurrent identical submissions share one run), a content-addressed
// result cache (internal/store), retry with exponential backoff for
// transient failures, per-job deadlines with cancellation, and a
// graceful drain for shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Submission errors, mapped to HTTP statuses by the handlers.
var (
	ErrBadSpec   = errors.New("invalid run spec")
	ErrQueueFull = errors.New("queue full")
	ErrDraining  = errors.New("server draining")
)

// TransientError marks an error as retryable by the worker loop.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err should be retried.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// RunSpec is the wire form of a simulation request.
type RunSpec struct {
	// Scheme names the machine configuration: "baseline32",
	// "baseline128", "rrob", "relaxed-rrob", "cdr-rrob", "prob" or
	// "shared128".
	Scheme string `json:"scheme"`
	// Threshold overrides the scheme's default DoD threshold
	// (rrob: 16, relaxed/cdr: 15, prob: 5).
	Threshold int `json:"threshold,omitempty"`
	// Mixes selects Table-2 mixes by name; empty means all eleven.
	Mixes []string `json:"mixes,omitempty"`
	// Budget is the per-thread instruction budget (default 200k).
	Budget uint64 `json:"budget,omitempty"`
	// Seed is the workload seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// TimeoutSec caps the job's run time (default Config.JobTimeout).
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// keySpec is the content-address material: the fully resolved
// configuration, so "rrob" and "rrob"+threshold 16 address the same
// result.
type keySpec struct {
	Options tlrob.Options `json:"options"`
	Mixes   []string      `json:"mixes"`
	Budget  uint64        `json:"budget"`
	Seed    uint64        `json:"seed"`
}

// resolveScheme maps a spec's scheme name to an experiments SchemeSpec.
// An empty name means the baseline machine; everything else is the
// shared experiments.SchemeByName table.
func resolveScheme(name string, threshold int) (experiments.SchemeSpec, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return experiments.Baseline32(), nil
	}
	return experiments.SchemeByName(name, threshold)
}

// normalize validates the spec, fills defaults and resolves the scheme
// and mix list.
func (sp RunSpec) normalize(cfg Config) (RunSpec, experiments.SchemeSpec, []workload.Mix, error) {
	scheme, err := resolveScheme(sp.Scheme, sp.Threshold)
	if err != nil {
		return sp, scheme, nil, err
	}
	if sp.Budget == 0 {
		sp.Budget = 200_000
	}
	if sp.Budget > cfg.MaxBudget {
		return sp, scheme, nil, fmt.Errorf("budget %d exceeds the limit %d", sp.Budget, cfg.MaxBudget)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	var mixes []workload.Mix
	if len(sp.Mixes) == 0 {
		mixes = workload.Mixes
	} else {
		for _, name := range sp.Mixes {
			m, ok := workload.MixByName(name)
			if !ok {
				return sp, scheme, nil, fmt.Errorf("unknown mix %q", name)
			}
			mixes = append(mixes, m)
		}
	}
	return sp, scheme, mixes, nil
}

// Config sizes the server.
type Config struct {
	Store        *store.Store
	QueueSize    int           // bounded queue; full submissions get ErrQueueFull (default 64)
	Workers      int           // concurrent jobs (default 2)
	SimWorkers   int           // goroutines per job's sweep (0 = all cores)
	JobTimeout   time.Duration // per-job deadline (default 10m)
	Retries      int           // retry budget for transient failures (default 2)
	RetryBackoff time.Duration // initial backoff, doubled per retry (default 250ms)
	MaxBudget    uint64        // largest accepted per-thread budget (default 5M)
	Logf         func(format string, args ...any)

	// PeerFill, when set (cluster mode), is consulted after a local
	// cache miss and before enqueueing a simulation: if a peer node
	// already holds the result for key, it is adopted into the local
	// store and served without re-simulating.
	PeerFill func(ctx context.Context, key string) ([]byte, bool)

	// Replicate, when set (cluster mode), is called asynchronously after
	// every successful simulation with the result bytes, so the other
	// ring owners of key hold a copy before this node can die with the
	// only one. Returns how many pushes landed and how many failed.
	Replicate func(ctx context.Context, key string, data []byte) (pushed, failed int)
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 5_000_000
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Stats is the server's observable state, rendered by /metrics.
type Stats struct {
	QueueDepth  int
	Inflight    int64
	Submitted   uint64
	Coalesced   uint64 // submissions that attached to an in-flight identical job
	Rejected    uint64 // queue-full rejections
	Completed   uint64
	Failed      uint64
	Canceled    uint64
	Retries     uint64
	Simulations uint64 // sweeps actually started (singleflight collapses these)
	Cycles      uint64 // simulated cycles, summed over completed jobs
	SimSeconds  float64
	Draining    bool
	Cache       store.Stats

	// Cluster-mode counters: peer cache fills attempted on local
	// misses (hit = adopted from a peer without re-simulating) and
	// cache entries this node served to peers via GET /v1/cache/{key}.
	PeerFillHits   uint64
	PeerFillMisses uint64
	PeerServed     uint64
	// PeerStored counts entries written into the local store by peers
	// or the coordinator via PUT /v1/cache/{key} (replication, handoff).
	PeerStored uint64
	// ReplicaPushed/ReplicaFailed count this node's own replica writes
	// to other ring owners after completed simulations.
	ReplicaPushed uint64
	ReplicaFailed uint64

	// StallCycles maps telemetry stall-cause names to thread-cycles
	// charged, summed over every sweep this process ran; ActiveCycles is
	// the matching dispatch-active total.
	StallCycles  map[string]uint64
	ActiveCycles uint64
}

// Server owns the queue, the workers and the job registry.
type Server struct {
	cfg   Config
	queue chan *Job

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job // by job ID, for status lookups
	active   map[string]*Job // by cache key, for singleflight
	seq      uint64

	//tlrob:allow(process-lifetime base context, the http.Server.BaseContext pattern; jobs derive from it)
	baseCtx    context.Context
	baseCancel context.CancelFunc
	workersWG  sync.WaitGroup

	inflight                                  atomic.Int64
	submitted, coalesced, rejected            atomic.Uint64
	completed, failed, canceled               atomic.Uint64
	retries, simulations, cycles, simNanosSum atomic.Uint64
	// simTimedJobs counts the jobs whose wall time entered simNanosSum —
	// jobs canceled while still queued never run and must not dilute the
	// mean service time that RetryAfterSeconds reports.
	simTimedJobs                             atomic.Uint64
	peerFillHits, peerFillMisses, peerServed atomic.Uint64
	peerStored                               atomic.Uint64
	replicaPushed, replicaFailed             atomic.Uint64
	replicaWG                                sync.WaitGroup

	// Per-cause thread-cycle totals aggregated over every sweep this
	// process ran, indexed by telemetry.Cause; exposed on /metrics.
	stallCycles  [telemetry.NumCauses]atomic.Uint64
	activeCycles atomic.Uint64

	// simulate is swapped by tests to fault-inject transient errors.
	simulate func(ctx context.Context, j *Job) (report.Series, int64, error)
	// beforeRun, if set (tests), blocks a worker at job start.
	beforeRun func(j *Job)
}

// New starts a server with cfg.Workers workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueSize),
		jobs:       make(map[string]*Job),
		active:     make(map[string]*Job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.simulate = s.runSweep
	for w := 0; w < cfg.Workers; w++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// SpecKey resolves a spec to its content-address cache key without
// submitting it. maxBudget of 0 applies the default limit. The
// coordinator uses this to shard submissions exactly the way workers
// cache them.
func SpecKey(spec RunSpec, maxBudget uint64) (string, error) {
	cfg := Config{MaxBudget: maxBudget}.withDefaults()
	_, _, _, key, err := resolveKey(spec, cfg)
	return key, err
}

// resolveKey normalizes the spec and derives the content address every
// cache layer (local store, peers, coordinator routing) agrees on.
func resolveKey(spec RunSpec, cfg Config) (RunSpec, experiments.SchemeSpec, []workload.Mix, string, error) {
	spec, scheme, mixes, err := spec.normalize(cfg)
	if err != nil {
		return spec, scheme, mixes, "", fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	opt := scheme.Opt
	opt.Budget = spec.Budget
	opt.Seed = spec.Seed
	names := make([]string, len(mixes))
	for i, m := range mixes {
		names[i] = m.Name
	}
	key, err := store.Key(keySpec{Options: opt, Mixes: names, Budget: spec.Budget, Seed: spec.Seed})
	return spec, scheme, mixes, key, err
}

// Submit resolves the spec, consults the cache (local, then peers when
// configured), coalesces with any identical in-flight job, or enqueues
// a new one. It returns either the cached result bytes (job == nil) or
// a job to watch. ctx bounds only the submission itself (peer-fill
// fetches); the job's own lifetime is governed by its waiters. detach
// marks fire-and-forget submissions whose jobs survive client
// disconnects; attached submissions (wait=1) must pair with
// Job.Release.
func (s *Server) Submit(ctx context.Context, spec RunSpec, detach bool) (*Job, []byte, error) {
	spec, scheme, mixes, key, err := resolveKey(spec, s.cfg)
	if err != nil {
		return nil, nil, err
	}
	s.submitted.Add(1)
	if data, ok := s.cfg.Store.Get(key); ok {
		return nil, data, nil
	}
	if s.cfg.PeerFill != nil {
		if data, ok := s.cfg.PeerFill(ctx, key); ok {
			s.peerFillHits.Add(1)
			if err := s.cfg.Store.Put(key, data); err != nil {
				s.cfg.Logf("simd: peer fill put %s: %v", key[:12], err)
			}
			return nil, data, nil
		}
		s.peerFillMisses.Add(1)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, ErrDraining
	}
	// The peer consult above runs unlocked and can take hundreds of
	// milliseconds; a concurrent identical submission may have enqueued,
	// simulated and unregistered entirely inside that window. Re-check
	// the cache under the lock so the result is adopted instead of
	// re-simulated.
	if data, ok := s.cfg.Store.Get(key); ok {
		s.mu.Unlock()
		return nil, data, nil
	}
	if j := s.active[key]; j != nil {
		if j.ctx.Err() == nil {
			if detach {
				j.detach()
			} else {
				j.addWaiter()
			}
			s.coalesced.Add(1)
			s.mu.Unlock()
			return j, nil, nil
		}
		// The in-flight job was already cancelled; don't attach new
		// submitters to a doomed run.
		delete(s.active, key)
	}
	s.seq++
	id := fmt.Sprintf("%s-%d", key[:12], s.seq)
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	j := &Job{
		ID:        id,
		Key:       key,
		Spec:      spec,
		scheme:    scheme,
		mixes:     mixes,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		subs:      make(map[chan Event]bool),
		status:    StatusQueued,
		detached:  detach,
		createdAt: time.Now(),
	}
	if !detach {
		j.waiters = 1
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel(ErrQueueFull)
		s.rejected.Add(1)
		return nil, nil, ErrQueueFull
	}
	s.jobs[id] = j
	s.active[key] = j
	s.mu.Unlock()
	j.emit(Event{Type: "queued", Total: len(mixes)})
	return j, nil, nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job. It reports whether the job
// exists.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancel(context.Canceled)
	return true
}

func (s *Server) worker() {
	defer s.workersWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	defer s.unregister(j)
	if j.ctx.Err() != nil { // cancelled while queued
		j.finish(StatusCanceled, nil, context.Cause(j.ctx).Error())
		s.canceled.Add(1)
		return
	}
	timeout := s.cfg.JobTimeout
	if j.Spec.TimeoutSec > 0 {
		timeout = time.Duration(j.Spec.TimeoutSec) * time.Second
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.setStarted()
	j.emit(Event{Type: "running", Total: len(j.mixes)})
	if s.beforeRun != nil {
		s.beforeRun(j)
	}

	var (
		series  report.Series
		cycles  int64
		runErr  error
		backoff = s.cfg.RetryBackoff
	)
	start := time.Now()
	for attempt := 0; ; attempt++ {
		series, cycles, runErr = s.simulate(ctx, j)
		if runErr == nil || ctx.Err() != nil || attempt >= s.cfg.Retries || !IsTransient(runErr) {
			break
		}
		s.retries.Add(1)
		j.emit(Event{Type: "retry", Error: runErr.Error()})
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
		}
		backoff *= 2
	}
	s.simNanosSum.Add(uint64(time.Since(start).Nanoseconds()))
	s.simTimedJobs.Add(1)

	switch {
	case runErr == nil:
		data, err := json.Marshal(series)
		if err != nil {
			j.finish(StatusFailed, nil, err.Error())
			s.failed.Add(1)
			return
		}
		if err := s.cfg.Store.Put(j.Key, data); err != nil {
			s.cfg.Logf("simd: cache put %s: %v", j.Key[:12], err)
		}
		if s.cfg.Replicate != nil {
			// Push replicas off the worker goroutine so a slow peer
			// doesn't hold up the queue; waiters get their result now.
			s.replicaWG.Add(1)
			go func(key string, data []byte) {
				defer s.replicaWG.Done()
				pushed, failed := s.cfg.Replicate(s.baseCtx, key, data)
				s.replicaPushed.Add(uint64(pushed))
				s.replicaFailed.Add(uint64(failed))
				if failed > 0 {
					s.cfg.Logf("simd: replicate %s: %d pushed, %d failed", key[:12], pushed, failed)
				}
			}(j.Key, data)
		}
		s.cycles.Add(uint64(cycles))
		s.completed.Add(1)
		j.finish(StatusDone, data, "")
	case errors.Is(runErr, context.Canceled):
		s.canceled.Add(1)
		j.finish(StatusCanceled, nil, cancelReason(j.ctx, runErr))
	default:
		s.failed.Add(1)
		j.finish(StatusFailed, nil, runErr.Error())
	}
}

func cancelReason(ctx context.Context, err error) string {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause.Error()
	}
	return err.Error()
}

func (s *Server) unregister(j *Job) {
	s.mu.Lock()
	if s.active[j.Key] == j {
		delete(s.active, j.Key)
	}
	s.mu.Unlock()
}

// runSweep executes the job's sweep, streaming per-mix progress into the
// job's event log.
func (s *Server) runSweep(ctx context.Context, j *Job) (report.Series, int64, error) {
	r := experiments.NewRunner(experiments.Params{
		Budget:    j.Spec.Budget,
		Seed:      j.Spec.Seed,
		Workers:   s.cfg.SimWorkers,
		Telemetry: true,
	})
	var completed atomic.Int64
	r.OnProgress = func(p experiments.Progress) {
		ev := Event{Type: p.Stage, Mix: p.Item, Total: p.Total, FairThroughput: p.FairThroughput}
		if p.Stage == "mix" {
			ev.Completed = int(completed.Add(1))
			ev.Telemetry = p.Telemetry
		}
		j.emit(ev)
	}
	s.simulations.Add(1)
	series, err := r.RunMixes(ctx, j.scheme, j.mixes)
	if err != nil {
		return report.Series{}, 0, err
	}
	var cycles int64
	for _, row := range series.Rows {
		cycles += row.Result.Cycles
		if sum := row.Result.Telemetry; sum != nil {
			stalls, active := sum.StallTotals()
			s.activeCycles.Add(active)
			for c, n := range stalls {
				s.stallCycles[c].Add(n)
			}
		}
	}
	return report.FromSeries(series, true), cycles, nil
}

// Shutdown drains the server: submissions are refused, queued and
// running jobs finish. If ctx expires first, in-flight jobs are
// cancelled and Shutdown reports ctx's error after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	//tlrob:allow(joiner: exits when the worker and replica WaitGroups drain; Shutdown joins it via done on both arms below)
	go func() {
		s.workersWG.Wait()
		s.replicaWG.Wait() // in-flight replica pushes finish too
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// RetryAfterSeconds estimates how long a rejected submitter should wait
// for the queue to drain enough to accept it: the observed mean job
// service time times the queue slots ahead of it, divided across the
// worker pool. Clamped to [1, 60] so a cold server (no completions yet)
// still answers something sane and a deeply backed-up one doesn't tell
// clients to disappear for an hour.
func (s *Server) RetryAfterSeconds() int {
	timed := s.simTimedJobs.Load()
	if timed == 0 {
		return 1
	}
	mean := time.Duration(s.simNanosSum.Load() / timed)
	wait := mean * time.Duration(len(s.queue)+1) / time.Duration(s.cfg.Workers)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	stalls := make(map[string]uint64, int(telemetry.NumCauses)-1)
	for c := telemetry.Cause(1); c < telemetry.NumCauses; c++ {
		stalls[c.String()] = s.stallCycles[c].Load()
	}
	return Stats{
		QueueDepth:     len(s.queue),
		Inflight:       s.inflight.Load(),
		Submitted:      s.submitted.Load(),
		Coalesced:      s.coalesced.Load(),
		Rejected:       s.rejected.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Canceled:       s.canceled.Load(),
		Retries:        s.retries.Load(),
		Simulations:    s.simulations.Load(),
		Cycles:         s.cycles.Load(),
		SimSeconds:     float64(s.simNanosSum.Load()) / 1e9,
		Draining:       draining,
		Cache:          s.cfg.Store.Stats(),
		PeerFillHits:   s.peerFillHits.Load(),
		PeerFillMisses: s.peerFillMisses.Load(),
		PeerServed:     s.peerServed.Load(),
		PeerStored:     s.peerStored.Load(),
		ReplicaPushed:  s.replicaPushed.Load(),
		ReplicaFailed:  s.replicaFailed.Load(),
		StallCycles:    stalls,
		ActiveCycles:   s.activeCycles.Load(),
	}
}
