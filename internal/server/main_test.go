package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain wraps the whole package in the goroutine-leak guard:
// workers, replica pushes, SSE subscribers, and Shutdown joiners
// spawned by tests must all be gone when the binary exits — the
// dynamic counterpart of the golifecycle static pass.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
