package server

import (
	"net"
	"net/http"
	"time"
)

// StartHTTP binds addr — which may end in ":0" to pick a free port —
// and serves h on it in a background goroutine. It returns the
// http.Server (for Shutdown), the concrete bound address (host:port),
// and a channel that receives the terminal Serve error. Both cmd/simd
// and in-process cluster tests use it so nothing races for fixed
// ports.
func StartHTTP(addr string, h http.Handler) (*http.Server, string, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	//tlrob:allow(bounded: Serve returns on srv.Shutdown/Close and the terminal error parks in the buffered errCh)
	go func() { errCh <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), errCh, nil
}
