package server

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// errClientGone cancels a job whose last waiting client disconnected.
var errClientGone = errors.New("all waiting clients disconnected")

// Event is one line of a job's NDJSON progress stream.
type Event struct {
	Type           string  `json:"type"` // queued running single mix retry done failed canceled
	JobID          string  `json:"job_id"`
	Mix            string  `json:"mix,omitempty"` // benchmark name for "single" events
	Completed      int     `json:"completed,omitempty"`
	Total          int     `json:"total,omitempty"`
	FairThroughput float64 `json:"fair_throughput,omitempty"`
	Error          string  `json:"error,omitempty"`
	// Telemetry carries the finished mix's stall/occupancy digest on
	// "mix" events (sweeps run with telemetry enabled).
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
}

// Job is one queued or running simulation sweep.
type Job struct {
	ID   string
	Key  string // content address of the result
	Spec RunSpec

	scheme experiments.SchemeSpec
	mixes  []workload.Mix

	//tlrob:allow(a queued Job carries its request context like http.Request; cancellation is wired to waiter disconnects)
	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu         sync.Mutex
	status     Status
	result     []byte
	errMsg     string
	events     []Event
	subs       map[chan Event]bool
	waiters    int
	detached   bool
	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time
}

// Done is closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is the wire form of a job's state.
type Snapshot struct {
	ID        string          `json:"id"`
	Status    Status          `json:"status"`
	Spec      RunSpec         `json:"spec"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
	StartedAt *time.Time      `json:"started_at,omitempty"`
	EndedAt   *time.Time      `json:"ended_at,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := Snapshot{
		ID:        j.ID,
		Status:    j.status,
		Spec:      j.Spec,
		Error:     j.errMsg,
		Result:    j.result,
		CreatedAt: j.createdAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		snap.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		snap.EndedAt = &t
	}
	return snap
}

// Status returns the job's current status.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the result payload of a done job.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.status == StatusDone
}

func (j *Job) setStarted() {
	j.mu.Lock()
	j.status = StatusRunning
	j.startedAt = time.Now()
	j.mu.Unlock()
}

// finish moves the job to a terminal status, records the outcome, emits
// the terminal event and closes every subscriber channel.
func (j *Job) finish(st Status, result []byte, errMsg string) {
	ev := Event{Type: string(st), Error: errMsg}
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.result = result
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	j.appendAndBroadcastLocked(ev)
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
}

// emit appends a progress event and fans it out to subscribers. A
// subscriber that cannot keep up skips events (its stream remains
// ordered, and the terminal event always arrives via channel close).
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	if !j.status.terminal() {
		j.appendAndBroadcastLocked(ev)
	}
	j.mu.Unlock()
}

func (j *Job) appendAndBroadcastLocked(ev Event) {
	ev.JobID = j.ID
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns a channel replaying the job's past events and then
// streaming live ones; it is closed after the terminal event. The
// returned cancel func detaches the subscription.
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 64+len(j.events))
	for _, ev := range j.events {
		// Capacity covers the full replay, so the default arm is
		// unreachable; it makes the never-blocks-under-j.mu property
		// explicit instead of an arithmetic fact a reader must rederive.
		select {
		case ch <- ev:
		default:
		}
	}
	if j.status.terminal() {
		close(ch)
		return ch, func() {}
	}
	j.subs[ch] = true
	return ch, func() {
		j.mu.Lock()
		if j.subs != nil {
			delete(j.subs, ch)
		}
		j.mu.Unlock()
	}
}

// addWaiter registers one more waiting client (a coalesced wait=1
// submission).
func (j *Job) addWaiter() {
	j.mu.Lock()
	j.waiters++
	j.mu.Unlock()
}

// detach marks the job as fire-and-forget: it keeps running even after
// every waiting client disconnects.
func (j *Job) detach() {
	j.mu.Lock()
	j.detached = true
	j.mu.Unlock()
}

// Release drops one waiting client. When the last waiter of a
// non-detached job leaves before completion, the job is cancelled — an
// abandoned request must stop burning cores.
func (j *Job) Release() {
	j.mu.Lock()
	j.waiters--
	cancel := j.waiters <= 0 && !j.detached && !j.status.terminal()
	j.mu.Unlock()
	if cancel {
		j.cancel(errClientGone)
	}
}
