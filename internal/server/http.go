package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/runs            submit a RunSpec; ?wait=1 blocks for the result
//	GET    /v1/runs/{id}       job status (+ result when done)
//	DELETE /v1/runs/{id}       cancel a queued or running job
//	GET    /v1/runs/{id}/events NDJSON progress stream
//	GET    /v1/cache           cached content hashes on this node
//	GET    /v1/cache/{key}     raw cached result (peer fill / warm-up)
//	PUT    /v1/cache/{key}     store a result (replication / handoff)
//	GET    /v1/stats           Stats as JSON (fleet aggregation)
//	GET    /metrics            Prometheus-style text metrics
//	GET    /healthz            liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cache", s.handleCacheKeys)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// submitResponse is the POST /v1/runs body.
type submitResponse struct {
	ID     string          `json:"id,omitempty"`
	Status Status          `json:"status"`
	Cache  string          `json:"cache"` // "hit" | "miss"
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	job, cached, err := s.Submit(r.Context(), spec, !wait)
	switch {
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrQueueFull):
		// Estimate from the observed drain rate instead of a hardcoded
		// guess: a client that honors this finds a free slot on retry.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if cached != nil {
		writeJSON(w, http.StatusOK, submitResponse{Status: StatusDone, Cache: "hit", Result: cached})
		return
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, Status: job.Status(), Cache: "miss"})
		return
	}
	// Synchronous mode: the request context is the client's lifetime —
	// a disconnect releases the job (cancelling it if nobody else
	// waits or watches it).
	select {
	case <-job.Done():
	case <-r.Context().Done():
		job.Release()
		return
	}
	job.Release()
	snap := job.Snapshot()
	resp := submitResponse{ID: snap.ID, Status: snap.Status, Cache: "miss", Error: snap.Error, Result: snap.Result}
	code := http.StatusOK
	if snap.Status != StatusDone {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if !s.Cancel(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	ch, cancel := job.Subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleCacheGet serves one locally cached result to a peer (or a
// warm-up client). It deliberately consults only the local store —
// never PeerFill — so two nodes missing the same key cannot chase each
// other in a fill loop.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if len(key) != 64 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed cache key %q", key))
		return
	}
	data, ok := s.cfg.Store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("key %s not cached here", key[:12]))
		return
	}
	s.peerServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleCachePut stores a result pushed by a peer (replication after a
// completed simulation) or by the coordinator (key handoff after a
// membership change). The key is content-addressed, so a write is
// idempotent and a racing writer is harmless.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if len(key) != 64 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed cache key %q", key))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if !json.Valid(data) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("key %s: payload is not JSON", key[:12]))
		return
	}
	if err := s.cfg.Store.Put(key, data); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("store %s: %w", key[:12], err))
		return
	}
	s.peerStored.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCacheKeys(w http.ResponseWriter, r *http.Request) {
	keys := s.cfg.Store.Keys()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "keys": keys})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var cyclesPerSec float64
	if st.SimSeconds > 0 {
		cyclesPerSec = float64(st.Cycles) / st.SimSeconds
	}
	draining := 0
	if st.Draining {
		draining = 1
	}
	for _, m := range []struct {
		name, typ string
		value     any
	}{
		{"simd_queue_depth", "gauge", st.QueueDepth},
		{"simd_inflight_jobs", "gauge", st.Inflight},
		{"simd_draining", "gauge", draining},
		{"simd_submissions_total", "counter", st.Submitted},
		{"simd_coalesced_total", "counter", st.Coalesced},
		{"simd_rejected_total", "counter", st.Rejected},
		{"simd_jobs_completed_total", "counter", st.Completed},
		{"simd_jobs_failed_total", "counter", st.Failed},
		{"simd_jobs_canceled_total", "counter", st.Canceled},
		{"simd_retries_total", "counter", st.Retries},
		{"simd_simulations_total", "counter", st.Simulations},
		{"simd_cycles_simulated_total", "counter", st.Cycles},
		{"simd_sim_seconds_total", "counter", st.SimSeconds},
		{"simd_cycles_per_sec", "gauge", cyclesPerSec},
		{"simd_cache_hits_total", "counter", st.Cache.Hits},
		{"simd_cache_disk_hits_total", "counter", st.Cache.DiskHits},
		{"simd_cache_misses_total", "counter", st.Cache.Misses},
		{"simd_cache_evictions_total", "counter", st.Cache.Evictions},
		{"simd_cache_corrupt_total", "counter", st.Cache.Corrupt},
		{"simd_cache_bytes", "gauge", st.Cache.Bytes},
		{"simd_cache_entries", "gauge", st.Cache.Entries},
		{"simd_cache_disk_bytes", "gauge", st.Cache.DiskBytes},
		{"simd_cache_disk_entries", "gauge", st.Cache.DiskEntries},
		{"simd_cluster_peer_fill_hits_total", "counter", st.PeerFillHits},
		{"simd_cluster_peer_fill_misses_total", "counter", st.PeerFillMisses},
		{"simd_cluster_peer_served_total", "counter", st.PeerServed},
		{"simd_cluster_peer_stored_total", "counter", st.PeerStored},
		{"simd_cluster_replica_pushed_total", "counter", st.ReplicaPushed},
		{"simd_cluster_replica_failed_total", "counter", st.ReplicaFailed},
	} {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", m.name, m.typ, m.name, m.value)
	}
	fmt.Fprintf(w, "# TYPE simd_dispatch_active_cycles_total counter\nsimd_dispatch_active_cycles_total %d\n", st.ActiveCycles)
	fmt.Fprint(w, "# TYPE simd_stall_cycles_total counter\n")
	causes := make([]string, 0, len(st.StallCycles))
	for cause := range st.StallCycles {
		causes = append(causes, cause)
	}
	sort.Strings(causes)
	for _, cause := range causes {
		fmt.Fprintf(w, "simd_stall_cycles_total{cause=%q} %d\n", cause, st.StallCycles[cause])
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
