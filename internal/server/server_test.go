package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/store"
)

func testConfig(t *testing.T, mutate func(*Config)) Config {
	t.Helper()
	st, err := store.New(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:        st,
		QueueSize:    8,
		Workers:      2,
		SimWorkers:   2,
		JobTimeout:   time.Minute,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	s, err := New(testConfig(t, mutate))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// tinySpec is a fast, deterministic single-mix run.
func tinySpec() RunSpec {
	return RunSpec{Scheme: "rrob", Threshold: 16, Mixes: []string{"Mix 1"}, Budget: 2_000, Seed: 1}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID, j.Status())
	}
}

func TestSubmitRunsAndCaches(t *testing.T) {
	s := newTestServer(t, nil)
	j, cached, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil || cached != nil {
		t.Fatalf("first submit: %v cached=%v", err, cached != nil)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("status %s: %s", j.Status(), j.Snapshot().Error)
	}
	data, ok := j.Result()
	if !ok {
		t.Fatal("no result")
	}
	var series report.Series
	if err := json.Unmarshal(data, &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Rows) != 1 || series.Rows[0].Mix != "Mix 1" || series.Rows[0].FairThroughput <= 0 {
		t.Fatalf("series: %+v", series)
	}

	// Resubmission: byte-identical cached result, no new simulation.
	sims := s.Stats().Simulations
	j2, cached2, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil || j2 != nil {
		t.Fatalf("resubmit: %v job=%v", err, j2)
	}
	if !bytes.Equal(cached2, data) {
		t.Fatal("cached result differs from the original")
	}
	if got := s.Stats().Simulations; got != sims {
		t.Fatalf("resubmission re-simulated: %d -> %d", sims, got)
	}
}

// TestPeerFillServesWithoutSimulating verifies a configured PeerFill
// hook short-circuits a local miss: the peer's bytes are returned,
// adopted into the local store, and no simulation runs.
func TestPeerFillServesWithoutSimulating(t *testing.T) {
	payload := []byte(`{"series":[],"from":"peer"}`)
	var fills int
	s := newTestServer(t, func(c *Config) {
		c.PeerFill = func(ctx context.Context, key string) ([]byte, bool) {
			fills++
			return payload, true
		}
	})
	j, cached, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil || j != nil {
		t.Fatalf("peer-filled submit: err=%v job=%v", err, j)
	}
	if !bytes.Equal(cached, payload) {
		t.Fatalf("got %q, want peer payload", cached)
	}
	st := s.Stats()
	if st.PeerFillHits != 1 || st.Simulations != 0 {
		t.Fatalf("stats after peer fill: %+v", st)
	}
	// The adopted result now lives in the local store: the next
	// identical submission is a plain cache hit with no second fill.
	if _, cached2, err := s.Submit(context.Background(), tinySpec(), true); err != nil || !bytes.Equal(cached2, payload) {
		t.Fatalf("resubmit after adoption: %v %q", err, cached2)
	}
	if fills != 1 {
		t.Fatalf("peer consulted %d times, want 1", fills)
	}

	// A peer miss falls through to a real simulation.
	s2 := newTestServer(t, func(c *Config) {
		c.PeerFill = func(ctx context.Context, key string) ([]byte, bool) { return nil, false }
	})
	j2, cached2, err := s2.Submit(context.Background(), tinySpec(), true)
	if err != nil || cached2 != nil {
		t.Fatalf("peer-miss submit: %v", err)
	}
	waitDone(t, j2)
	if st := s2.Stats(); st.PeerFillMisses != 1 || st.Simulations != 1 {
		t.Fatalf("stats after peer miss: %+v", st)
	}
}

// TestSpecKeyMatchesSubmitKey pins the coordinator's routing key to the
// key workers actually cache under.
func TestSpecKeyMatchesSubmitKey(t *testing.T) {
	key, err := SpecKey(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	s := newTestServer(t, func(c *Config) {
		c.PeerFill = func(ctx context.Context, k string) ([]byte, bool) {
			got = k
			return []byte(`{}`), true
		}
	})
	if _, _, err := s.Submit(context.Background(), tinySpec(), true); err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatalf("SpecKey %s != submit key %s", key, got)
	}
	// Spec variants that normalize identically share the key: default
	// threshold spelled out vs. omitted.
	alt := tinySpec()
	alt.Threshold = 0 // rrob defaults to 16
	if k2, _ := SpecKey(alt, 0); k2 != key {
		t.Fatalf("normalized variants diverge: %s vs %s", k2, key)
	}
}

// TestSingleflightCollapse verifies N identical concurrent submissions
// share one simulation.
func TestSingleflightCollapse(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, nil)
	s.beforeRun = func(*Job) { <-release }

	const n = 8
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, cached, err := s.Submit(context.Background(), tinySpec(), true)
			if err != nil || cached != nil {
				t.Errorf("submit %d: %v cached=%v", i, err, cached != nil)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	close(release)
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("submission %d got no job", i)
		}
		if j.ID != jobs[0].ID {
			t.Fatalf("submission %d got job %s, want %s", i, j.ID, jobs[0].ID)
		}
		waitDone(t, j)
	}
	st := s.Stats()
	if st.Simulations != 1 {
		t.Fatalf("%d simulations for %d identical submissions", st.Simulations, n)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced %d, want %d", st.Coalesced, n-1)
	}
}

// TestQueueFullBackpressure verifies a full queue rejects with
// ErrQueueFull (HTTP 429) instead of blocking.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueSize = 1 })
	s.beforeRun = func(*Job) { started <- struct{}{}; <-release }
	defer close(release)

	spec := func(seed uint64) RunSpec {
		sp := tinySpec()
		sp.Seed = seed
		return sp
	}
	// Job 1 occupies the worker...
	if _, _, err := s.Submit(context.Background(), spec(1), true); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...job 2 occupies the single queue slot...
	if _, _, err := s.Submit(context.Background(), spec(2), true); err != nil {
		t.Fatal(err)
	}
	// ...job 3 must bounce.
	_, _, err := s.Submit(context.Background(), spec(3), true)
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected counter: %+v", s.Stats())
	}
}

// TestCancellationFreesWorkers verifies the acceptance criterion:
// cancelling an in-flight job stops its workers before the sweep
// completes, and the worker is immediately reusable.
func TestCancellationFreesWorkers(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.SimWorkers = 1 })
	// All 11 mixes at a budget big enough that the sweep takes a while.
	spec := RunSpec{Scheme: "rrob", Budget: 30_000, Seed: 1}
	j, cached, err := s.Submit(context.Background(), spec, true)
	if err != nil || cached != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait for the first completed mix, then cancel.
	ch, stop := j.Subscribe()
	defer stop()
	for ev := range ch {
		if ev.Type == "mix" {
			break
		}
	}
	if !s.Cancel(j.ID) {
		t.Fatal("job not found")
	}
	waitDone(t, j)
	if j.Status() != StatusCanceled {
		t.Fatalf("status %s, want canceled", j.Status())
	}
	var mixes int
	for _, ev := range j.Snapshot().eventsForTest(j) {
		if ev.Type == "mix" {
			mixes++
		}
	}
	if mixes >= 11 {
		t.Fatalf("sweep ran all %d mixes despite cancellation", mixes)
	}

	// The (sole) worker must be free: a fresh small job completes.
	j2, cached2, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	if cached2 == nil {
		waitDone(t, j2)
		if j2.Status() != StatusDone {
			t.Fatalf("follow-up job: %s", j2.Status())
		}
	}
	if got := s.Stats().Inflight; got != 0 {
		t.Fatalf("inflight %d after completion", got)
	}
}

// eventsForTest exposes the recorded events (the Snapshot receiver keeps
// the wire type clean).
func (Snapshot) eventsForTest(j *Job) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// TestLastWaiterDisconnectCancels verifies client-disconnect
// cancellation: when the last attached (wait=1) client goes away, the
// job is cancelled; detached jobs survive.
func TestLastWaiterDisconnectCancels(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.SimWorkers = 1 })
	spec := RunSpec{Scheme: "prob", Budget: 30_000, Seed: 7}
	j, _, err := s.Submit(context.Background(), spec, false) // attached
	if err != nil {
		t.Fatal(err)
	}
	j.Release() // the only waiting client disconnects
	waitDone(t, j)
	if j.Status() != StatusCanceled {
		t.Fatalf("status %s, want canceled", j.Status())
	}
	if msg := j.Snapshot().Error; !strings.Contains(msg, "disconnected") {
		t.Fatalf("cancel reason %q", msg)
	}
}

// TestRetryTransient verifies the worker retries transient failures with
// backoff and succeeds.
func TestRetryTransient(t *testing.T) {
	s := newTestServer(t, nil)
	real := s.simulate
	var calls int
	var mu sync.Mutex
	s.simulate = func(ctx context.Context, j *Job) (report.Series, int64, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			return report.Series{}, 0, &TransientError{Err: fmt.Errorf("flaky backend %d", n)}
		}
		return real(ctx, j)
	}
	j, _, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("status %s: %s", j.Status(), j.Snapshot().Error)
	}
	if st := s.Stats(); st.Retries != 2 {
		t.Fatalf("retries %d, want 2", st.Retries)
	}
}

// TestNonTransientFailureDoesNotRetry verifies deterministic failures
// surface immediately.
func TestNonTransientFailureDoesNotRetry(t *testing.T) {
	s := newTestServer(t, nil)
	s.simulate = func(ctx context.Context, j *Job) (report.Series, int64, error) {
		return report.Series{}, 0, fmt.Errorf("deterministic config error")
	}
	j, _, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.Status() != StatusFailed {
		t.Fatalf("status %s", j.Status())
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Fatalf("retried a deterministic failure %d times", st.Retries)
	}
}

func TestBadSpecRejected(t *testing.T) {
	s := newTestServer(t, nil)
	for name, spec := range map[string]RunSpec{
		"unknown scheme": {Scheme: "warp-drive"},
		"unknown mix":    {Scheme: "rrob", Mixes: []string{"Mix 99"}},
		"huge budget":    {Scheme: "rrob", Budget: 1 << 60},
	} {
		if _, _, err := s.Submit(context.Background(), spec, true); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestShutdownDrains(t *testing.T) {
	s, err := New(testConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j.Status() != StatusDone {
		t.Fatalf("queued job not drained: %s", j.Status())
	}
	// Cached results are still served while draining; new work is not.
	if _, cached, err := s.Submit(context.Background(), tinySpec(), true); err != nil || cached == nil {
		t.Fatalf("cached submit during drain: %v cached=%v", err, cached != nil)
	}
	fresh := tinySpec()
	fresh.Seed = 42
	if _, _, err := s.Submit(context.Background(), fresh, true); err != ErrDraining {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: submit, poll, events,
// cache hit on resubmission, metrics.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(tinySpec())
	resp, err := http.Post(ts.URL+"/v1/runs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var first submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || first.Status != StatusDone || first.Cache != "hit" && first.Cache != "miss" {
		t.Fatalf("first response: %d %+v", resp.StatusCode, first)
	}

	// Resubmission must be a cache hit with a byte-identical result.
	resp, err = http.Post(ts.URL+"/v1/runs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var second submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if second.Cache != "hit" {
		t.Fatalf("resubmission: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cache hit result differs")
	}

	// Async submission of a different spec + status poll + events.
	spec2 := tinySpec()
	spec2.Seed = 9
	body2, _ := json.Marshal(spec2)
	resp, err = http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	var async submitResponse
	json.NewDecoder(resp.Body).Decode(&async)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || async.ID == "" {
		t.Fatalf("async submit: %d %+v", resp.StatusCode, async)
	}
	evResp, err := http.Get(ts.URL + "/v1/runs/" + async.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	var sawMix, sawTerminal bool
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Type == "mix" {
			sawMix = true
		}
		if Status(ev.Type).terminal() {
			sawTerminal = true
		}
	}
	if !sawMix || !sawTerminal {
		t.Fatalf("event stream incomplete: mix=%v terminal=%v", sawMix, sawTerminal)
	}

	getResp, err := http.Get(ts.URL + "/v1/runs/" + async.ID)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	json.NewDecoder(getResp.Body).Decode(&snap)
	getResp.Body.Close()
	if snap.Status != StatusDone || len(snap.Result) == 0 {
		t.Fatalf("snapshot: %+v", snap)
	}

	// Metrics must show the cache hit and the completed jobs.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc = bufio.NewScanner(mResp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	mResp.Body.Close()
	metrics := sb.String()
	for _, want := range []string{"simd_cache_hits_total 1", "simd_queue_depth 0", "simd_simulations_total 2"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Unknown job: 404.
	r404, _ := http.Get(ts.URL + "/v1/runs/nope")
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", r404.StatusCode)
	}
	r404.Body.Close()

	// Health.
	h, _ := http.Get(ts.URL + "/healthz")
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", h.StatusCode)
	}
	h.Body.Close()
}

// TestHTTPQueueFull429 verifies backpressure surfaces as 429.
func TestHTTPQueueFull429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueSize = 1 })
	s.beforeRun = func(*Job) { started <- struct{}{}; <-release }
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(seed uint64) (int, string) {
		sp := tinySpec()
		sp.Seed = seed
		body, _ := json.Marshal(sp)
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	if code, _ := post(1); code != http.StatusAccepted {
		t.Fatalf("job 1: %d", code)
	}
	<-started
	if code, _ := post(2); code != http.StatusAccepted {
		t.Fatalf("job 2: %d", code)
	}
	code, retryAfter := post(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d, want 429", code)
	}
	// The rejection carries a drain-rate estimate, not an empty header.
	secs, err := strconv.Atoi(retryAfter)
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("queue-full Retry-After = %q, want an integer in [1, 60]", retryAfter)
	}
}

// TestRetryAfterSecondsEstimate pins the drain-rate arithmetic: mean
// service time × queue slots ahead ÷ workers, clamped to [1, 60].
func TestRetryAfterSecondsEstimate(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 2 })
	// Cold server: no completions yet, fall back to 1.
	if got := s.RetryAfterSeconds(); got != 1 {
		t.Fatalf("cold estimate = %d, want 1", got)
	}
	// Two timed jobs took 10s total -> 5s mean; empty queue, 2
	// workers -> ceil(5s * 1 / 2) = 3.
	s.completed.Store(2)
	s.simTimedJobs.Store(2)
	s.simNanosSum.Store(uint64(10 * time.Second))
	if got := s.RetryAfterSeconds(); got != 3 {
		t.Fatalf("estimate = %d, want 3", got)
	}
	// Jobs canceled while still queued never ran: they must not dilute
	// the mean service time (they'd drag the estimate toward zero).
	s.canceled.Store(100)
	if got := s.RetryAfterSeconds(); got != 3 {
		t.Fatalf("estimate with queue-cancels = %d, want 3", got)
	}
	// A pathological backlog clamps at 60 instead of telling the client
	// to come back in an hour.
	s.simNanosSum.Store(uint64(10 * time.Hour))
	if got := s.RetryAfterSeconds(); got != 60 {
		t.Fatalf("clamped estimate = %d, want 60", got)
	}
}

// TestCachePutRoundTrip covers the replication/handoff write path: a
// peer PUTs a result, the node serves it locally (including to Submit)
// without simulating, and malformed writes are rejected.
func TestCachePutRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	put := func(key, payload string) int {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+key, strings.NewReader(payload))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	key, err := SpecKey(tinySpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := `{"planted":true}`
	if code := put(key, payload); code != http.StatusNoContent {
		t.Fatalf("PUT -> %d", code)
	}
	if code := put("deadbeef", payload); code != http.StatusBadRequest {
		t.Fatalf("short key PUT -> %d, want 400", code)
	}
	if code := put(key, "not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage PUT -> %d, want 400", code)
	}

	// The stored entry is served back byte-identical...
	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != payload {
		t.Fatalf("GET after PUT: %d %q", resp.StatusCode, data)
	}
	// ...and adopted by Submit as a cache hit: zero simulations.
	_, cached, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil || string(cached) != payload {
		t.Fatalf("Submit after PUT: cached=%q err=%v", cached, err)
	}
	st := s.Stats()
	if st.PeerStored != 1 || st.Simulations != 0 {
		t.Fatalf("stats after planted result: %+v", st)
	}
}

// TestReplicateHookFiresOnCompletion: a successful simulation pushes
// its result through Config.Replicate with the job's key and exact
// bytes, off the worker goroutine, and the counters record the fanout.
func TestReplicateHookFiresOnCompletion(t *testing.T) {
	var (
		mu      sync.Mutex
		gotKey  string
		gotData []byte
	)
	s := newTestServer(t, func(c *Config) {
		c.Replicate = func(ctx context.Context, key string, data []byte) (int, int) {
			mu.Lock()
			gotKey, gotData = key, append([]byte(nil), data...)
			mu.Unlock()
			return 1, 1
		}
	})
	j, cached, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil || cached != nil {
		t.Fatalf("Submit: cached=%v err=%v", cached != nil, err)
	}
	waitDone(t, j)
	result, ok := j.Result()
	if !ok {
		t.Fatalf("job ended %s", j.Status())
	}
	// The push is async; wait for the counters to land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.ReplicaPushed == 1 && st.ReplicaFailed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica counters never landed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotKey != j.Key {
		t.Fatalf("replicated key %s, want %s", gotKey, j.Key)
	}
	if !bytes.Equal(gotData, result) {
		t.Fatal("replicated bytes differ from the job result")
	}
}

// TestSweepTelemetrySurfaces pins the telemetry contract: mix progress
// events carry the run's stall/occupancy summary, the stored result
// rows do too, and the per-cause cycle totals reach Stats (the /metrics
// source).
func TestSweepTelemetrySurfaces(t *testing.T) {
	s := newTestServer(t, nil)
	j, cached, err := s.Submit(context.Background(), tinySpec(), true)
	if err != nil || cached != nil {
		t.Fatalf("Submit: cached=%v err=%v", cached != nil, err)
	}
	events, cancel := j.Subscribe()
	defer cancel()
	waitDone(t, j)

	var mixWithTelemetry bool
	for ev := range events {
		if ev.Type == "mix" && ev.Telemetry != nil {
			mixWithTelemetry = true
			if err := ev.Telemetry.CheckInvariant(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !mixWithTelemetry {
		t.Fatal("no mix event carried a telemetry summary")
	}

	data, ok := j.Result()
	if !ok {
		t.Fatalf("job ended %s", j.Status())
	}
	var series report.Series
	if err := json.Unmarshal(data, &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Rows) == 0 || series.Rows[0].Telemetry == nil {
		t.Fatal("stored result rows lost the telemetry summary")
	}

	st := s.Stats()
	var total uint64
	for _, v := range st.StallCycles {
		total += v
	}
	if total == 0 || st.ActiveCycles == 0 {
		t.Fatalf("Stats missing stall aggregation: stalls=%v active=%d", st.StallCycles, st.ActiveCycles)
	}
	if uint64(st.Cycles)*4 != total+st.ActiveCycles {
		t.Fatalf("aggregated thread-cycles %d != 4 × %d run cycles", total+st.ActiveCycles, st.Cycles)
	}
}
