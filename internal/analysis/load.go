package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// A Package is one loaded, parsed, and type-checked package ready for
// analysis. Only non-test GoFiles are loaded: the invariants the suite
// enforces are production-code contracts, and several rules explicitly
// exempt _test.go files.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool // listed only as a dependency, not matched by the patterns
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool, parses every
// matched non-test file, and type-checks each package. Dependency types
// are imported from gc export data produced by `go list -export`, so
// loading works offline and never re-type-checks the standard library
// from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One `go list` pass yields the analysis roots, their transitive
	// dependencies, and every export-data path: DepOnly distinguishes
	// packages pulled in as dependencies from the pattern matches, so
	// no second resolution run is needed no matter how many analyzers
	// share the load.
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s", lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, dir, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := loadOne(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func loadOne(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo returns a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// NewImporter returns a types.Importer backed by gc export data. Known
// export files can be seeded via exports; anything else (typically a
// standard-library path requested lazily) is resolved by shelling out
// to `go list -export` in dir. Safe for reuse across packages.
func NewImporter(fset *token.FileSet, dir string, exports map[string]string) types.Importer {
	if exports == nil {
		exports = make(map[string]string)
	}
	lk := &lookup{dir: dir, exports: exports}
	return importer.ForCompiler(fset, "gc", lk.open)
}

type lookup struct {
	mu      sync.Mutex
	dir     string
	exports map[string]string
}

func (l *lookup) open(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		out, err := runGo(l.dir, "list", "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, err
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}
