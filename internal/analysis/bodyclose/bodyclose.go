// Package bodyclose verifies that every *http.Response obtained from
// net/http (Client.Do/Get/Head/Post/PostForm, the package-level
// helpers, Transport.RoundTrip) reaches a Body.Close on every
// non-error path. An unclosed body pins the underlying connection:
// the transport cannot return it to the idle pool, so the coordinator,
// prober, handoff, and replication clients leak a connection (and a
// reading goroutine) per call until the peer times them out.
//
// The analysis is a CFG may-analysis: a response is "open" from the
// call that produced it until a path closes it, and any path reaching
// the function's exit with the response still open is reported at the
// originating call. The err != nil / err == nil branch guarding the
// call is understood — the error arm is not required to close the
// (nil) response. A response that escapes the function — returned,
// passed whole to another call, captured by a non-deferred closure,
// stored in a composite — becomes the consumer's responsibility and
// is not reported; passing only resp.Body to a reader (json.NewDecoder,
// io.Copy) does not count as closing. Responses whose result is
// discarded outright are reported at the call. Test files are exempt.
package bodyclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the bodyclose pass.
var Analyzer = &analysis.Analyzer{
	Name: "bodyclose",
	Doc:  "every *http.Response from Client.Do/Get/Post must reach Body.Close on all non-error paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fb := range cfg.FuncBodies(file) {
			check(pass, fb.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	info *types.Info

	// One entry per response-producing call assigned to a variable.
	respOrder []types.Object // discovery order, for deterministic reports
	callPos   map[types.Object]token.Pos
	gens      map[*ast.AssignStmt]types.Object
	genLHS    map[*ast.Ident]bool // lhs idents of gen assigns (not escapes)
	selBase   map[*ast.Ident]bool // idents appearing as SelectorExpr.X
	// errResps maps an error variable to the responses produced
	// alongside it, for err-branch edge refinement.
	errResps map[types.Object][]types.Object
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	ck := &checker{
		pass:     pass,
		info:     pass.TypesInfo,
		callPos:  make(map[types.Object]token.Pos),
		gens:     make(map[*ast.AssignStmt]types.Object),
		genLHS:   make(map[*ast.Ident]bool),
		selBase:  make(map[*ast.Ident]bool),
		errResps: make(map[types.Object][]types.Object),
	}
	ck.prepass(body)
	if len(ck.respOrder) == 0 {
		return
	}

	g := cfg.New(body, cfg.Options{NoReturn: cfg.StdNoReturn(ck.info)})
	flow := &cfg.Flow[types.Object]{
		Join:     cfg.May,
		Transfer: ck.transfer,
		Edge:     ck.refineEdge,
	}
	ins := flow.Solve(g)
	exit, ok := ins[g.Exit]
	if !ok {
		return // the function never returns
	}
	for _, obj := range ck.respOrder {
		if exit.Has(obj) {
			ck.pass.Reportf(ck.callPos[obj], "response body is not closed on every path from this call: add `defer resp.Body.Close()` right after the error check")
		}
	}
}

// prepass indexes response-producing calls, selector-base idents, and
// discarded responses across the whole body (nested literals
// included, since selector-base status is purely syntactic).
func (ck *checker) prepass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				ck.selBase[id] = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !ck.responseCall(call) {
				return true
			}
			lhs, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !ok {
				return true // response stored in a field/index: escapes
			}
			if lhs.Name == "_" {
				ck.pass.Reportf(call.Pos(), "http response discarded (blank identifier): its body is never closed and the connection leaks")
				return true
			}
			obj := ck.info.Defs[lhs]
			if obj == nil {
				obj = ck.info.Uses[lhs]
			}
			if obj == nil {
				return true
			}
			ck.gens[n] = obj
			ck.genLHS[lhs] = true
			if _, seen := ck.callPos[obj]; !seen {
				ck.respOrder = append(ck.respOrder, obj)
				ck.callPos[obj] = call.Pos()
			}
			if len(n.Lhs) > 1 {
				if errID, ok := ast.Unparen(n.Lhs[1]).(*ast.Ident); ok {
					errObj := ck.info.Defs[errID]
					if errObj == nil {
						errObj = ck.info.Uses[errID]
					}
					if errObj != nil {
						ck.errResps[errObj] = append(ck.errResps[errObj], obj)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && ck.responseCall(call) {
				ck.pass.Reportf(call.Pos(), "http response discarded: its body is never closed and the connection leaks")
			}
		}
		return true
	})
}

// transfer applies one block node's effect: gen at the producing
// assignment, kill at Body.Close (direct or deferred) and at escapes.
func (ck *checker) transfer(n ast.Node, fact cfg.Set[types.Object]) {
	var visit func(ast.Node) bool
	visit = func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if obj, ok := ck.gens[m]; ok {
				fact.Add(obj)
			}
			return true
		case *ast.DeferStmt:
			if obj, ok := ck.closeCall(m.Call); ok {
				fact.Delete(obj)
				return false
			}
			if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
				ck.killClosesIn(lit.Body, fact)
				return false
			}
			for _, a := range m.Call.Args {
				cfg.Inspect(a, visit) // deferred call's args evaluate now
			}
			return false
		case *ast.CallExpr:
			if obj, ok := ck.closeCall(m); ok {
				fact.Delete(obj)
			}
			return true
		case *ast.FuncLit:
			// A closure capturing the response may close or consume it
			// later; ownership escapes this function's flow.
			ck.killCaptured(m.Body, fact)
			return false
		case *ast.Ident:
			obj := ck.info.Uses[m]
			if obj == nil || ck.selBase[m] || ck.genLHS[m] {
				return true
			}
			if _, tracked := ck.callPos[obj]; tracked {
				fact.Delete(obj) // escapes whole: returned, passed, stored
			}
			return true
		}
		return true
	}
	cfg.Inspect(n, visit)
}

// refineEdge kills responses on the error arm of their guarding
// err != nil / err == nil branch: a failed call returns no body.
func (ck *checker) refineEdge(from *cfg.Block, i int, fact cfg.Set[types.Object]) {
	cond, ok := from.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.NEQ && cond.Op != token.EQL) {
		return
	}
	var errID *ast.Ident
	if isNil(ck.info, cond.Y) {
		errID, _ = ast.Unparen(cond.X).(*ast.Ident)
	} else if isNil(ck.info, cond.X) {
		errID, _ = ast.Unparen(cond.Y).(*ast.Ident)
	}
	if errID == nil {
		return
	}
	errObj := ck.info.Uses[errID]
	resps, ok := ck.errResps[errObj]
	if !ok {
		return
	}
	// NEQ: the true edge (i==0) is the error arm. EQL: the false edge.
	errorArm := 0
	if cond.Op == token.EQL {
		errorArm = 1
	}
	if i == errorArm {
		for _, obj := range resps {
			fact.Delete(obj)
		}
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

// closeCall matches `<resp>.Body.Close()` for a tracked resp.
func (ck *checker) closeCall(call *ast.CallExpr) (types.Object, bool) {
	outer, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || outer.Sel.Name != "Close" {
		return nil, false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return nil, false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := ck.info.Uses[id]
	if obj == nil {
		return nil, false
	}
	if _, tracked := ck.callPos[obj]; !tracked {
		return nil, false
	}
	return obj, true
}

// killClosesIn kills responses closed inside a deferred literal.
func (ck *checker) killClosesIn(body *ast.BlockStmt, fact cfg.Set[types.Object]) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, ok := ck.closeCall(call); ok {
				fact.Delete(obj)
			}
		}
		return true
	})
}

// killCaptured kills responses referenced anywhere in a non-deferred
// closure body: the closure now shares ownership.
func (ck *checker) killCaptured(body *ast.BlockStmt, fact cfg.Set[types.Object]) {
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := ck.info.Uses[id]; obj != nil {
				if _, tracked := ck.callPos[obj]; tracked {
					fact.Delete(obj)
				}
			}
		}
		return true
	})
}

// responseCall reports whether call produces an *http.Response the
// caller must close: Client.Do/Get/Head/Post/PostForm,
// Transport.RoundTrip (or any net/http RoundTripper), and the
// package-level Get/Head/Post/PostForm helpers.
func (ck *checker) responseCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := ck.info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return false
	}
	name := fn.Name()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		switch name {
		case "Get", "Head", "Post", "PostForm":
			return true
		}
		return false
	}
	if name == "RoundTrip" {
		return true
	}
	if !analysis.IsNamedType(sig.Recv().Type(), "net/http", "Client") {
		return false
	}
	switch name {
	case "Do", "Get", "Head", "Post", "PostForm":
		return true
	}
	return false
}
