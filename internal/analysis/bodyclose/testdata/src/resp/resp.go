// Package resp exercises bodyclose across the leak shapes the cluster
// clients could regress into, plus the idioms that must stay quiet.
package resp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

var client http.Client

// --- leaks ---

func leakPlain(req *http.Request) error {
	resp, err := client.Do(req) // want "response body is not closed on every path"
	if err != nil {
		return err
	}
	fmt.Println(resp.Status)
	return nil
}

// leakOnStatusCheck is the classic shape: the early return sits above
// the close. This mirrors what the coordinator's cacheGet would look
// like with its defer misplaced.
func leakOnStatusCheck(ctx context.Context, node, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req) // want "response body is not closed on every path"
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode) // leaks: Close never runs
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func leakReadWithoutClose(url string) error {
	resp, err := http.Get(url) // want "response body is not closed on every path"
	if err != nil {
		return err
	}
	var v struct{}
	return json.NewDecoder(resp.Body).Decode(&v) // reading is not closing
}

func leakDiscarded(req *http.Request) {
	client.Do(req) // want "http response discarded"
}

func leakBlank(req *http.Request) error {
	_, err := client.Do(req) // want "http response discarded"
	return err
}

func leakOneBranch(req *http.Request, verbose bool) error {
	resp, err := client.Do(req) // want "response body is not closed on every path"
	if err != nil {
		return err
	}
	if verbose {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return nil // the quiet branch leaks
}

// --- closed correctly ---

func closedWithDefer(req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("http %d", resp.StatusCode)
	}
	_, err = io.ReadAll(resp.Body)
	return err
}

// closedExplicitly is the drain-then-close shape the handoff client
// uses for PUTs.
func closedExplicitly(req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("http %d", resp.StatusCode)
	}
	return nil
}

func closedInDeferredClosure(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	_, err = io.ReadAll(resp.Body)
	return err
}

func closedPerIteration(urls []string) error {
	for _, u := range urls {
		resp, err := http.Get(u)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return nil
}

func errorPathNeedsNoClose(req *http.Request) ([]byte, error) {
	resp, err := client.Do(req)
	if err != nil {
		return nil, err // resp is nil here; nothing to close
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func invertedErrCheck(req *http.Request) error {
	resp, err := client.Do(req)
	if err == nil {
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}
	return err
}

// --- ownership escapes ---

func escapesByReturn(req *http.Request) (*http.Response, error) {
	return client.Do(req) // direct return: caller owns the body
}

func escapesByReturnVar(req *http.Request) (*http.Response, error) {
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func consume(r *http.Response) { r.Body.Close() }

func escapesAsArgument(req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	consume(resp)
	return nil
}

func escapesIntoClosure(req *http.Request) (func(), error) {
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	return func() { resp.Body.Close() }, nil
}

// --- suppression ---

func reviewedSuppression(req *http.Request) error {
	//tlrob:allow(long-poll stream: body intentionally left open, closed by the reader goroutine's owner)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	fmt.Println(resp.Status)
	return nil
}
