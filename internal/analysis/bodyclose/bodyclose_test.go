package bodyclose_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bodyclose"
)

func TestBodyclose(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), bodyclose.Analyzer, "resp")
}
