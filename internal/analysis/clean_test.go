package analysis_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/bodyclose"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/exhaustcause"
	"repro/internal/analysis/golifecycle"
	"repro/internal/analysis/lockguard"
)

// TestRepoTipIsClean is the acceptance gate in test form: the whole
// module, at the current tip, must produce zero diagnostics from every
// analyzer in the suite. A failure here means a hot path grew an
// allocation, a nondeterministic iteration crept toward an output, an
// enum switch went stale, or a context was stashed in a struct —
// exactly the regressions the suite exists to stop.
func TestRepoTipIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{
		allocfree.Analyzer,
		bodyclose.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		exhaustcause.Analyzer,
		golifecycle.Analyzer,
		lockguard.Analyzer,
	})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
