// Fixture for the ctxflow analyzer.
package ctxuse

import "context"

func good(ctx context.Context, n int) int { return n }

func bad(n int, ctx context.Context) { // want `must be the first parameter`
	_ = ctx
}

func multi(ctx, ctx2 context.Context) { // want `multiple context.Context parameters`
	_ = ctx
	_ = ctx2
}

func unnamedLate(int, context.Context) {} // want `must be the first parameter`

type holder struct {
	ctx context.Context // want `do not store context.Context`
	n   int
}

type okHolder struct {
	cancel context.CancelFunc // CancelFunc is fine: it detaches nothing
	n      int
}

type iface interface {
	Do(n int, ctx context.Context) error // want `must be the first parameter`
	Fine(ctx context.Context, n int) error
}

var callback func(n int, ctx context.Context) // want `must be the first parameter`

func literals() {
	f := func(n int, ctx context.Context) { _ = ctx } // want `must be the first parameter`
	f(0, context.Background())
}

// carrier: the documented exception — a request object carrying its
// context, justified at the field site.
type carrier struct {
	//tlrob:allow(request carrier, the http.Request pattern)
	ctx context.Context
}

func (c carrier) Context() context.Context { return c.ctx }
