// Package ctxflow locks in the context discipline PR 2 plumbed through
// the experiment runner and the service layer: context.Context flows
// down call chains as the first parameter and is never stored in a
// struct field.
//
// Storing a context detaches cancellation from the call tree — the
// field outlives the request that created it, deadlines stop
// propagating, and the last-waiter-disconnect cancellation the server
// relies on silently breaks. The two idiomatic exceptions in this
// repo (a queued Job carrying its request context like http.Request,
// and the server's base context) are annotated with
// //tlrob:allow(...) at the field site — every new occurrence needs
// the same explicit, reviewable justification.
//
// Rules, applied to every function, method, interface method, and
// func-typed declaration:
//   - a context.Context parameter must be the first parameter;
//   - at most one context.Context parameter;
//   - no struct field of type context.Context.
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must be the first parameter and never live in a struct field",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkParams(pass, n)
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

func isCtx(pass *analysis.Pass, e ast.Expr) bool {
	return analysis.IsNamedType(pass.TypesInfo.TypeOf(e), "context", "Context")
}

func checkParams(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0     // flattened parameter index
	ctxSeen := 0 // context.Context parameters so far
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isCtx(pass, field.Type) {
			if idx > 0 && ctxSeen == 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
			ctxSeen += n
			if ctxSeen > 1 {
				pass.Reportf(field.Pos(), "multiple context.Context parameters")
			}
		}
		idx += n
	}
}

func checkFields(pass *analysis.Pass, st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	for _, field := range st.Fields.List {
		if isCtx(pass, field.Type) {
			pass.Reportf(field.Pos(), "do not store context.Context in a struct field: pass it as the first argument down the call chain")
		}
	}
}
