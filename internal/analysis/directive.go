package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments recognized by the suite. They follow the Go
// directive-comment convention (no space after //), so gofmt leaves
// them alone and godoc hides them.
const (
	// AllocFreeDirective marks a function (in its doc comment) or a
	// statement (comment on the preceding line) whose execution must
	// not allocate. Enforced by the allocfree analyzer.
	AllocFreeDirective = "//tlrob:allocfree"
	// AllowDirective suppresses all diagnostics on its own line and
	// the next line. A parenthesized reason is required by convention:
	// //tlrob:allow(cold error path).
	AllowDirective = "//tlrob:allow"
)

// HasDirective reports whether the comment group contains a comment
// whose text is exactly the directive (ignoring any parenthesized or
// space-separated suffix).
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if IsDirective(c.Text, directive) {
			return true
		}
	}
	return false
}

// IsDirective reports whether the comment text is the given directive,
// alone or followed by a space or '(' suffix.
func IsDirective(text, directive string) bool {
	if !strings.HasPrefix(text, directive) {
		return false
	}
	rest := text[len(directive):]
	return rest == "" || rest[0] == ' ' || rest[0] == '(' || rest[0] == '\t'
}

// DirectiveComments returns every comment in the file matching the
// directive, in position order.
func DirectiveComments(f *ast.File, directive string) []*ast.Comment {
	var out []*ast.Comment
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if IsDirective(c.Text, directive) {
				out = append(out, c)
			}
		}
	}
	return out
}

// StmtOnLineAfter finds the outermost statement in f that starts on the
// line immediately following line (the usual position of a statement
// annotated by a directive comment on its own line). Returns nil if no
// statement starts there.
func StmtOnLineAfter(fset *token.FileSet, f *ast.File, line int) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if fset.Position(s.Pos()).Line == line+1 {
			found = s
			return false
		}
		return true
	})
	return found
}
