package allocfree_test

import (
	"testing"

	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), allocfree.Analyzer, "allocfree")
}
