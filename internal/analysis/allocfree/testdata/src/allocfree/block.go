// Fixture for the allocfree analyzer: statement-level (block)
// directives and misplaced directives.
package allocfree

// blockTagged tags only the loop: the appends before and after the
// region are fine, the one inside is not.
func blockTagged(xs []int) []int {
	xs = append(xs, 0) // outside the region: not reported
	//tlrob:allocfree
	for i := 0; i < 3; i++ {
		xs = append(xs, i) // want `append may grow`
	}
	xs = append(xs, 4) // outside the region: not reported
	return xs
}

// nestedRegion tags an if statement; the whole subtree is covered.
func nestedRegion(m map[int]int, on bool) {
	//tlrob:allocfree
	if on {
		for i := 0; i < 2; i++ {
			m[i] = i // want `map write may allocate`
		}
	}
}

//tlrob:allocfree // want `misplaced`
var dangling int
