// Fixture for the allocfree analyzer: function-level directives.
package allocfree

import "fmt"

type pair struct{ a, b int }

//tlrob:allocfree
func tagged(xs []int, n int) int {
	s := make([]int, n) // want `make allocates`
	xs = append(xs, 1)  // want `append may grow`
	m := map[int]int{}  // want `map literal allocates`
	m[1] = 2            // want `map write may allocate`
	m[2]++              // want `map write may allocate`
	f := func() {}      // want `function literal allocates a closure`
	f()
	p := new(int) // want `new allocates`
	q := &pair{}  // want `address of composite literal allocates`
	_ = []int{1}  // want `slice literal allocates`
	var sink any
	sink = n // want `assignment converts int`
	_ = sink
	fmt.Println(n) // want `call to fmt.Println allocates`
	go f()         // want `go statement allocates`
	_ = p
	_ = q
	return len(s) + len(xs)
}

// untagged is identical but carries no directive: nothing is reported.
func untagged(xs []int, n int) int {
	s := make([]int, n)
	xs = append(xs, 1)
	fmt.Println(n)
	return len(s) + len(xs)
}

//tlrob:allocfree
func strOps(a, b string, bs []byte) string {
	s := a + b     // want `string concatenation allocates`
	_ = []byte(a)  // want `string to \[\]byte/\[\]rune conversion allocates`
	_ = string(bs) // want `\[\]byte/\[\]rune to string conversion allocates`
	return s
}

//tlrob:allocfree
func retBox(n int) any {
	return n // want `return converts int`
}

//tlrob:allocfree
func sendBox(ch chan any, n int) {
	ch <- n // want `channel send converts int`
}

func varArgs(vs ...any) int { return len(vs) }

//tlrob:allocfree
func callsVariadic(n int) int {
	return varArgs(n, "x") // want `argument converts int` `argument converts string`
}

//tlrob:allocfree
func spread(vs []any) int {
	return varArgs(vs...) // passing the slice through boxes nothing
}

//tlrob:allocfree
func explicitIface(n int) any {
	return any(n) // want `conversion to interface`
}

// panicPath: everything inside a panic argument is exempt — a
// panicking path is cold and terminal.
//
//tlrob:allocfree
func panicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad n: %d", n))
	}
	return n
}

// suppressed: //tlrob:allow silences the finding on the next line.
//
//tlrob:allocfree
func suppressed(xs []int) []int {
	//tlrob:allow(caller preallocates capacity; proven by BenchmarkX)
	xs = append(xs, 1)
	return xs
}
