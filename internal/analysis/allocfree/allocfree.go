// Package allocfree enforces the //tlrob:allocfree directive: a tagged
// function or statement must contain no construct that can heap-allocate.
//
// The simulator's per-cycle work — the pipeline stage walk, the ROB
// DoD/commit paths, the telemetry record hooks — is proven
// allocation-free dynamically by malloc-count tests. This analyzer is
// the static half of that contract: it rejects the allocating
// constructs at build time, so a regression is a compile-gate failure
// instead of a benchmark delta three PRs later.
//
// Like the paper's degree-of-dependence check, the analysis is a cheap
// conservative approximation: it flags constructs that MAY allocate
// (append may be within capacity, a closure may be inlined and
// stack-allocated) and relies on an explicit, reviewable
// //tlrob:allow(reason) suppression where the code proves the
// allocation cannot happen in steady state.
//
// Flagged inside a tagged region:
//   - make, new, append
//   - slice and map composite literals, &T{...}
//   - function literals (closure capture)
//   - map writes (insertion may grow buckets)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface boxing: passing, assigning, returning, or sending a
//     concrete value where an interface is expected
//   - any call into package fmt
//   - go statements
//
// Arguments of panic(...) are exempt: a panicking path is cold and
// terminal, so fmt.Sprintf inside a panic is fine (the ISSUE's
// "fmt.* outside panic arguments").
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "report constructs that may heap-allocate inside //tlrob:allocfree regions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		runFile(pass, file)
	}
	return nil
}

func runFile(pass *analysis.Pass, file *ast.File) {
	// Function-level directives: the doc comment tags the whole body.
	consumed := make(map[*ast.Comment]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if analysis.IsDirective(c.Text, analysis.AllocFreeDirective) {
				consumed[c] = true
				if fd.Body != nil {
					checkRegion(pass, file, fd.Body, signatureOf(pass, fd))
				}
			}
		}
	}
	// Statement-level directives: the comment on the line above tags
	// the statement (typically the per-cycle for loop).
	for _, c := range analysis.DirectiveComments(file, analysis.AllocFreeDirective) {
		if consumed[c] {
			continue
		}
		line := pass.Fset.Position(c.Pos()).Line
		stmt := analysis.StmtOnLineAfter(pass.Fset, file, line)
		if stmt == nil {
			pass.Reportf(c.Pos(), "misplaced %s directive: no function doc or following statement to attach to", analysis.AllocFreeDirective)
			continue
		}
		checkRegion(pass, file, stmt, enclosingSignature(pass, file, stmt.Pos()))
	}
}

// signatureOf returns fd's type-checked signature.
func signatureOf(pass *analysis.Pass, fd *ast.FuncDecl) *types.Signature {
	if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// enclosingSignature finds the signature of the innermost function
// containing pos (for return-statement boxing checks in statement
// regions).
func enclosingSignature(pass *analysis.Pass, file *ast.File, pos token.Pos) *types.Signature {
	var sig *types.Signature
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == nil || (pos >= n.Pos() && pos < n.End())
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			sig = signatureOf(pass, n)
		case *ast.FuncLit:
			if t, ok := pass.TypesInfo.Types[n]; ok {
				if s, ok := t.Type.(*types.Signature); ok {
					sig = s
				}
			}
		}
		return true
	})
	return sig
}

// checkRegion walks the tagged region reporting allocating constructs.
// sigStack tracks the innermost function for return-boxing.
func checkRegion(pass *analysis.Pass, file *ast.File, region ast.Node, sig *types.Signature) {
	w := &walker{pass: pass, sigs: []*types.Signature{sig}}
	w.walk(region)
}

type walker struct {
	pass *analysis.Pass
	sigs []*types.Signature
}

func (w *walker) sig() *types.Signature {
	for i := len(w.sigs) - 1; i >= 0; i-- {
		if w.sigs[i] != nil {
			return w.sigs[i]
		}
	}
	return nil
}

func (w *walker) walk(region ast.Node) {
	ast.Inspect(region, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		return w.visit(n)
	})
}

func (w *walker) visit(n ast.Node) bool {
	info := w.pass.TypesInfo
	switch n := n.(type) {
	case *ast.FuncLit:
		w.pass.Reportf(n.Pos(), "function literal allocates a closure")
		if t, ok := info.Types[n]; ok {
			if s, ok := t.Type.(*types.Signature); ok {
				// Walk the body under the literal's signature, then
				// prune this subtree from the outer walk.
				w.sigs = append(w.sigs, s)
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if m == nil {
						return true
					}
					return w.visit(m)
				})
				w.sigs = w.sigs[:len(w.sigs)-1]
				return false
			}
		}
		return true

	case *ast.CallExpr:
		return w.visitCall(n)

	case *ast.CompositeLit:
		switch info.TypeOf(n).Underlying().(type) {
		case *types.Slice:
			w.pass.Reportf(n.Pos(), "slice literal allocates")
		case *types.Map:
			w.pass.Reportf(n.Pos(), "map literal allocates")
		}
		return true

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				w.pass.Reportf(n.Pos(), "address of composite literal allocates")
			}
		}
		return true

	case *ast.GoStmt:
		w.pass.Reportf(n.Pos(), "go statement allocates a goroutine")
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t, ok := info.Types[n]; ok && t.Value == nil && isString(t.Type) {
				w.pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		}
		return true

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if idx, ok := lhs.(*ast.IndexExpr); ok && isMap(info.TypeOf(idx.X)) {
				w.pass.Reportf(lhs.Pos(), "map write may allocate (bucket growth)")
			}
		}
		if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
			for i, rhs := range n.Rhs {
				w.checkBox(rhs, info.TypeOf(n.Lhs[i]), "assignment")
			}
		}
		return true

	case *ast.IncDecStmt:
		if idx, ok := n.X.(*ast.IndexExpr); ok && isMap(info.TypeOf(idx.X)) {
			w.pass.Reportf(n.Pos(), "map write may allocate (bucket growth)")
		}
		return true

	case *ast.SendStmt:
		if ch, ok := info.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
			w.checkBox(n.Value, ch.Elem(), "channel send")
		}
		return true

	case *ast.ReturnStmt:
		sig := w.sig()
		if sig == nil || len(n.Results) != sig.Results().Len() {
			return true // naked return or comma-ok mismatch: skip
		}
		for i, res := range n.Results {
			w.checkBox(res, sig.Results().At(i).Type(), "return")
		}
		return true
	}
	return true
}

func (w *walker) visitCall(call *ast.CallExpr) bool {
	info := w.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return true
	}
	// Type conversion.
	if tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			switch {
			case types.IsInterface(dst) && src != nil && !types.IsInterface(src):
				w.pass.Reportf(call.Pos(), "conversion to interface %s boxes (heap-allocates)", types.TypeString(dst, nil))
			case isString(dst) && (isByteSlice(src) || isRuneSlice(src)):
				w.pass.Reportf(call.Pos(), "[]byte/[]rune to string conversion allocates")
			case (isByteSlice(dst) || isRuneSlice(dst)) && isString(src):
				w.pass.Reportf(call.Pos(), "string to []byte/[]rune conversion allocates")
			}
		}
		return true
	}
	// Builtins.
	if tv.IsBuiltin() {
		switch builtinName(call.Fun) {
		case "make":
			w.pass.Reportf(call.Pos(), "make allocates")
		case "new":
			w.pass.Reportf(call.Pos(), "new allocates")
		case "append":
			w.pass.Reportf(call.Pos(), "append may grow its backing array (allocates)")
		case "panic":
			// Panic paths are cold and terminal: everything inside the
			// argument (fmt.Sprintf, boxing into any) is exempt.
			return false
		}
		return true
	}
	// Calls into fmt always allocate (formatting state + boxing).
	if obj := calleeObject(info, call.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		w.pass.Reportf(call.Pos(), "call to fmt.%s allocates", obj.Name())
		return true
	}
	// Interface boxing of arguments.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		w.checkBox(arg, pt, "argument")
	}
	return true
}

// checkBox reports expr if it is a concrete (non-interface, non-nil)
// value being converted to an interface destination.
func (w *walker) checkBox(expr ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	w.pass.Reportf(expr.Pos(), "%s converts %s to %s (interface boxing allocates)",
		what, types.TypeString(tv.Type, nil), types.TypeString(dst, nil))
}

func builtinName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.ParenExpr:
		return builtinName(f.X)
	}
	return ""
}

func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	case *ast.ParenExpr:
		return calleeObject(info, f.X)
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isByteSlice(t types.Type) bool { return isSliceOf(t, types.Byte) }
func isRuneSlice(t types.Type) bool { return isSliceOf(t, types.Rune) }

func isSliceOf(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}
