// Package golifecycle enforces the fleet's goroutine-lifecycle
// convention in the long-lived packages internal/cluster,
// internal/server, and internal/store: every `go` statement must be
// tracked, either by a sync.WaitGroup.Add that executes before the
// spawn on every path (so a later Wait observes the goroutine), or by
// the goroutine itself selecting/receiving on a stop channel —
// anything of type chan struct{}, which includes ctx.Done(). An
// untracked spawn is a fire-and-forget goroutine that Close/Shutdown
// cannot join and the leak checker will eventually catch at runtime;
// this pass catches it at build time.
//
// The Add-before rule is CFG-must: `wg.Add(1)` inside the goroutine
// body does not count — that is exactly the Add-after-Wait race PR 9
// shipped and review had to fix (Wait can run and return before the
// goroutine starts and Adds), and it gets a dedicated diagnostic.
//
// The analysis is intraprocedural: spawning a named method
// (`go c.healthLoop()`) is only provably tracked via Add-before, even
// if the method's body selects on a stop channel. Genuinely bounded
// spawns that fit neither shape (e.g. a goroutine whose only job is
// to Wait on a WaitGroup and close a done channel) carry a reviewed
// //tlrob:allow(reason). Test files are exempt.
package golifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the golifecycle pass.
var Analyzer = &analysis.Analyzer{
	Name: "golifecycle",
	Doc:  "every go statement in cluster/server/store needs WaitGroup.Add before the spawn or a stop-channel/ctx.Done() receive in the body",
	Run:  run,
}

// tracked names the long-lived packages (by final import-path
// segment) whose spawns must be joinable or cancellable.
var tracked = map[string]bool{"cluster": true, "server": true, "store": true}

func run(pass *analysis.Pass) error {
	if !tracked[lastSegment(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fb := range cfg.FuncBodies(file) {
			check(pass, fb.Body)
		}
	}
	return nil
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := cfg.New(body, cfg.Options{NoReturn: cfg.StdNoReturn(info)})
	flow := &cfg.Flow[string]{
		Join: cfg.Must,
		Transfer: func(n ast.Node, fact cfg.Set[string]) {
			applyAdds(info, n, fact)
		},
	}
	ins := flow.Solve(g)
	for _, blk := range g.Blocks {
		in, ok := ins[blk]
		if !ok {
			continue
		}
		fact := in.Clone()
		for _, n := range blk.Nodes {
			visitSpawns(pass, n, fact)
			applyAdds(info, n, fact)
		}
	}
}

// applyAdds records WaitGroup.Add calls in the node's subtree as
// "add <receiver>" facts. cfg.Inspect prunes function-literal bodies,
// so an Add inside a spawned goroutine never generates a fact — the
// point of the whole analyzer.
func applyAdds(info *types.Info, n ast.Node, fact cfg.Set[string]) {
	cfg.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if key, ok := waitGroupAdd(info, call); ok {
				fact.Add("add " + key)
			}
		}
		return true
	})
}

// visitSpawns reports untracked go statements in the node's subtree,
// given the must-facts holding at the node.
func visitSpawns(pass *analysis.Pass, n ast.Node, fact cfg.Set[string]) {
	cfg.Inspect(n, func(m ast.Node) bool {
		gs, ok := m.(*ast.GoStmt)
		if !ok {
			return true
		}
		for k := range fact {
			if strings.HasPrefix(k, "add ") {
				return true // Add happens-before the spawn on every path
			}
		}
		lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if isLit {
			if hasStopReceive(pass.TypesInfo, lit.Body) {
				return true // the goroutine can be cancelled
			}
			if hasWaitGroupAdd(pass.TypesInfo, lit.Body) {
				pass.Reportf(gs.Pos(), "WaitGroup.Add inside the goroutine body: Wait can run before the goroutine starts and return early (the Add-after-Wait race); move Add before the go statement")
				return true
			}
		}
		pass.Reportf(gs.Pos(), "untracked goroutine: no WaitGroup.Add on every path before the spawn and no stop-channel/ctx.Done() receive in the body; Close/Shutdown cannot join or cancel it")
		return true
	})
}

// waitGroupAdd classifies call as (*sync.WaitGroup).Add, returning the
// receiver expression.
func waitGroupAdd(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Add" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !analysis.IsNamedType(sig.Recv().Type(), "sync", "WaitGroup") {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// hasStopReceive reports whether body (excluding nested function
// literals) receives from — or ranges over — a channel of element
// type struct{}. ctx.Done() returns <-chan struct{}, so the context
// idiom and dedicated stop/quit channels both satisfy this.
func hasStopReceive(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isStopChan(info.TypeOf(n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if isStopChan(info.TypeOf(n.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isStopChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// hasWaitGroupAdd reports whether body contains a WaitGroup.Add call
// (nested literals included: an Add anywhere inside the spawned
// closure is the racy shape).
func hasWaitGroupAdd(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := waitGroupAdd(info, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
