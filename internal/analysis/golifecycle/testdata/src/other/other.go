// Package other is outside the long-lived package set, so golifecycle
// ignores even a bare fire-and-forget spawn.
package other

func fireAndForget() {
	go func() {
		println("ok")
	}()
}
