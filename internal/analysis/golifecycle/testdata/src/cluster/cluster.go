// Package cluster is a fixture standing in for internal/cluster: its
// import path ends in "cluster", so golifecycle applies.
package cluster

import (
	"context"
	"sync"
)

var (
	wg      sync.WaitGroup
	stop    = make(chan struct{})
	results = make(chan int)
)

func work() {}

// --- tracked spawns ---

func addBeforeSpawn() {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func addBeforeMethodSpawn(c *coord) {
	c.wg.Add(1)
	go c.loop()
}

type coord struct{ wg sync.WaitGroup }

func (c *coord) loop() {}

func addCountBeforeLoop(n int) {
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

func ctxDoneSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-results:
				_ = v
			}
		}
	}()
}

func stopChannelSelect() {
	go func() {
		for {
			select {
			case <-stop:
				return
			case results <- 1:
			}
		}
	}()
}

func rangeOverStopChannel() {
	go func() {
		for range stop {
			work()
		}
	}()
}

// --- untracked spawns ---

func fireAndForget() {
	go func() { // want "untracked goroutine"
		results <- 42
	}()
}

func fireAndForgetMethod(c *coord) {
	go c.loop() // want "untracked goroutine"
}

func addAfterWaitRace() {
	go func() { // want "WaitGroup.Add inside the goroutine body"
		wg.Add(1)
		defer wg.Done()
		work()
	}()
}

// addOnOneBranch: the Add does not dominate the spawn, so Wait may
// miss the goroutine.
func addOnOneBranch(b bool) {
	if b {
		wg.Add(1)
	}
	go func() { // want "untracked goroutine"
		work()
	}()
}

// nestedStopReceiveDoesNotCount: the receive lives in an inner
// literal, not the spawned body itself.
func nestedStopReceiveDoesNotCount() {
	go func() { // want "untracked goroutine"
		f := func() { <-stop }
		_ = f
		work()
	}()
}

// boundedJoiner is the reviewed-suppression idiom for a spawn that is
// bounded by construction but fits neither tracked shape.
func boundedJoiner() chan struct{} {
	done := make(chan struct{})
	//tlrob:allow(joiner goroutine: exits when wg drains, joined via done)
	go func() {
		wg.Wait()
		close(done)
	}()
	return done
}
