// Package determinism enforces the bit-identical-replay contract the
// simulator's result cache and golden tests depend on: the same
// (scheme, mix, budget, seed) tuple must produce the same bytes on
// every run, because internal/store keys results by a canonical-JSON
// SHA-256 and the NDJSON/metrics tests compare golden output.
//
// Three rules:
//
//  1. In sim-core packages (pipeline, rob, iq, lsq, regfile, fu,
//     predictor, policy, experiments), non-test files must not call
//     time.Now / time.Since / time.Until — simulated time is the only
//     clock a deterministic simulator may read.
//  2. The same files must not import math/rand (or math/rand/v2):
//     randomness must come from internal/rng, whose seed is part of
//     the cache key.
//  3. Module-wide: a `range` over a map whose body accumulates
//     elements into an outer slice, or writes to an encoder/writer,
//     is flagged unless the accumulated slice is sorted after the
//     loop — Go's randomized map iteration order otherwise leaks
//     straight into cache keys and golden output.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock and global randomness in sim-core packages and unsorted map iteration feeding output anywhere",
	Run:  run,
}

// simCore names the packages (by final import-path segment) whose
// output must be bit-identical across runs.
var simCore = map[string]bool{
	"pipeline": true, "rob": true, "iq": true, "lsq": true,
	"regfile": true, "fu": true, "predictor": true, "policy": true,
	"experiments": true,
}

// writerMethods are method names whose call inside a map range means
// output is being produced in iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// printerFuncs are package-level printing functions with the same
// effect (matched when defined in fmt or log).
var printerFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) error {
	core := simCore[lastSegment(pass.Pkg.Path())]
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		if core {
			checkClockAndRand(pass, file)
		}
		checkMapRanges(pass, file)
	}
	return nil
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkClockAndRand flags time.Now/Since/Until uses and math/rand
// imports in sim-core files.
func checkClockAndRand(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "sim-core package imports %s: use internal/rng so the stream is seed-stable and part of the cache key", path)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		switch obj.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "sim-core package reads the wall clock (time.%s): simulated cycles are the only deterministic clock", obj.Name())
		}
		return true
	})
}

// checkMapRanges flags nondeterministic-ordering map iterations.
func checkMapRanges(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkFuncMapRanges(pass, fd)
	}
}

func checkFuncMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		// Effects of the loop body.
		var accumulated []types.Object
		seen := make(map[types.Object]bool)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if name, isWriter := writerCall(info, m); isWriter {
					pass.Reportf(rng.Pos(), "map iteration order is nondeterministic: loop body writes output via %s; iterate sorted keys instead", name)
					return true
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || builtinName(info, call) != "append" || i >= len(m.Lhs) {
						continue
					}
					obj := assignedObject(info, m.Lhs[i])
					if obj == nil || seen[obj] {
						continue
					}
					// Accumulation into a variable that outlives the
					// loop: declared before the range statement.
					if obj.Pos() < rng.Pos() {
						seen[obj] = true
						accumulated = append(accumulated, obj)
					}
				}
			}
			return true
		})
		for _, obj := range accumulated {
			if !sortedAfter(info, fd.Body, rng, obj) {
				pass.Reportf(rng.Pos(), "map iteration order is nondeterministic: %s is accumulated across the loop without a dominating sort; sort it before use", obj.Name())
			}
		}
		return true
	})
}

// writerCall reports whether call emits output (encoder/writer method
// or fmt/log printer) and names it for the diagnostic.
func writerCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return "", false
	}
	if info.Selections[sel] != nil { // method call
		if writerMethods[obj.Name()] {
			return obj.Name(), true
		}
		return "", false
	}
	if pkg := obj.Pkg(); pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "log") && printerFuncs[obj.Name()] {
		return pkg.Name() + "." + obj.Name(), true
	}
	return "", false
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call positioned after the range statement in the same function.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			// Still descend: a later call may be nested in an earlier block.
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := info.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func refersTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func assignedObject(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := info.Uses[lhs]; obj != nil {
			return obj
		}
		return info.Defs[lhs]
	case *ast.SelectorExpr:
		return info.Uses[lhs.Sel]
	}
	return nil
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isB := info.Uses[id].(*types.Builtin); !isB {
		return ""
	}
	return id.Name
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}
