// Fixture: the map-iteration-order rule applies module-wide — any
// package emitting output or accumulating slices from a map range.
package emit

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// unsortedKeys leaks iteration order into the returned slice.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `without a dominating sort`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the canonical fix: collect, sort, use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceKeys: sort.Slice also dominates the use.
func sortSliceKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// fprint writes output in iteration order.
func fprint(w io.Writer, m map[string]int) {
	for k, v := range m { // want `writes output via fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// builder: writer-method calls count as output too.
func builder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `writes output via WriteString`
		b.WriteString(k)
	}
	return b.String()
}

// rebuild: constructing another map is order-independent.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// reduce: scalar accumulation is order-independent.
func reduce(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// localAppend: the slice is born inside the loop body, so no
// cross-iteration order leaks out.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// clockOK: this package is not sim-core, so the wall clock is allowed.
func clockOK() time.Time { return time.Now() }

// suppressed: the caller sorts; reviewed and waived.
func suppressed(m map[string]int) []string {
	var keys []string
	//tlrob:allow(single caller sorts the result before emitting)
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
