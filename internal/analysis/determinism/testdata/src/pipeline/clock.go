// Fixture: a sim-core package (final path segment "pipeline") must not
// read the wall clock or import math/rand.
package pipeline

import (
	"math/rand" // want `use internal/rng`
	"time"
)

func stamp() int64 {
	t := time.Now()   // want `wall clock \(time.Now\)`
	_ = time.Since(t) // want `wall clock \(time.Since\)`
	_ = time.Until(t) // want `wall clock \(time.Until\)`
	return rand.Int63()
}

// sleepOK: time functions that do not read the clock are fine.
func sleepOK() {
	time.Sleep(0)
}
