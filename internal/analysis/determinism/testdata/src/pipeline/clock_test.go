// Test files are exempt: benchmarks and tests may time themselves.
package pipeline

import "time"

func nowInTest() time.Time { return time.Now() }
