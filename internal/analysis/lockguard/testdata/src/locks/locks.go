// Package locks exercises lockguard: every flagged line carries an
// expectation comment; the unflagged functions document the idioms
// the analyzer must accept.
package locks

import (
	"net"
	"net/http"
	"sync"
	"time"
)

var (
	mu     sync.Mutex
	rw     sync.RWMutex
	ch     = make(chan int)
	stop   = make(chan struct{})
	wg     sync.WaitGroup
	client http.Client
)

// --- blocking operations under a held lock ---

func sendUnderLock() {
	mu.Lock()
	ch <- 1 // want "channel send while holding mu"
	mu.Unlock()
}

func recvUnderLock() {
	mu.Lock()
	defer mu.Unlock()
	<-ch // want "channel receive while holding mu"
}

func selectUnderLock() {
	mu.Lock()
	defer mu.Unlock()
	select { // want "select without default while holding mu"
	case <-ch:
	case <-stop:
	}
}

func selectWithDefaultIsNonBlocking() {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

func sleepUnderLock() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking call time.Sleep while holding mu"
	mu.Unlock()
}

func waitUnderLock() {
	mu.Lock()
	wg.Wait() // want `blocking call WaitGroup.Wait while holding mu`
	mu.Unlock()
}

func httpUnderLock() {
	mu.Lock()
	defer mu.Unlock()
	resp, err := client.Get("http://example.com") // want "blocking call http.Client.Get while holding mu"
	if err != nil {
		return
	}
	resp.Body.Close()
}

func netUnderLock() {
	rw.Lock()
	c, err := net.Dial("tcp", "localhost:0") // want "blocking call net.Dial while holding rw"
	rw.Unlock()
	if err != nil {
		return
	}
	c.Close()
}

func rangeChannelUnderLock() {
	mu.Lock()
	defer mu.Unlock()
	for v := range ch { // want "range over channel while holding mu"
		_ = v
	}
}

// unlockedBeforeBlocking is the idiom the coordinator's fair queue
// uses: release, then wait.
func unlockedBeforeBlocking() {
	mu.Lock()
	n := len(stop)
	mu.Unlock()
	if n == 0 {
		<-ch
	}
}

// branchReleased: the lock is not held on every path reaching the
// send, so the must-analysis stays quiet.
func branchReleased(b bool) {
	mu.Lock()
	if b {
		mu.Unlock()
		ch <- 1
		return
	}
	mu.Unlock()
}

// goroutineDoesNotInheritLock: the spawned body runs without the
// spawner's lock state.
func goroutineDoesNotInheritLock() {
	mu.Lock()
	go func() {
		<-ch
	}()
	mu.Unlock()
}

// --- returning with the lock held ---

func leakOnEarlyReturn(b bool) {
	mu.Lock() // want "mu can still be held when the function returns"
	if b {
		return
	}
	mu.Unlock()
}

func deferredUnlockIsFine(b bool) {
	mu.Lock()
	defer mu.Unlock()
	if b {
		return
	}
}

func deferredClosureUnlockIsFine() {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
}

// --- re-locking ---

func doubleLock() {
	mu.Lock()
	mu.Lock() // want "mu.Lock while mu is already locked"
	mu.Unlock()
	mu.Unlock()
}

func writeThenRead() {
	rw.Lock()
	rw.RLock() // want `rw.RLock while holding rw.Lock`
	rw.RUnlock()
	rw.Unlock()
}

func readThenWrite() {
	rw.RLock()
	rw.Lock() // want `rw.Lock while holding rw.RLock`
	rw.Unlock()
	rw.RUnlock()
}

func unlockBetweenLocksIsFine() {
	mu.Lock()
	mu.Unlock()
	mu.Lock()
	mu.Unlock()
}

// --- embedded mutexes and suppression ---

type guarded struct {
	sync.Mutex
	n int
}

func embeddedMutex(g *guarded) {
	g.Lock()
	ch <- g.n // want "channel send while holding g"
	g.Unlock()
}

// replayFill is provably non-blocking (fresh buffered channel with
// enough capacity), recorded here as the reviewed-suppression idiom.
func replayFill(events []int) chan int {
	out := make(chan int, len(events))
	mu.Lock()
	defer mu.Unlock()
	for _, ev := range events {
		//tlrob:allow(fresh buffered channel, capacity == len(events): cannot block)
		out <- ev
	}
	return out
}
