// Package lockguard flags sync.Mutex / sync.RWMutex misuse that leads
// to deadlocks or stalled peers in the serving fleet:
//
//  1. A lock held at a blocking operation — channel send or receive,
//     range over a channel, select without a default clause,
//     sync.WaitGroup.Wait, time.Sleep, or a call into net / the
//     blocking parts of net/http. Anything waiting on that mutex
//     (every request handler, typically) stalls for as long as the
//     operation does, and a cycle through the channel deadlocks.
//  2. A path returning with the lock still held and no deferred
//     unlock: every later acquirer deadlocks.
//  3. Re-acquiring a lock already held (Lock-after-Lock, and the
//     RWMutex Lock/RLock self-deadlock pairs). sync mutexes are not
//     reentrant.
//
// The analysis is intraprocedural and CFG-precise: "held" is a
// must-fact (true on every path reaching the operation), so a lock
// released on one arm of a branch is not reported on the join. Helpers
// that intentionally return holding a lock, and sends that are
// provably non-blocking, can be suppressed with //tlrob:allow(reason)
// — or better, made non-blocking explicitly with a select+default.
// Mutexes are identified by receiver expression text, so aliasing
// through pointers is invisible; sync.Locker values and TryLock are
// ignored. Test files are exempt.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "flag mutexes held across blocking operations, paths returning with a lock held, and re-locking without an unlock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fb := range cfg.FuncBodies(file) {
			check(pass, fb.Body)
		}
	}
	return nil
}

// Fact-key prefixes: "w " write-held, "r " read-held, "dw "/"dr " a
// deferred Unlock/RUnlock is registered. The rest of the key is the
// receiver expression, e.g. "w c.handoffMu".
const (
	wHeld = "w "
	rHeld = "r "
	wDefr = "dw "
	rDefr = "dr "
)

type checker struct {
	pass *analysis.Pass
	info *types.Info

	// comm holds every communication statement of every select: their
	// sends/receives are accounted for at the select header, not
	// reported individually.
	comm map[ast.Node]bool

	// lockPos remembers where each lock key was last acquired, for
	// return-holding-lock diagnostics.
	lockPos map[string]token.Pos

	// dedup collapses the per-return and at-exit views of the same
	// leaked lock into one diagnostic.
	dedup map[string]bool
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	ck := &checker{
		pass:    pass,
		info:    pass.TypesInfo,
		comm:    make(map[ast.Node]bool),
		lockPos: make(map[string]token.Pos),
		dedup:   make(map[string]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc := c.(*ast.CommClause); cc.Comm != nil {
					ck.comm[cc.Comm] = true
				}
			}
		}
		return true
	})

	g := cfg.New(body, cfg.Options{NoReturn: cfg.StdNoReturn(ck.info)})
	flow := &cfg.Flow[string]{
		Join: cfg.Must,
		Transfer: func(n ast.Node, fact cfg.Set[string]) {
			ck.apply(n, fact, false)
		},
	}
	ins := flow.Solve(g)

	// Replay each reachable block with reporting on.
	for _, blk := range g.Blocks {
		in, ok := ins[blk]
		if !ok {
			continue
		}
		fact := in.Clone()
		for _, n := range blk.Nodes {
			ck.apply(n, fact, true)
		}
	}
	// The implicit return: falling off the end with a lock held.
	if exit, ok := ins[g.Exit]; ok {
		ck.checkLeak(exit)
	}
}

// apply processes one block node's subtree: lock/unlock transfers
// always, diagnostics only when report is set (the solver must stay
// side-effect-free).
func (ck *checker) apply(n ast.Node, fact cfg.Set[string], report bool) {
	// A select's communication op blocks as part of the select, which
	// is judged at its header; don't re-report it here.
	suppress := ck.comm[n]
	var visit func(ast.Node) bool
	visit = func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			for _, a := range m.Call.Args {
				cfg.Inspect(a, visit) // args evaluate now
			}
			ck.registerDefer(m.Call, fact)
			return false
		case *ast.GoStmt:
			for _, a := range m.Call.Args {
				cfg.Inspect(a, visit) // args evaluate now; the call runs elsewhere
			}
			return false
		case *ast.CallExpr:
			if key, op, ok := ck.lockOp(m); ok {
				ck.applyLock(m, key, op, fact, report)
				return true
			}
			if report && !suppress {
				if name, blocking := ck.blockingCall(m); blocking {
					ck.reportHeld(m.Pos(), fact, "blocking call "+name)
				}
			}
			return true
		case *ast.SendStmt:
			if report && !suppress {
				ck.reportHeld(m.Arrow, fact, "channel send")
			}
			return true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && report && !suppress {
				ck.reportHeld(m.OpPos, fact, "channel receive")
			}
			return true
		case *ast.SelectStmt:
			if report && !hasDefault(m) {
				ck.reportHeld(m.Select, fact, "select without default")
			}
			return false
		case *ast.RangeStmt:
			if report {
				if t := ck.info.TypeOf(m.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						ck.reportHeld(m.For, fact, "range over channel")
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			if report {
				ck.checkLeak(fact)
			}
			return true
		}
		return true
	}
	cfg.Inspect(n, visit)
}

func (ck *checker) applyLock(call *ast.CallExpr, key, op string, fact cfg.Set[string], report bool) {
	switch op {
	case "Lock":
		if report {
			if fact.Has(wHeld + key) {
				ck.pass.Reportf(call.Pos(), "%s.Lock while %s is already locked on every path here: sync mutexes are not reentrant, this deadlocks", key, key)
			} else if fact.Has(rHeld + key) {
				ck.pass.Reportf(call.Pos(), "%s.Lock while holding %s.RLock: an RWMutex writer waits for its own reader, this deadlocks", key, key)
			}
		}
		fact.Add(wHeld + key)
		ck.lockPos[key] = call.Pos()
	case "RLock":
		if report && fact.Has(wHeld+key) {
			ck.pass.Reportf(call.Pos(), "%s.RLock while holding %s.Lock: an RWMutex reader waits for the writer, this deadlocks", key, key)
		}
		fact.Add(rHeld + key)
		ck.lockPos[key] = call.Pos()
	case "Unlock":
		fact.Delete(wHeld + key)
	case "RUnlock":
		fact.Delete(rHeld + key)
	}
}

// registerDefer records deferred unlocks: `defer mu.Unlock()` directly,
// or unlock calls inside a deferred function literal.
func (ck *checker) registerDefer(call *ast.CallExpr, fact cfg.Set[string]) {
	if key, op, ok := ck.lockOp(call); ok {
		switch op {
		case "Unlock":
			fact.Add(wDefr + key)
		case "RUnlock":
			fact.Add(rDefr + key)
		}
		return
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := ck.lockOp(inner); ok {
			switch op {
			case "Unlock":
				fact.Add(wDefr + key)
			case "RUnlock":
				fact.Add(rDefr + key)
			}
		}
		return true
	})
}

// reportHeld emits one diagnostic if any lock is must-held at pos.
func (ck *checker) reportHeld(pos token.Pos, fact cfg.Set[string], what string) {
	held := heldKeys(fact)
	if len(held) == 0 {
		return
	}
	ck.pass.Reportf(pos, "%s while holding %s: the lock is held for the full wait, stalling every other acquirer (and risking deadlock)", what, strings.Join(held, ", "))
}

// checkLeak reports locks still held at a return with no deferred
// unlock registered, one diagnostic per lock site.
func (ck *checker) checkLeak(fact cfg.Set[string]) {
	for _, key := range heldKeys(fact) {
		var defr string
		if fact.Has(wHeld + key) {
			defr = wDefr + key
		} else {
			defr = rDefr + key
		}
		if fact.Has(defr) {
			continue
		}
		pos, ok := ck.lockPos[key]
		if !ok {
			continue
		}
		id := key + "@" + ck.pass.Fset.Position(pos).String()
		if ck.dedup[id] {
			continue
		}
		ck.dedup[id] = true
		ck.pass.Reportf(pos, "%s can still be held when the function returns (no unlock on some path and no deferred unlock): the next acquirer deadlocks", key)
	}
}

// heldKeys lists the lock names held in fact, sorted for deterministic
// output.
func heldKeys(fact cfg.Set[string]) []string {
	seen := make(map[string]bool)
	for k := range fact {
		var key string
		switch {
		case strings.HasPrefix(k, wHeld):
			key = k[len(wHeld):]
		case strings.HasPrefix(k, rHeld):
			key = k[len(rHeld):]
		default:
			continue
		}
		seen[key] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockOp classifies call as a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex (including promoted methods of embedded
// mutexes), returning the receiver expression as the lock key.
func (ck *checker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := ck.info.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return "", "", false
	}
	if !analysis.IsNamedType(sig.Recv().Type(), "sync", "Mutex") &&
		!analysis.IsNamedType(sig.Recv().Type(), "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// blockingCall reports whether call is on the curated blocking list.
func (ck *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return "", false
	}
	fn, ok := ck.info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	pkg := fn.Pkg().Path()
	// Any call into package net dials, listens, reads, or writes.
	if pkg == "net" {
		return "net." + name, true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		switch pkg {
		case "time":
			if name == "Sleep" {
				return "time.Sleep", true
			}
		case "net/http":
			switch name {
			case "Get", "Head", "Post", "PostForm",
				"ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
				return "http." + name, true
			}
		}
		return "", false
	}
	recv := sig.Recv().Type()
	switch {
	case analysis.IsNamedType(recv, "sync", "WaitGroup") && name == "Wait":
		return "WaitGroup.Wait", true
	case analysis.IsNamedType(recv, "net/http", "Client"):
		switch name {
		case "Do", "Get", "Head", "Post", "PostForm":
			return "http.Client." + name, true
		}
	case analysis.IsNamedType(recv, "net/http", "Server"):
		switch name {
		case "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
			return "http.Server." + name, true
		}
	case name == "ServeHTTP":
		return "ServeHTTP", true
	}
	return "", false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}
