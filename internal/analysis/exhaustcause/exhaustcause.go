// Package exhaustcause enforces exhaustive handling of the simulator's
// closed enums: telemetry.Cause (the stall-attribution vocabulary) and
// rob.Scheme (the second-level allocation policies).
//
// The telemetry accounting invariant — every thread-cycle is
// dispatch-active or charged to exactly one Cause, so
// active+stalls==cycles — survives the addition of a ninth cause only
// if every switch over the enum either names all members or panics in
// its default clause. The same holds for Scheme: a new scheme that
// silently falls through a switch runs with the wrong allocation
// policy instead of failing loudly.
//
// A switch over one of these enums must therefore either cover every
// member (sentinels like NumCauses/numSchemes are excluded) or carry a
// default clause that panics.
package exhaustcause

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the exhaustcause pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustcause",
	Doc:  "switches over telemetry.Cause and rob.Scheme must cover every member or panic in default",
	Run:  run,
}

// enums lists the guarded enum types as (package-path-suffix, type
// name) pairs; suffix matching lets testdata fixtures stand in for the
// real packages.
var enums = [...]struct{ pkg, typ string }{
	{"telemetry", "Cause"},
	{"rob", "Scheme"},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	var named *types.Named
	for _, e := range enums {
		if analysis.IsNamedType(tagType, e.pkg, e.typ) {
			named = analysis.Named(tagType)
			break
		}
	}
	if named == nil {
		return
	}
	members := enumMembers(named)
	if len(members) == 0 {
		return
	}

	covered := make(map[string]bool)
	hasPanickingDefault := false
	hasSilentDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil { // default clause
			if panics(pass, cc) {
				hasPanickingDefault = true
			} else {
				hasSilentDefault = true
			}
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	if hasPanickingDefault {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	what := "add the missing cases or a panicking default"
	if hasSilentDefault {
		what = "the silent default hides them: add the cases or make the default panic"
	}
	pass.Reportf(sw.Pos(), "switch on %s.%s is not exhaustive: missing %s; %s",
		named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "), what)
}

type member struct {
	name string
	val  string // exact constant representation
}

// enumMembers collects the package-level constants of the named type,
// excluding count sentinels (names beginning with "num").
func enumMembers(named *types.Named) []member {
	scope := named.Obj().Pkg().Scope()
	var out []member
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(types.Unalias(c.Type()), named) {
			continue
		}
		if strings.HasPrefix(strings.ToLower(name), "num") {
			continue
		}
		out = append(out, member{name: name, val: exact(c.Val())})
	}
	return out
}

func exact(v constant.Value) string { return v.ExactString() }

// panics reports whether the clause body contains a call to the panic
// builtin (directly or nested, e.g. under a final if).
func panics(pass *analysis.Pass, cc *ast.CaseClause) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return !found
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && id.Name == "panic" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
