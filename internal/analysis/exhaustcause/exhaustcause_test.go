package exhaustcause_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/exhaustcause"
)

func TestExhaustCause(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), exhaustcause.Analyzer, "stalls", "rob")
}
