// Fixture: switches over telemetry.Cause in a consuming package.
package stalls

import "telemetry"

func missing(c telemetry.Cause) string {
	switch c { // want `missing CauseIQFull`
	case telemetry.CauseNone:
		return "none"
	case telemetry.CauseROBFull:
		return "rob"
	}
	return ""
}

func exhaustive(c telemetry.Cause) string {
	switch c {
	case telemetry.CauseNone, telemetry.CauseROBFull:
		return "a"
	case telemetry.CauseIQFull:
		return "iq"
	}
	return ""
}

func panickingDefault(c telemetry.Cause) string {
	switch c {
	case telemetry.CauseNone:
		return "none"
	default:
		panic("telemetry: unhandled cause")
	}
}

func silentDefault(c telemetry.Cause) string {
	switch c { // want `silent default`
	case telemetry.CauseNone:
		return "none"
	default:
		return "?"
	}
}

// otherSwitch: switches over unrelated types are ignored.
func otherSwitch(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return "other"
}

// untagged: a switch with no tag is a condition chain, not an enum
// dispatch; ignored.
func untagged(c telemetry.Cause) string {
	switch {
	case c == telemetry.CauseNone:
		return "none"
	}
	return "other"
}

// suppressed: reviewed and waived.
func suppressed(c telemetry.Cause) string {
	//tlrob:allow(only reachable with CauseNone by construction)
	switch c {
	case telemetry.CauseNone:
		return "none"
	}
	return ""
}
