// Fixture stand-in for repro/internal/rob: the Scheme enum with an
// unexported sentinel, switched over in its own package.
package rob

type Scheme uint8

const (
	Baseline Scheme = iota
	Reactive
	Predictive
	numSchemes // sentinel: excluded from exhaustiveness
)

func missing(s Scheme) int {
	switch s { // want `missing Predictive, Reactive`
	case Baseline:
		return 0
	}
	return 1
}

// full covers every member; the sentinel is not required.
func full(s Scheme) int {
	switch s {
	case Baseline:
		return 0
	case Reactive:
		return 1
	case Predictive:
		return 2
	}
	return 3
}
