// Fixture stand-in for repro/internal/telemetry: a closed Cause enum
// with a count sentinel.
package telemetry

type Cause uint8

const (
	CauseNone Cause = iota
	CauseROBFull
	CauseIQFull
	NumCauses // sentinel: excluded from exhaustiveness
)
