// Package analysis is a small, self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis. It exists because the
// repository's load-bearing invariants — allocation-free hot paths,
// bit-identical determinism, exhaustive stall accounting, context
// discipline — are otherwise enforced only dynamically (malloc-count
// tests, cache-key divergence, CheckInvariant). Like the paper's DoD
// check, a cheap static approximation at build time replaces an
// expensive dynamic failure later.
//
// The framework deliberately mirrors the x/tools API surface (Analyzer,
// Pass, Reportf, analysistest-style want comments) so the analyzers can
// be ported to a stock multichecker wholesale if the dependency ever
// becomes available; it is implemented entirely on the standard
// library's go/ast and go/types, with package loading driven by
// `go list -export -json` and type import from gc export data.
//
// Diagnostics can be suppressed line-by-line with a
//
//	//tlrob:allow(reason)
//
// comment on the flagged line or the line immediately above it. The
// reason is mandatory by convention (reviewed like a nolint comment);
// see docs/ANALYSIS.md for the contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one static check. Run inspects a single package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments; lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description (first line is the summary).
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to the single package being analyzed.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with a resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, filters suppressed
// diagnostics, and returns the remainder sorted by file, line, column,
// analyzer — a deterministic order suitable for golden CI output.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers)
	return diags, err
}

// A Timing is one analyzer's wall-clock cost summed over every
// package it ran on.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunTimed is Run plus a per-analyzer wall-time breakdown, so the lint
// job can show where its budget goes as the suite grows. Suppression
// maps are computed once per package and shared by all analyzers.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	allows := make([]map[lineKey]bool, len(pkgs))
	for i, pkg := range pkgs {
		allows[i] = allowedLines(pkg.Fset, pkg.Files)
	}
	var diags []Diagnostic
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		for i, pkg := range pkgs {
			allow := allows[i]
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report: func(d Diagnostic) {
					if !allow[lineKey{d.Pos.Filename, d.Pos.Line}] {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}
	Sort(diags)
	return diags, timings, nil
}

// Sort orders diagnostics by file, line, column, analyzer, message.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

type lineKey struct {
	file string
	line int
}

// allowedLines maps every line carrying (or immediately following) a
// //tlrob:allow comment, so diagnostics there are dropped.
func allowedLines(fset *token.FileSet, files []*ast.File) map[lineKey]bool {
	allow := make(map[lineKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				allow[lineKey{pos.Filename, pos.Line}] = true
				allow[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return allow
}

// IsTestFile reports whether the file at pos is a _test.go file.
// Analyzers whose rules apply only to production code call this.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Named unwraps t to a *types.Named, looking through pointers and
// aliases; nil if t is not (a pointer to) a named type.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// IsNamedType reports whether t is the named type pkgSuffix.name,
// where pkgSuffix matches the final segment of the defining package's
// import path (so testdata fixtures can stand in for real packages).
func IsNamedType(t types.Type, pkgSuffix, name string) bool {
	n := Named(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
