// Package cfg builds per-function intraprocedural control-flow graphs
// from go/ast, with no dependency beyond the standard library — the
// structural layer beneath the concurrency-lifecycle analyzers
// (lockguard, golifecycle, bodyclose), the same way go/types underpins
// the PR 4 analyzers. A companion generic dataflow solver (flow.go)
// computes per-block reaching facts over a Graph.
//
// The builder decomposes compound statements: an if/for/switch
// condition becomes the last node of its block with the true edge at
// Succs[0] and the false edge at Succs[1]; each select communication
// clause becomes its own block hanging off the select header; returns
// edge to the synthetic Exit block. Two statements are emitted as
// opaque "header" nodes whose bodies live in other blocks — RangeStmt
// and SelectStmt — so analyzers must walk block nodes with Inspect,
// which prunes those bodies (and nested function literals, which are
// separate functions with their own graphs).
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body. Entry has no
// predecessors; every return (and the implicit fall-off-the-end
// return) edges to Exit. Blocks unreachable from Entry — code after an
// unconditional return, clauses of an empty select — stay in Blocks
// but report Reachable() false and receive no dataflow facts.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	reach []bool
}

// A Block is a straight-line run of AST nodes: simple statements,
// decomposed condition expressions, and header nodes (RangeStmt,
// SelectStmt). Facts flow through Nodes in order, then out along
// Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Cond, when non-nil, is the block's final node and a two-way
	// branch condition: Succs[0] is taken when Cond is true, Succs[1]
	// when it is false. Blocks with other fan-out (switch dispatch,
	// select arms) leave Cond nil.
	Cond ast.Expr
}

// Reachable reports whether b can execute, i.e. is reachable from
// Entry.
func (g *Graph) Reachable(b *Block) bool {
	return b.Index < len(g.reach) && g.reach[b.Index]
}

// Options tunes graph construction.
type Options struct {
	// NoReturn reports whether a call terminates the function (or the
	// process) without returning control, like os.Exit or log.Fatalf.
	// Calls to the panic builtin are always treated as no-return.
	NoReturn func(*ast.CallExpr) bool
}

// New builds the graph for one function body.
func New(body *ast.BlockStmt, opts Options) *Graph {
	b := &builder{
		g:      &Graph{},
		opts:   opts,
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.g.Exit)
	b.g.computeReach()
	return b.g
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label string
	brk   *Block
	cont  *Block // nil for switch and select
}

type builder struct {
	g       *Graph
	cur     *Block
	opts    Options
	targets []target
	labels  map[string]*Block // label name -> block starting the labeled statement
	fallTo  *Block            // fallthrough destination inside a switch clause
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }
func (b *builder) edge(to *Block) { b.cur.Succs = append(b.cur.Succs, to) }
func (b *builder) dead()          { b.cur = b.newBlock() } // fresh block with no predecessors
func (b *builder) push(t target)  { b.targets = append(b.targets, t) }
func (b *builder) pop()           { b.targets = b.targets[:len(b.targets)-1] }
func (b *builder) stmtList(l []ast.Stmt) {
	for _, s := range l {
		b.stmt(s, "")
	}
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) noReturn(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.opts.NoReturn != nil && b.opts.NoReturn(call)
}

// stmt appends s to the graph. label is the pending label when s is
// the statement of a LabeledStmt, consumed by loops and switches for
// labeled break/continue.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.g.Exit)
		b.dead()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.noReturn(call) {
			b.dead()
		}
	default:
		// Assign, Decl, Send, IncDec, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond
	then := b.newBlock()
	cond.Succs = append(cond.Succs, then) // true edge
	done := b.newBlock()
	b.cur = then
	b.stmt(s.Body, "")
	b.edge(done)
	if s.Else != nil {
		els := b.newBlock()
		cond.Succs = append(cond.Succs, els) // false edge
		b.cur = els
		b.stmt(s.Else, "")
		b.edge(done)
	} else {
		cond.Succs = append(cond.Succs, done) // false edge
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock()
	b.edge(head)
	b.cur = head
	body := b.newBlock()
	done := b.newBlock()
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		head.Succs = append(head.Succs, body, done)
	} else {
		head.Succs = append(head.Succs, body) // done reachable only via break
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.push(target{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmt(s.Body, "")
	b.pop()
	b.edge(cont)
	if post != nil {
		b.cur = post
		b.stmt(s.Post, "")
		b.edge(head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.edge(head)
	b.cur = head
	b.add(s) // header node: the loop body lives in its own blocks
	body := b.newBlock()
	done := b.newBlock()
	head.Succs = append(head.Succs, body, done)
	b.push(target{label: label, brk: done, cont: head})
	b.cur = body
	b.stmt(s.Body, "")
	b.pop()
	b.edge(head)
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body, label, true)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, label, false)
}

// caseClauses wires the shared case-dispatch shape of value and type
// switches: the current block fans out to one block per clause (plus
// fall-out to done when no default exists).
func (b *builder) caseClauses(body *ast.BlockStmt, label string, valueSwitch bool) {
	dispatch := b.cur
	done := b.newBlock()
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blks[i] = b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		dispatch.Succs = append(dispatch.Succs, done)
	}
	savedFall := b.fallTo
	b.push(target{label: label, brk: done})
	for i, cc := range clauses {
		b.cur = blks[i]
		if valueSwitch {
			for _, e := range cc.List {
				b.add(e) // guard expressions evaluate on this arm
			}
		}
		b.fallTo = nil
		if i+1 < len(clauses) {
			b.fallTo = blks[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(done)
	}
	b.pop()
	b.fallTo = savedFall
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	b.add(s) // header node: clause bodies live in their own blocks
	sel := b.cur
	done := b.newBlock()
	b.push(target{label: label, brk: done})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		sel.Succs = append(sel.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmtList(cc.Body)
		b.edge(done)
	}
	b.pop()
	// An empty select{} blocks forever: done keeps no predecessors.
	b.cur = done
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(s.Label, false); t != nil {
			b.edge(t)
		}
	case token.CONTINUE:
		if t := b.findTarget(s.Label, true); t != nil {
			b.edge(t)
		}
	case token.GOTO:
		b.edge(b.labelBlock(s.Label.Name))
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.edge(b.fallTo)
		}
	}
	b.dead()
}

// findTarget resolves a break/continue destination, innermost first.
func (b *builder) findTarget(label *ast.Ident, cont bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != nil && t.label != label.Name {
			continue
		}
		if cont {
			if t.cont != nil {
				return t.cont
			}
			continue
		}
		return t.brk
	}
	return nil
}

func (g *Graph) computeReach() {
	g.reach = make([]bool, len(g.Blocks))
	var visit func(b *Block)
	visit = func(b *Block) {
		if g.reach[b.Index] {
			return
		}
		g.reach[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
}

// A FuncBody is one analyzable function body: a declared function or a
// function literal. Literals get their own graphs; their bodies are
// pruned out of the enclosing function's walk by Inspect.
type FuncBody struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
}

// FuncBodies returns every function body in file, outermost first.
func FuncBodies(file *ast.File) []FuncBody {
	var out []FuncBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, FuncBody{Decl: n, Body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncBody{Lit: n, Body: n.Body})
		}
		return true
	})
	return out
}

// Inspect walks the AST beneath one block node in source order, calling
// visit for each node (pre-order; returning false skips the node's
// children). It does not descend into regions owned by other blocks or
// other functions: function-literal bodies (the literal itself is
// visited), the bodies of RangeStmt headers (key/value/operand are
// visited), and everything beneath a SelectStmt header.
func Inspect(n ast.Node, visit func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if !visit(n) {
			return
		}
		for _, e := range []ast.Expr{n.Key, n.Value, n.X} {
			if e != nil {
				inspectPruned(e, visit)
			}
		}
		return
	case *ast.SelectStmt:
		visit(n)
		return
	}
	inspectPruned(n, visit)
}

func inspectPruned(root ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if lit, ok := m.(*ast.FuncLit); ok && m != root {
			visit(lit)
			return false
		}
		return visit(m)
	})
}
