package cfg

import "go/ast"

// A Set is a dataflow fact set over comparable keys.
type Set[K comparable] map[K]struct{}

// Has reports whether k is in s.
func (s Set[K]) Has(k K) bool { _, ok := s[k]; return ok }

// Add inserts k.
func (s Set[K]) Add(k K) { s[k] = struct{}{} }

// Delete removes k.
func (s Set[K]) Delete(k K) { delete(s, k) }

// Clone returns an independent copy of s.
func (s Set[K]) Clone() Set[K] {
	c := make(Set[K], len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// JoinKind selects how facts merge where paths meet.
type JoinKind int

const (
	// May joins by union: a fact holds if it holds on any incoming
	// path. Use for "this resource might still be open".
	May JoinKind = iota
	// Must joins by intersection: a fact holds only if it holds on
	// every incoming path. Use for "this lock is definitely held".
	Must
)

// A Flow is one dataflow problem over a Graph: a join rule, a transfer
// function applied to each block node in order, and an optional
// per-edge refinement.
type Flow[K comparable] struct {
	Join JoinKind

	// Transfer applies the effect of one block node to fact in place.
	Transfer func(n ast.Node, fact Set[K])

	// Edge, when non-nil, refines the fact set flowing along the edge
	// from.Succs[i] — e.g. killing a "response open" fact on the
	// err != nil arm of the branch guarding it.
	Edge func(from *Block, i int, fact Set[K])
}

// Solve iterates to a fixed point and returns the fact set holding at
// entry to each block. Unreachable blocks have no entry in the result.
// Transfer functions must be monotone (pure gen/kill) for termination.
func (f *Flow[K]) Solve(g *Graph) map[*Block]Set[K] {
	in := map[*Block]Set[K]{g.Entry: {}}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[blk].Clone()
		for _, n := range blk.Nodes {
			if f.Transfer != nil {
				f.Transfer(n, out)
			}
		}
		for i, succ := range blk.Succs {
			fact := out.Clone()
			if f.Edge != nil {
				f.Edge(blk, i, fact)
			}
			old, seen := in[succ]
			if !seen {
				in[succ] = fact
				work = append(work, succ)
				continue
			}
			if f.merge(old, fact) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// merge joins src into dst in place, reporting whether dst changed.
// For Must, a block's first-seen fact acts as TOP: later joins only
// shrink it.
func (f *Flow[K]) merge(dst, src Set[K]) bool {
	changed := false
	if f.Join == May {
		for k := range src {
			if !dst.Has(k) {
				dst.Add(k)
				changed = true
			}
		}
		return changed
	}
	for k := range dst {
		if !src.Has(k) {
			dst.Delete(k)
			changed = true
		}
	}
	return changed
}
