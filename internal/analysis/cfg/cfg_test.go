package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses a single function and returns its body.
func parseBody(t *testing.T, fn string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+fn, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// marks extracts the argument names of mark(...) calls in a block, the
// test's way of labeling statements.
func marks(b *Block) []string {
	var out []string
	for _, n := range b.Nodes {
		Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
				if arg, ok := call.Args[0].(*ast.Ident); ok {
					out = append(out, arg.Name)
				}
			}
			return true
		})
	}
	return out
}

func findMark(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, m := range marks(b) {
			if m == name {
				return b
			}
		}
	}
	t.Fatalf("no block contains mark(%s)", name)
	return nil
}

// genKillFlow interprets gen(x)/kill(x) calls as set operations, the
// simplest possible client of the solver.
func genKillFlow(join JoinKind) *Flow[string] {
	return &Flow[string]{
		Join: join,
		Transfer: func(n ast.Node, fact Set[string]) {
			Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || len(call.Args) == 0 {
					return true
				}
				arg, ok := call.Args[0].(*ast.Ident)
				if !ok {
					return true
				}
				switch id.Name {
				case "gen":
					fact.Add(arg.Name)
				case "kill":
					fact.Delete(arg.Name)
				}
				return true
			})
		},
	}
}

func sorted(s Set[string]) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func exitFact(t *testing.T, src string, join JoinKind) []string {
	t.Helper()
	g := New(parseBody(t, src), Options{})
	ins := genKillFlow(join).Solve(g)
	return sorted(ins[g.Exit])
}

func TestIfElseBranchEdges(t *testing.T) {
	g := New(parseBody(t, `func f() {
		if c {
			mark(then)
		} else {
			mark(els)
		}
		mark(done)
	}`), Options{})
	var cond *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no block has Cond set")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2", len(cond.Succs))
	}
	if got := marks(cond.Succs[0]); len(got) != 1 || got[0] != "then" {
		t.Errorf("true edge leads to %v, want [then]", got)
	}
	if got := marks(cond.Succs[1]); len(got) != 1 || got[0] != "els" {
		t.Errorf("false edge leads to %v, want [els]", got)
	}
}

func TestJoinKinds(t *testing.T) {
	src := `func f() {
		gen(a)
		if c {
			kill(a)
			gen(b)
		}
	}`
	if got := exitFact(t, src, Must); len(got) != 0 {
		t.Errorf("must-exit = %v, want empty", got)
	}
	if got := exitFact(t, src, May); strings.Join(got, ",") != "a,b" {
		t.Errorf("may-exit = %v, want [a b]", got)
	}
}

func TestReturnPathsJoinAtExit(t *testing.T) {
	src := `func f() {
		gen(a)
		if c {
			kill(a)
			return
		}
		gen(b)
	}`
	// The early return contributes {} to Exit, the fall-through {a,b}.
	if got := exitFact(t, src, Must); len(got) != 0 {
		t.Errorf("must-exit = %v, want empty", got)
	}
	if got := exitFact(t, src, May); strings.Join(got, ",") != "a,b" {
		t.Errorf("may-exit = %v, want [a b]", got)
	}
}

func TestLoopBreakContinue(t *testing.T) {
	src := `func f() {
		for i := 0; i < n; i++ {
			if c {
				continue
			}
			if d {
				gen(a)
				break
			}
			kill(a)
		}
	}`
	// Exit is reachable via the loop condition (no a on first
	// evaluation) and via break (a held); May must see both.
	if got := exitFact(t, src, May); strings.Join(got, ",") != "a" {
		t.Errorf("may-exit = %v, want [a]", got)
	}
	if got := exitFact(t, src, Must); len(got) != 0 {
		t.Errorf("must-exit = %v, want empty", got)
	}
}

func TestSelectDecomposition(t *testing.T) {
	g := New(parseBody(t, `func f() {
		select {
		case <-ch:
			mark(recv)
		case ch <- v:
			mark(send)
		}
		mark(done)
	}`), Options{})
	var header *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatal("no block holds the select header node")
	}
	if len(header.Succs) != 2 {
		t.Fatalf("select header has %d succs, want 2", len(header.Succs))
	}
	if got := marks(header.Succs[0]); len(got) != 1 || got[0] != "recv" {
		t.Errorf("first clause block has marks %v, want [recv]", got)
	}
	if got := marks(header.Succs[1]); len(got) != 1 || got[0] != "send" {
		t.Errorf("second clause block has marks %v, want [send]", got)
	}
	// The header node must not leak clause bodies into a walk.
	count := 0
	for _, n := range header.Nodes {
		Inspect(n, func(m ast.Node) bool { count++; return true })
	}
	if count != 1 {
		t.Errorf("walking the header visited %d nodes, want 1 (the SelectStmt)", count)
	}
}

func TestRangeHeaderPrunesBody(t *testing.T) {
	g := New(parseBody(t, `func f() {
		for k := range m {
			mark(body)
		}
		mark(done)
	}`), Options{})
	body := findMark(t, g, "body")
	for _, n := range body.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			t.Error("loop body block holds the RangeStmt header")
		}
	}
	var header *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatal("no header block")
	}
	for _, n := range header.Nodes {
		Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == "body" {
				t.Error("Inspect on the range header descended into the body")
			}
			return true
		})
	}
}

func TestGotoAndUnreachable(t *testing.T) {
	g := New(parseBody(t, `func f() {
		goto L
		mark(dead)
	L:
		mark(live)
	}`), Options{})
	if b := findMark(t, g, "dead"); g.Reachable(b) {
		t.Error("statements after goto are reachable")
	}
	if b := findMark(t, g, "live"); !g.Reachable(b) {
		t.Error("labeled statement is unreachable")
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	src := `func f() {
		gen(a)
		if c {
			panic("boom")
		}
		kill(a)
	}`
	// The panic arm never reaches Exit, so even May sees no a.
	if got := exitFact(t, src, May); len(got) != 0 {
		t.Errorf("may-exit = %v, want empty (panic path pruned)", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `func f() {
		switch x {
		case 1:
			gen(a)
			fallthrough
		case 2:
			gen(b)
		default:
			gen(c)
		}
	}`
	if got := exitFact(t, src, May); strings.Join(got, ",") != "a,b,c" {
		t.Errorf("may-exit = %v, want [a b c]", got)
	}
	if got := exitFact(t, src, Must); len(got) != 0 {
		t.Errorf("must-exit = %v, want empty", got)
	}
}

func TestEdgeRefinement(t *testing.T) {
	g := New(parseBody(t, `func f() {
		gen(a)
		if c {
			mark(then)
		}
	}`), Options{})
	f := genKillFlow(May)
	f.Edge = func(from *Block, i int, fact Set[string]) {
		if from.Cond != nil && i == 0 { // refine the true edge only
			fact.Delete("a")
		}
	}
	ins := f.Solve(g)
	then := findMark(t, g, "then")
	if fact := ins[then]; fact.Has("a") {
		t.Error("true-edge refinement did not kill the fact")
	}
	if fact := ins[g.Exit]; !fact.Has("a") {
		t.Error("false edge lost the fact")
	}
}

func TestFuncLitIsSeparateFunction(t *testing.T) {
	body := parseBody(t, `func f() {
		gen(a)
		g := func() {
			kill(a)
		}
		_ = g
	}`)
	g := New(body, Options{})
	ins := genKillFlow(Must).Solve(g)
	if fact := ins[g.Exit]; !fact.Has("a") {
		t.Error("kill inside a function literal leaked into the enclosing flow")
	}
	if fbs := FuncBodies(&ast.File{}); fbs != nil {
		t.Error("FuncBodies of empty file should be nil")
	}
}

func TestLabeledBreak(t *testing.T) {
	src := `func f() {
	outer:
		for {
			for {
				gen(a)
				break outer
			}
		}
		gen(b)
	}`
	if got := exitFact(t, src, Must); strings.Join(got, ",") != "a,b" {
		t.Errorf("must-exit = %v, want [a b]", got)
	}
}
