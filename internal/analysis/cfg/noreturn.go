package cfg

import (
	"go/ast"
	"go/types"
	"strings"
)

// StdNoReturn returns a NoReturn predicate recognizing the standard
// library's process- and goroutine-terminating calls: os.Exit, the
// log.Fatal*/log.Panic* family, and runtime.Goexit. (The panic builtin
// is handled by the builder itself.)
func StdNoReturn(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		name := obj.Name()
		switch obj.Pkg().Path() {
		case "os":
			return name == "Exit"
		case "log":
			return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
		case "runtime":
			return name == "Goexit"
		}
		return false
	}
}
