// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that
// should be flagged carries a trailing comment
//
//	x := make([]int, n) // want `make allocates`
//
// holding one or more Go-quoted regular expressions, each of which
// must match a distinct diagnostic reported on that line; diagnostics
// without a matching expectation (and expectations without a matching
// diagnostic) fail the test. Suppression is honored: a line covered by
// //tlrob:allow produces no diagnostics and therefore needs no want.
//
// Fixture imports resolve against sibling fixture packages first, then
// against the real build (standard library and module packages) via gc
// export data, so fixtures may import "context" or define a stand-in
// "telemetry" package as needed.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package beneath dir (its testdata root) and
// applies the analyzer, comparing diagnostics with want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// TestData returns the caller package's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: no caller information")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

type loader struct {
	fset *token.FileSet
	root string // <dir>/src
	std  types.Importer
	pkgs map[string]*analysis.Package
	mark map[string]bool // import-cycle guard
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		root: filepath.Join(dir, "src"),
		std:  analysis.NewImporter(fset, ".", nil),
		pkgs: make(map[string]*analysis.Package),
		mark: make(map[string]bool),
	}
}

// Import implements types.Importer over fixtures-then-real-build.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.mark[path] {
		return nil, errImportCycle(path)
	}
	l.mark[path] = true
	defer delete(l.mark, path)

	dir := filepath.Join(l.root, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

type errImportCycle string

func (e errImportCycle) Error() string { return "import cycle through fixture " + string(e) }

type lineKey struct {
	file string
	line int
}

type expectation struct {
	re  *regexp.Regexp
	pos token.Position
	hit bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// check matches diagnostics against want comments in the package.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want pattern %q: %v", pos, rest, err)
						break
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: unquoting %q: %v", pos, q, err)
						break
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
						break
					}
					wants[key] = append(wants[key], &expectation{re: re, pos: pos})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants[lineKey{d.Pos.Filename, d.Pos.Line}] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
			}
		}
	}
}
