package predictor

import (
	"testing"
	"testing/quick"
)

func TestGShareLearnsBias(t *testing.T) {
	g, err := NewGShare(2048, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x1000)
	// Train a strongly-taken branch.
	for i := 0; i < 50; i++ {
		h := g.Hist(0)
		pred := g.Predict(pc, h)
		g.PushHist(0, true)
		g.Update(pc, h, true, pred)
	}
	if !g.Predict(pc, g.Hist(0)) {
		t.Fatal("did not learn taken bias")
	}
}

func TestGShareHistoryDistinguishesPaths(t *testing.T) {
	g, _ := NewGShare(2048, 10, 1)
	pc := uint64(0x2000)
	// Outcome correlates with history: taken iff last bit of history set.
	for i := 0; i < 400; i++ {
		h := g.Hist(0)
		taken := h&1 == 1
		pred := g.Predict(pc, h)
		g.PushHist(0, taken) // assume perfect speculation for training
		g.Update(pc, h, taken, pred)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		h := g.Hist(0)
		taken := h&1 == 1
		if g.Predict(pc, h) == taken {
			correct++
		}
		g.PushHist(0, taken)
		g.Update(pc, h, taken, g.Predict(pc, h))
	}
	if correct < 90 {
		t.Fatalf("history-correlated branch predicted %d/100", correct)
	}
}

func TestGShareSetHistMasks(t *testing.T) {
	g, _ := NewGShare(1024, 10, 2)
	g.SetHist(1, ^uint64(0))
	if h := g.Hist(1); h >= 1<<10 {
		t.Fatalf("history not masked: %#x", h)
	}
	if g.Hist(0) != 0 {
		t.Fatal("thread histories not independent")
	}
}

func TestGShareMispredStats(t *testing.T) {
	g, _ := NewGShare(1024, 10, 1)
	h := g.Hist(0)
	pred := g.Predict(0x30, h)
	g.Update(0x30, h, !pred, pred)
	if s := g.Stats(); s.Mispreds != 1 || s.Lookups != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestGShareValidation(t *testing.T) {
	if _, err := NewGShare(1000, 10, 1); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	if _, err := NewGShare(1024, 10, 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestBTBRoundTrip(t *testing.T) {
	b, err := NewBTB(2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(0x4000); ok {
		t.Fatal("cold BTB hit")
	}
	b.Update(0x4000, 0x8888)
	tgt, ok := b.Lookup(0x4000)
	if !ok || tgt != 0x8888 {
		t.Fatalf("lookup = %#x, %v", tgt, ok)
	}
	b.Update(0x4000, 0x9999) // refresh target
	if tgt, _ := b.Lookup(0x4000); tgt != 0x9999 {
		t.Fatalf("target not refreshed: %#x", tgt)
	}
}

func TestBTBEviction(t *testing.T) {
	b, _ := NewBTB(4, 2)       // 2 sets; pcs with same set bits collide
	setStride := uint64(2 * 4) // set index from pc>>2, 2 sets
	b.Update(0x100, 1)
	b.Update(0x100+setStride, 2)
	b.Lookup(0x100) // make first entry MRU
	b.Update(0x100+2*setStride, 3)
	if _, ok := b.Lookup(0x100); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := b.Lookup(0x100 + setStride); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestBTBValidation(t *testing.T) {
	if _, err := NewBTB(10, 3); err == nil {
		t.Error("indivisible geometry accepted")
	}
	if _, err := NewBTB(12, 2); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestLoadHitLearns(t *testing.T) {
	l, err := NewLoadHit(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x5000)
	if !l.Predict(0, pc) {
		t.Fatal("initial prediction should be hit")
	}
	// A consistently missing load must learn to predict miss. Histories
	// shift, so train across the pattern space.
	for i := 0; i < 2000; i++ {
		p := l.Predict(0, pc)
		l.Update(0, pc, false, p)
	}
	if l.Predict(0, pc) {
		t.Fatal("did not learn missing load")
	}
	if s := l.Stats(); s.Mispreds == 0 || s.Lookups < 2000 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLoadHitValidation(t *testing.T) {
	if _, err := NewLoadHit(1000, 1); err == nil {
		t.Error("non-power-of-two table accepted")
	}
}

// Property: BTB lookup after update for the same pc returns that target
// (possibly evicted only by a conflicting update in between — here none).
func TestQuickBTB(t *testing.T) {
	b, _ := NewBTB(2048, 2)
	f := func(pc, tgt uint64) bool {
		b.Update(pc, tgt)
		got, ok := b.Lookup(pc)
		return ok && got == tgt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMLPPredictor(t *testing.T) {
	m, err := NewMLP(256)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained loads predict optimistically.
	if m.Predict(0x40) <= 1 {
		t.Fatal("cold MLP prediction is pessimistic")
	}
	if m.Stats().Untrained != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
	m.Train(0x40, 0)
	if m.Predict(0x40) != 0 {
		t.Fatal("trained isolated miss not remembered")
	}
	m.Train(0x40, 7)
	if m.Predict(0x40) != 7 {
		t.Fatal("last value not stored")
	}
	m.Train(0x40, 1<<20)
	if m.Predict(0x40) != 0x7fff {
		t.Fatal("saturation broken")
	}
	if _, err := NewMLP(100); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}
