// Package predictor implements the front-end predictors of Table 1: a
// per-thread-history gShare branch direction predictor, a 2-way
// set-associative BTB, and the 2-bit load-hit predictor used for
// speculative scheduling of load consumers.
package predictor

import "fmt"

// twoBit is a saturating 2-bit counter vector, init weakly-taken (2).
type twoBit []uint8

func newTwoBit(n int, init uint8) twoBit {
	t := make(twoBit, n)
	for i := range t {
		t[i] = init
	}
	return t
}

func (t twoBit) taken(i int) bool { return t[i] >= 2 }

func (t twoBit) update(i int, taken bool) {
	if taken {
		if t[i] < 3 {
			t[i]++
		}
	} else if t[i] > 0 {
		t[i]--
	}
}

// GShare is a gShare direction predictor with a global history register per
// thread (Table 1: 2K entries, 10-bit history per thread).
type GShare struct {
	table   twoBit
	mask    uint64
	histLen uint
	hist    []uint64 // per thread
	stats   GShareStats
}

// GShareStats counts prediction outcomes.
type GShareStats struct {
	Lookups  uint64
	Mispreds uint64
}

// NewGShare builds a predictor with the given table size (power of two),
// history length in bits, and thread count.
func NewGShare(entries int, histBits uint, threads int) (*GShare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("predictor: gshare entries %d not a power of two", entries)
	}
	if threads < 1 {
		return nil, fmt.Errorf("predictor: need at least one thread")
	}
	return &GShare{
		table:   newTwoBit(entries, 2),
		mask:    uint64(entries - 1),
		histLen: histBits,
		hist:    make([]uint64, threads),
	}, nil
}

func (g *GShare) index(pc, hist uint64) int {
	return int(((pc >> 2) ^ hist) & g.mask)
}

// Hist returns tid's current (speculative) global history.
func (g *GShare) Hist(tid int) uint64 { return g.hist[tid] }

// SetHist overwrites tid's history; used to repair it after a squash,
// passing the snapshot taken at the oldest squashed branch's prediction.
func (g *GShare) SetHist(tid int, hist uint64) {
	g.hist[tid] = hist & ((1 << g.histLen) - 1)
}

// Predict returns the predicted direction for the branch at pc using the
// supplied history snapshot (normally Hist(tid) at fetch time).
func (g *GShare) Predict(pc, hist uint64) bool {
	g.stats.Lookups++
	return g.table.taken(g.index(pc, hist))
}

// PushHist shifts one (speculative) outcome into tid's history; the front
// end calls it right after Predict with the predicted direction.
func (g *GShare) PushHist(tid int, taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	g.hist[tid] = ((g.hist[tid] << 1) | bit) & ((1 << g.histLen) - 1)
}

// Update trains the table at branch resolution. hist must be the history
// snapshot used for the prediction so the same entry is trained.
func (g *GShare) Update(pc, hist uint64, taken, predicted bool) {
	g.table.update(g.index(pc, hist), taken)
	if taken != predicted {
		g.stats.Mispreds++
	}
}

// Stats returns prediction counters.
func (g *GShare) Stats() GShareStats { return g.stats }

// BTB is a 2-way set-associative branch target buffer (Table 1: 2048
// entries, 2-way).
type BTB struct {
	sets    int
	tags    []uint64
	targets []uint64
	valid   []bool
	lru     []uint64 // last-touch stamp; smallest = victim
	stamp   uint64
	assoc   int
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, assoc int) (*BTB, error) {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("predictor: bad BTB geometry %d/%d", entries, assoc)
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("predictor: BTB set count %d not a power of two", sets)
	}
	return &BTB{
		sets:    sets,
		assoc:   assoc,
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint64, entries),
	}, nil
}

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	base := b.set(pc) * b.assoc
	for w := 0; w < b.assoc; w++ {
		if b.valid[base+w] && b.tags[base+w] == pc {
			b.touch(base, w)
			return b.targets[base+w], true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	base := b.set(pc) * b.assoc
	victim := -1
	best := ^uint64(0)
	for w := 0; w < b.assoc; w++ {
		if b.valid[base+w] && b.tags[base+w] == pc {
			b.targets[base+w] = target
			b.touch(base, w)
			return
		}
		if !b.valid[base+w] {
			if victim < 0 || best != 0 {
				victim = w
				best = 0
			}
			continue
		}
		if b.lru[base+w] < best {
			best = b.lru[base+w]
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.targets[base+victim] = target
	b.valid[base+victim] = true
	b.touch(base, victim)
}

func (b *BTB) touch(base, way int) {
	b.stamp++
	b.lru[base+way] = b.stamp
}

// LoadHit is the Table-1 load-hit predictor: 2-bit counters, 1K entries,
// indexed by PC hashed with an 8-bit per-thread global pattern of recent
// load outcomes. It predicts whether a load will hit in the L1 data cache,
// enabling speculative early wakeup of its consumers.
type LoadHit struct {
	table twoBit
	mask  uint64
	hist  []uint64
	stats LoadHitStats
}

// LoadHitStats counts load-hit prediction outcomes.
type LoadHitStats struct {
	Lookups  uint64
	Mispreds uint64
}

// NewLoadHit builds the predictor for the given thread count.
func NewLoadHit(entries int, threads int) (*LoadHit, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("predictor: load-hit entries %d not a power of two", entries)
	}
	return &LoadHit{
		table: newTwoBit(entries, 3), // start strongly "hit"
		mask:  uint64(entries - 1),
		hist:  make([]uint64, threads),
	}, nil
}

func (l *LoadHit) index(tid int, pc uint64) int {
	return int(((pc >> 2) ^ (l.hist[tid] & 0xff)) & l.mask)
}

// Predict returns whether the load at pc is predicted to hit L1.
func (l *LoadHit) Predict(tid int, pc uint64) bool {
	l.stats.Lookups++
	return l.table.taken(l.index(tid, pc))
}

// Update trains with the observed outcome (hit = true).
func (l *LoadHit) Update(tid int, pc uint64, hit, predicted bool) {
	idx := l.index(tid, pc)
	l.table.update(idx, hit)
	bit := uint64(0)
	if hit {
		bit = 1
	}
	l.hist[tid] = (l.hist[tid] << 1) | bit
	if hit != predicted {
		l.stats.Mispreds++
	}
}

// Stats returns prediction counters.
func (l *LoadHit) Stats() LoadHitStats { return l.stats }

// MLP is a last-value predictor of the memory-level parallelism of a miss
// episode, after Eyerman & Eeckhout's MLP-aware fetch policy [25]: for
// each static load that starts an L2-miss episode it remembers how many
// further misses from the same thread overlapped it. A thread whose
// current episode is predicted MLP <= 1 gains nothing from fetching
// deeper and can release its fetch slots.
type MLP struct {
	table []int16 // -1 = untrained
	mask  uint64
	stats MLPStats
}

// MLPStats counts MLP predictor activity.
type MLPStats struct {
	Lookups   uint64
	Untrained uint64
}

// NewMLP builds a predictor with entries slots (power of two).
func NewMLP(entries int) (*MLP, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("predictor: MLP entries %d not a power of two", entries)
	}
	m := &MLP{table: make([]int16, entries), mask: uint64(entries - 1)}
	for i := range m.table {
		m.table[i] = -1
	}
	return m, nil
}

func (m *MLP) index(pc uint64) int { return int((pc >> 2) & m.mask) }

// Predict returns the remembered episode MLP for the load at pc. Untrained
// loads predict optimistically (MLP assumed present) so that cold threads
// are not starved before any evidence exists.
func (m *MLP) Predict(pc uint64) int {
	m.stats.Lookups++
	v := m.table[m.index(pc)]
	if v < 0 {
		m.stats.Untrained++
		return 1 << 14 // optimistic: assume parallelism
	}
	return int(v)
}

// Train stores the observed episode MLP for the load at pc.
func (m *MLP) Train(pc uint64, mlp int) {
	if mlp > 0x7fff {
		mlp = 0x7fff
	}
	m.table[m.index(pc)] = int16(mlp)
}

// Stats returns predictor counters.
func (m *MLP) Stats() MLPStats { return m.stats }
