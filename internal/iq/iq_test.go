package iq

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/uop"
)

func entry(tid int8, seq uint64, srcs ...int32) Entry {
	e := Entry{H: uop.Handle{Tid: tid}, Seq: seq, Op: isa.OpIntAlu, Src: [2]int32{uop.NoReg, uop.NoReg}}
	for i, s := range srcs {
		e.Src[i] = s
		e.Rdy[i] = false
	}
	for i := range e.Rdy {
		if e.Src[i] == uop.NoReg {
			e.Rdy[i] = true
		}
	}
	return e
}

func TestInsertAndCapacity(t *testing.T) {
	q, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !q.Insert(entry(0, uint64(i))) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if q.Insert(entry(0, 99)) {
		t.Fatal("insert into full queue succeeded")
	}
	if q.Len() != 4 || q.Free() != 0 || q.CountOf(0) != 4 {
		t.Fatalf("counts: len=%d free=%d per=%d", q.Len(), q.Free(), q.CountOf(0))
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeupAndSelect(t *testing.T) {
	q, _ := New(8, 1)
	q.Insert(entry(0, 1, 100, 101))
	q.Insert(entry(0, 2)) // always ready
	buf := q.CollectReady(nil)
	if len(buf) != 1 || q.Entry(buf[0]).Seq != 2 {
		t.Fatalf("ready set: %v", buf)
	}
	q.Wakeup(100)
	if len(q.CollectReady(buf)) != 1 {
		t.Fatal("half-woken entry became ready")
	}
	q.Wakeup(101)
	buf = q.CollectReady(buf)
	if len(buf) != 2 {
		t.Fatalf("after full wakeup: %v", buf)
	}
}

func TestOldestFirstOrder(t *testing.T) {
	q, _ := New(8, 1)
	q.Insert(entry(0, 30))
	q.Insert(entry(0, 10))
	q.Insert(entry(0, 20))
	buf := q.CollectReady(nil)
	if len(buf) != 3 {
		t.Fatalf("ready: %v", buf)
	}
	seqs := []uint64{q.Entry(buf[0]).Seq, q.Entry(buf[1]).Seq, q.Entry(buf[2]).Seq}
	if seqs[0] != 10 || seqs[1] != 20 || seqs[2] != 30 {
		t.Fatalf("not oldest-first: %v", seqs)
	}
}

func TestRemoveFreesSlot(t *testing.T) {
	q, _ := New(2, 1)
	q.Insert(entry(0, 1))
	q.Insert(entry(0, 2))
	buf := q.CollectReady(nil)
	q.Remove(buf[0])
	if q.Len() != 1 || q.Free() != 1 {
		t.Fatal("remove did not free")
	}
	if !q.Insert(entry(0, 3)) {
		t.Fatal("slot not reusable")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSquashYounger(t *testing.T) {
	q, _ := New(8, 2)
	q.Insert(entry(0, 10))
	q.Insert(entry(0, 20))
	q.Insert(entry(1, 15)) // other thread, must survive
	q.Insert(entry(0, 30))
	n := q.SquashYounger(0, 10)
	if n != 2 {
		t.Fatalf("squashed %d entries, want 2", n)
	}
	if q.CountOf(0) != 1 || q.CountOf(1) != 1 {
		t.Fatalf("per-thread: %d %d", q.CountOf(0), q.CountOf(1))
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyStats(t *testing.T) {
	q, _ := New(4, 1)
	q.Insert(entry(0, 1))
	q.Tick()
	q.Tick()
	s := q.Stats()
	if s.OccupancySum != 2 || s.Cycles != 2 || s.Inserted != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("zero threads accepted")
	}
}

// Property: inserted minus removed minus squashed equals occupancy, and
// invariants hold across random operation sequences.
func TestQuickIQAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		q, err := New(16, 4)
		if err != nil {
			return false
		}
		seq := uint64(0)
		for _, o := range ops {
			switch o % 4 {
			case 0, 1: // insert
				seq++
				q.Insert(entry(int8(o%4), seq, int32(o)))
			case 2: // wake + remove one ready
				q.Wakeup(int32(o))
				if buf := q.CollectReady(nil); len(buf) > 0 {
					q.Remove(buf[0])
				}
			case 3: // squash one thread's younger half
				q.SquashYounger(int8(o%4), seq/2)
			}
			if q.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
