// Package iq models the shared issue queue (Table 1: 64 entries for the
// 4-way SMT machine). Entries hold renamed source operands with ready
// bits; completed producers broadcast ("wakeup") and ready entries are
// selected oldest-first up to the issue width. An instruction occupies its
// entry from dispatch until it issues — which is precisely why
// load-dependent instructions in the shadow of an L2 miss clog the queue,
// the pressure the paper's DoD threshold exists to avoid.
package iq

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/uop"
)

// Entry is one issue-queue slot.
type Entry struct {
	H     uop.Handle
	Seq   uint64
	Op    isa.OpClass
	Src   [2]int32
	Rdy   [2]bool
	Valid bool
}

// Ready reports whether both sources are available.
func (e *Entry) Ready() bool { return e.Rdy[0] && e.Rdy[1] }

// waiter records that slot was waiting on a register when it was inserted;
// gen detects slots recycled since (stale waiters are skipped).
type waiter struct {
	slot int32
	gen  uint32
}

// IQ is the shared issue queue. The hardware CAM broadcast is modelled in
// RAM terms: each not-ready source registers a waiter on its physical
// register at insert, so Wakeup touches exactly the waiting entries
// instead of scanning every slot, and a ready bitmap lets CollectReady
// enumerate only the slots whose operands have all arrived.
type IQ struct {
	entries   []Entry
	count     int
	perThread []int
	free      []int      // stack of free slot indices (O(1) insert)
	gen       []uint32   // per-slot recycle generation (stale-waiter check)
	ready     []uint64   // bitmap: valid && both sources ready
	waiters   [][]waiter // per physical register, grown on demand
	stats     Stats
}

// Stats counts queue activity.
type Stats struct {
	Inserted     uint64
	Issued       uint64
	Squashed     uint64
	OccupancySum uint64 // summed each cycle by Tick for mean occupancy
	Cycles       uint64
}

// New builds an issue queue with the given size and thread count.
func New(size, threads int) (*IQ, error) {
	if size < 1 || threads < 1 {
		return nil, fmt.Errorf("iq: bad geometry size=%d threads=%d", size, threads)
	}
	q := &IQ{
		entries:   make([]Entry, size),
		perThread: make([]int, threads),
		free:      make([]int, size),
		gen:       make([]uint32, size),
		ready:     make([]uint64, (size+63)/64),
	}
	for i := range q.free {
		q.free[i] = size - 1 - i
	}
	return q, nil
}

// Size returns the queue capacity.
func (q *IQ) Size() int { return len(q.entries) }

// Len returns the live entry count.
func (q *IQ) Len() int { return q.count }

// Free returns the number of free slots.
func (q *IQ) Free() int { return len(q.entries) - q.count }

// CountOf returns how many entries thread tid holds.
func (q *IQ) CountOf(tid int) int { return q.perThread[tid] }

// Stats returns the activity counters.
func (q *IQ) Stats() Stats { return q.stats }

// Tick accumulates occupancy statistics; call once per cycle.
func (q *IQ) Tick() {
	q.stats.OccupancySum += uint64(q.count)
	q.stats.Cycles++
}

// FastForward accumulates k cycles of occupancy statistics in one step —
// the closed form of k consecutive Tick calls with no intervening
// insert, issue or squash.
//
//tlrob:allocfree
func (q *IQ) FastForward(k int64) {
	q.stats.OccupancySum += uint64(q.count) * uint64(k)
	q.stats.Cycles += uint64(k)
}

// HasReady reports whether any live entry has both operands available.
// While true, every cycle must be simulated: selection would issue the
// entry, or re-discover an FU or LSQ conflict (which is itself counted).
//
//tlrob:allocfree
func (q *IQ) HasReady() bool {
	for _, w := range q.ready {
		if w != 0 {
			return true
		}
	}
	return false
}

func (q *IQ) setReady(i int) { q.ready[i>>6] |= 1 << (uint(i) & 63) }
func (q *IQ) clrReady(i int) { q.ready[i>>6] &^= 1 << (uint(i) & 63) }
func (q *IQ) addWaiter(phys int32, i int) {
	for int(phys) >= len(q.waiters) {
		q.waiters = append(q.waiters, nil)
	}
	q.waiters[phys] = append(q.waiters[phys], waiter{slot: int32(i), gen: q.gen[i]})
}

// Insert places an entry in a free slot, returning false when full. Slot
// choice is invisible to timing: selection is oldest-first by sequence
// number, never by slot index.
func (q *IQ) Insert(e Entry) bool {
	if len(q.free) == 0 {
		if q.count != len(q.entries) {
			panic("iq: count out of sync")
		}
		return false
	}
	i := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	e.Valid = true
	q.entries[i] = e
	q.count++
	q.perThread[e.H.Tid]++
	q.stats.Inserted++
	if e.Ready() {
		q.setReady(i)
	} else {
		if !e.Rdy[0] {
			q.addWaiter(e.Src[0], i)
		}
		if !e.Rdy[1] && e.Src[1] != e.Src[0] {
			q.addWaiter(e.Src[1], i)
		}
	}
	return true
}

// Wakeup broadcasts a completed physical register to its waiting entries.
func (q *IQ) Wakeup(phys int32) {
	if int(phys) >= len(q.waiters) {
		return
	}
	ws := q.waiters[phys]
	if len(ws) == 0 {
		return
	}
	for _, w := range ws {
		i := int(w.slot)
		e := &q.entries[i]
		if q.gen[i] != w.gen || !e.Valid {
			continue // slot recycled or squashed since registration
		}
		if e.Src[0] == phys {
			e.Rdy[0] = true
		}
		if e.Src[1] == phys {
			e.Rdy[1] = true
		}
		if e.Ready() {
			q.setReady(i)
		}
	}
	q.waiters[phys] = ws[:0]
}

// CollectReady appends the indices of all ready entries to buf, sorted
// oldest-first by sequence number, and returns it. The sort is a
// hand-rolled insertion sort: sequence numbers are unique so the result
// is the same permutation sort.Slice produced, without the per-call
// interface boxing that allocated on every cycle.
func (q *IQ) CollectReady(buf []int) []int {
	buf = buf[:0]
	for w, word := range q.ready {
		base := w << 6
		for word != 0 {
			buf = append(buf, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && q.entries[buf[j]].Seq < q.entries[buf[j-1]].Seq; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// Entry returns the slot at index i.
func (q *IQ) Entry(i int) *Entry { return &q.entries[i] }

// Remove frees slot i (after issue).
func (q *IQ) Remove(i int) {
	e := &q.entries[i]
	if !e.Valid {
		panic("iq: removing invalid entry")
	}
	q.perThread[e.H.Tid]--
	e.Valid = false
	q.count--
	q.gen[i]++
	q.clrReady(i)
	q.free = append(q.free, i)
	q.stats.Issued++
}

// SquashYounger removes all of tid's entries younger than seq and returns
// how many were dropped.
func (q *IQ) SquashYounger(tid int8, seq uint64) int {
	n := 0
	for i := range q.entries {
		e := &q.entries[i]
		if e.Valid && e.H.Tid == tid && e.Seq > seq {
			e.Valid = false
			q.count--
			q.perThread[tid]--
			q.gen[i]++
			q.clrReady(i)
			q.free = append(q.free, i)
			q.stats.Squashed++
			n++
		}
	}
	return n
}

// CheckInvariants validates the counters (tests only).
func (q *IQ) CheckInvariants() error {
	live := 0
	per := make([]int, len(q.perThread))
	for i := range q.entries {
		e := &q.entries[i]
		rdyBit := q.ready[i>>6]&(1<<(uint(i)&63)) != 0
		if e.Valid {
			live++
			per[e.H.Tid]++
			if rdyBit != e.Ready() {
				return fmt.Errorf("iq: slot %d ready bit %v but entry ready %v", i, rdyBit, e.Ready())
			}
		} else if rdyBit {
			return fmt.Errorf("iq: slot %d ready bit set but invalid", i)
		}
	}
	if live != q.count {
		return fmt.Errorf("iq: count=%d live=%d", q.count, live)
	}
	if len(q.free)+q.count != len(q.entries) {
		return fmt.Errorf("iq: %d free + %d live != %d slots", len(q.free), q.count, len(q.entries))
	}
	for _, i := range q.free {
		if q.entries[i].Valid {
			return fmt.Errorf("iq: slot %d on free list but valid", i)
		}
	}
	for t := range per {
		if per[t] != q.perThread[t] {
			return fmt.Errorf("iq: thread %d count=%d live=%d", t, q.perThread[t], per[t])
		}
	}
	return nil
}
