// Package iq models the shared issue queue (Table 1: 64 entries for the
// 4-way SMT machine). Entries hold renamed source operands with ready
// bits; completed producers broadcast ("wakeup") and ready entries are
// selected oldest-first up to the issue width. An instruction occupies its
// entry from dispatch until it issues — which is precisely why
// load-dependent instructions in the shadow of an L2 miss clog the queue,
// the pressure the paper's DoD threshold exists to avoid.
package iq

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/uop"
)

// Entry is one issue-queue slot.
type Entry struct {
	H     uop.Handle
	Seq   uint64
	Op    isa.OpClass
	Src   [2]int32
	Rdy   [2]bool
	Valid bool
}

// Ready reports whether both sources are available.
func (e *Entry) Ready() bool { return e.Rdy[0] && e.Rdy[1] }

// IQ is the shared issue queue.
type IQ struct {
	entries   []Entry
	count     int
	perThread []int
	stats     Stats
}

// Stats counts queue activity.
type Stats struct {
	Inserted     uint64
	Issued       uint64
	Squashed     uint64
	OccupancySum uint64 // summed each cycle by Tick for mean occupancy
	Cycles       uint64
}

// New builds an issue queue with the given size and thread count.
func New(size, threads int) (*IQ, error) {
	if size < 1 || threads < 1 {
		return nil, fmt.Errorf("iq: bad geometry size=%d threads=%d", size, threads)
	}
	return &IQ{
		entries:   make([]Entry, size),
		perThread: make([]int, threads),
	}, nil
}

// Size returns the queue capacity.
func (q *IQ) Size() int { return len(q.entries) }

// Len returns the live entry count.
func (q *IQ) Len() int { return q.count }

// Free returns the number of free slots.
func (q *IQ) Free() int { return len(q.entries) - q.count }

// CountOf returns how many entries thread tid holds.
func (q *IQ) CountOf(tid int) int { return q.perThread[tid] }

// Stats returns the activity counters.
func (q *IQ) Stats() Stats { return q.stats }

// Tick accumulates occupancy statistics; call once per cycle.
func (q *IQ) Tick() {
	q.stats.OccupancySum += uint64(q.count)
	q.stats.Cycles++
}

// Insert places an entry in a free slot, returning false when full.
func (q *IQ) Insert(e Entry) bool {
	if q.count == len(q.entries) {
		return false
	}
	for i := range q.entries {
		if !q.entries[i].Valid {
			e.Valid = true
			q.entries[i] = e
			q.count++
			q.perThread[e.H.Tid]++
			q.stats.Inserted++
			return true
		}
	}
	panic("iq: count out of sync")
}

// Wakeup broadcasts a completed physical register to all waiting entries.
func (q *IQ) Wakeup(phys int32) {
	for i := range q.entries {
		e := &q.entries[i]
		if !e.Valid {
			continue
		}
		if e.Src[0] == phys {
			e.Rdy[0] = true
		}
		if e.Src[1] == phys {
			e.Rdy[1] = true
		}
	}
}

// CollectReady appends the indices of all ready entries to buf, sorted
// oldest-first by sequence number, and returns it.
func (q *IQ) CollectReady(buf []int) []int {
	buf = buf[:0]
	for i := range q.entries {
		e := &q.entries[i]
		if e.Valid && e.Ready() {
			buf = append(buf, i)
		}
	}
	sort.Slice(buf, func(a, b int) bool {
		return q.entries[buf[a]].Seq < q.entries[buf[b]].Seq
	})
	return buf
}

// Entry returns the slot at index i.
func (q *IQ) Entry(i int) *Entry { return &q.entries[i] }

// Remove frees slot i (after issue).
func (q *IQ) Remove(i int) {
	e := &q.entries[i]
	if !e.Valid {
		panic("iq: removing invalid entry")
	}
	q.perThread[e.H.Tid]--
	e.Valid = false
	q.count--
	q.stats.Issued++
}

// SquashYounger removes all of tid's entries younger than seq and returns
// how many were dropped.
func (q *IQ) SquashYounger(tid int8, seq uint64) int {
	n := 0
	for i := range q.entries {
		e := &q.entries[i]
		if e.Valid && e.H.Tid == tid && e.Seq > seq {
			e.Valid = false
			q.count--
			q.perThread[tid]--
			q.stats.Squashed++
			n++
		}
	}
	return n
}

// CheckInvariants validates the counters (tests only).
func (q *IQ) CheckInvariants() error {
	live := 0
	per := make([]int, len(q.perThread))
	for i := range q.entries {
		if q.entries[i].Valid {
			live++
			per[q.entries[i].H.Tid]++
		}
	}
	if live != q.count {
		return fmt.Errorf("iq: count=%d live=%d", q.count, live)
	}
	for t := range per {
		if per[t] != q.perThread[t] {
			return fmt.Errorf("iq: thread %d count=%d live=%d", t, q.perThread[t], per[t])
		}
	}
	return nil
}
