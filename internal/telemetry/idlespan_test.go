package telemetry

import (
	"reflect"
	"testing"
)

// TestRecordIdleSpanClosedForm pins RecordIdleSpan's contract: charging
// [from, to) in one call must leave the collector bit-identical to
// to-from RecordCycle calls with the same frozen state — stall
// attribution, occupancy sums, sample ring and sampling phase included.
func TestRecordIdleSpanClosedForm(t *testing.T) {
	const threads = 4
	cfg := Config{SampleInterval: 64}

	active := NewCycleState(threads)
	for i := 0; i < threads; i++ {
		active.Dispatched[i] = uint8(1 + i)
		active.ROBLen[i] = int32(10 * i)
	}
	active.IQLen = 20
	active.IntRegs = 100
	active.FPRegs = 50
	active.Owner = 1

	idle := NewCycleState(threads)
	idle.Causes[0] = CauseROBFull
	idle.Causes[1] = CauseL2GrantWait
	idle.Causes[2] = CauseSquashRefill
	idle.Causes[3] = CauseFinished
	for i := 0; i < threads; i++ {
		idle.ROBLen[i] = int32(32 - i)
	}
	idle.IQLen = 61
	idle.IntRegs = 200
	idle.FPRegs = 13
	idle.Owner = -1

	// Spans chosen to land samples strictly inside a span, on its first
	// cycle, and on the cycle right after it ends.
	for _, span := range []struct{ from, to int64 }{
		{100, 600}, // interior samples
		{128, 129}, // single cycle, on a sample boundary
		{130, 190}, // no interior sample
		{0, 500},   // from the very first cycle
	} {
		perCycle := NewCollector(threads, cfg)
		closed := NewCollector(threads, cfg)

		now := int64(0)
		for ; now < span.from; now++ {
			perCycle.RecordCycle(now, active)
			closed.RecordCycle(now, active)
		}
		for ; now < span.to; now++ {
			perCycle.RecordCycle(now, idle)
		}
		closed.RecordIdleSpan(span.from, span.to, idle)
		for end := span.to + 100; now < end; now++ {
			perCycle.RecordCycle(now, active)
			closed.RecordCycle(now, active)
		}

		if !reflect.DeepEqual(perCycle, closed) {
			t.Errorf("span [%d,%d): closed form diverged from per-cycle recording\n per-cycle: %+v\n closed:    %+v",
				span.from, span.to, perCycle.Summary(), closed.Summary())
		}
	}
}

// TestRecordIdleSpanEmpty checks the degenerate spans are no-ops.
func TestRecordIdleSpanEmpty(t *testing.T) {
	c := NewCollector(2, Config{SampleInterval: 64})
	ref := NewCollector(2, Config{SampleInterval: 64})
	st := NewCycleState(2)
	c.RecordIdleSpan(10, 10, st)
	c.RecordIdleSpan(10, 5, st)
	if !reflect.DeepEqual(c, ref) {
		t.Error("empty span mutated the collector")
	}
}
