// Package telemetry is the simulator's observability layer: cycle-level
// stall attribution, structural occupancy tracing and second-level grant
// lifetimes, recorded into preallocated ring buffers so the enabled path
// never allocates per cycle. The pipeline drives a Collector with one
// RecordCycle call per simulated cycle; when telemetry is disabled the
// pipeline holds a nil Collector and skips every call behind a nil
// check, so the disabled path costs one predictable branch per cycle.
//
// Stall attribution follows a strict accounting rule: every cycle of
// every thread is either dispatch-active (the thread inserted at least
// one instruction into the window) or charged to exactly one Cause. The
// invariant
//
//	activeCycles[t] + Σ_cause stallCycles[t][cause] == total cycles
//
// holds for every thread and is verified by Summary.CheckInvariant.
package telemetry

import "fmt"

// Cause classifies why a thread failed to dispatch during one cycle.
// Exactly one cause is charged per non-dispatching thread-cycle.
type Cause uint8

const (
	// CauseNone marks a dispatch-active cycle; it is never charged.
	CauseNone Cause = iota
	// CauseROBFull: the thread's reorder-buffer allocation is exhausted
	// (first level for non-owners, first+second for the owner, the whole
	// pool under the shared scheme) with no outstanding L2 miss that a
	// second-level grant could cover.
	CauseROBFull
	// CauseL2GrantWait: the first-level ROB is full while an L2 miss is
	// outstanding and the thread does not hold the second-level
	// partition — the cycles the two-level schemes exist to reclaim.
	CauseL2GrantWait
	// CauseIQFull: no issue-queue entry was available, the resource
	// policy withheld one, or the owner's co-runner headroom reserve hit.
	CauseIQFull
	// CauseRegFile: no rename register of the needed class (or the
	// owner's rename-pool reserve hit).
	CauseRegFile
	// CauseLSQFull: the thread's load/store queue is full.
	CauseLSQFull
	// CauseFetchStarved: nothing dispatch-eligible in the front end —
	// the fetch queue is empty (I-cache stall, redirect) or its head has
	// not cleared the front-end pipeline.
	CauseFetchStarved
	// CauseSquashRefill: the front end is empty because of the squash
	// machinery, not ordinary fetch starvation — the FLUSH policy gates
	// the thread until the flushing load returns, or squashed real-path
	// instructions are still queued for re-fetch in the replay queue.
	CauseSquashRefill
	// CauseDispatchBW: the head instruction was eligible but the shared
	// dispatch width was consumed by other threads first.
	CauseDispatchBW
	// CauseFinished: the thread already committed its instruction budget.
	CauseFinished

	// NumCauses bounds the Cause space (array sizing).
	NumCauses
)

var causeNames = [NumCauses]string{
	"none", "rob_full", "l2_grant_wait", "iq_full", "regfile",
	"lsq_full", "fetch_starved", "squash_refill", "dispatch_bw", "finished",
}

// String returns the cause's snake_case name (stable: used as the JSON
// and Prometheus label vocabulary).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// CauseByName resolves a snake_case cause name; ok is false for unknown
// names and for "none" is true (CauseNone).
func CauseByName(name string) (Cause, bool) {
	for i, n := range causeNames {
		if n == name {
			return Cause(i), true
		}
	}
	return CauseNone, false
}

// Config sizes a Collector. The zero value of every field is replaced
// by a default.
type Config struct {
	// SampleInterval is the cycle period of occupancy samples
	// (default 64). Stall attribution is exact regardless: it is
	// accumulated every cycle, not sampled.
	SampleInterval int64
	// SampleCap bounds the occupancy ring (default 1<<14 samples).
	// When full, the oldest samples are overwritten and counted in
	// Summary.SamplesDropped — truncation is reported, never silent.
	SampleCap int
	// GrantCap bounds the grant-interval ring (default 4096), with the
	// same oldest-overwritten-and-counted policy.
	GrantCap int
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = 64
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 1 << 14
	}
	if c.GrantCap <= 0 {
		c.GrantCap = 4096
	}
	return c
}

// CycleState is the per-cycle snapshot the pipeline fills and hands to
// RecordCycle. The pipeline owns one instance and reuses it every cycle;
// the collector copies out what it keeps. All per-thread slices have
// length Threads.
type CycleState struct {
	// Dispatched[t] is how many instructions thread t inserted this
	// cycle; zero means Causes[t] charges the cycle.
	Dispatched []uint8
	// Causes[t] is the stall cause for threads with Dispatched[t]==0
	// (ignored otherwise).
	Causes []Cause
	// ROBLen[t] is thread t's reorder-buffer occupancy after dispatch.
	ROBLen []int32
	// IQLen, IntRegs and FPRegs are the shared-structure occupancies.
	IQLen   int32
	IntRegs int32
	FPRegs  int32
	// Owner is the second-level holder (-1 when unowned).
	Owner int8
}

// NewCycleState allocates a snapshot for the given thread count.
func NewCycleState(threads int) *CycleState {
	return &CycleState{
		Dispatched: make([]uint8, threads),
		Causes:     make([]Cause, threads),
		ROBLen:     make([]int32, threads),
	}
}

// Reset clears the per-thread dispatch outcome for the next cycle.
//
//tlrob:allocfree
func (st *CycleState) Reset() {
	for i := range st.Dispatched {
		st.Dispatched[i] = 0
		st.Causes[i] = CauseNone
	}
}

// GrantInterval is one tenancy of the shared second level: acquisition
// to release, with the owning thread and the PC of the triggering miss.
type GrantInterval struct {
	Tid   int8   `json:"tid"`
	PC    uint64 `json:"pc"`    // load that opened the tenancy
	Start int64  `json:"start"` // acquisition cycle
	End   int64  `json:"end"`   // release cycle (>= Start)
	// Misses counts the granted misses served under this tenancy (1 +
	// piggybacks).
	Misses int32 `json:"misses"`
}

// Collector accumulates one run's telemetry. Not safe for concurrent
// use: exactly one simulated CPU drives it. All per-cycle state is
// preallocated at construction; RecordCycle and the grant hooks never
// allocate.
type Collector struct {
	cfg     Config
	threads int

	// Stall attribution (exact, per cycle).
	cycles    int64
	active    []uint64 // dispatch-active cycles per thread
	uops      []uint64 // instructions dispatched per thread
	stalls    []uint64 // [tid*NumCauses + cause]
	ownedCyc  uint64   // cycles the second level was held by anyone
	robOccSum []uint64 // per-thread ROB occupancy summed every cycle
	iqOccSum  uint64
	intRegSum uint64
	fpRegSum  uint64

	// Occupancy samples: struct-of-arrays ring, one row per sample.
	nextSampleAt int64
	sHead, sLen  int
	sDropped     uint64
	sCycle       []int64
	sIQ          []int32
	sInt, sFP    []int32
	sOwner       []int8
	sROB         []int32 // SampleCap*threads, row-major

	// Grant intervals.
	gHead, gLen int
	gDropped    uint64
	grants      []GrantInterval
	open        GrantInterval
	openActive  bool
	grantCount  uint64 // tenancies opened (including evicted ones)
	piggybacks  uint64
	heldCycles  uint64 // closed-tenancy cycles
}

// NewCollector builds a collector; threads must be positive.
func NewCollector(threads int, cfg Config) *Collector {
	if threads < 1 {
		panic("telemetry: need at least one thread")
	}
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:          cfg,
		threads:      threads,
		active:       make([]uint64, threads),
		uops:         make([]uint64, threads),
		stalls:       make([]uint64, threads*int(NumCauses)),
		robOccSum:    make([]uint64, threads),
		nextSampleAt: 0,
		sCycle:       make([]int64, cfg.SampleCap),
		sIQ:          make([]int32, cfg.SampleCap),
		sInt:         make([]int32, cfg.SampleCap),
		sFP:          make([]int32, cfg.SampleCap),
		sOwner:       make([]int8, cfg.SampleCap),
		sROB:         make([]int32, cfg.SampleCap*threads),
		grants:       make([]GrantInterval, cfg.GrantCap),
	}
	return c
}

// Config returns the collector's (defaults-filled) configuration.
func (c *Collector) Config() Config { return c.cfg }

// Cycles returns how many cycles have been recorded.
func (c *Collector) Cycles() int64 { return c.cycles }

// RecordCycle charges one simulated cycle: dispatch outcome per thread,
// occupancy accumulation, and (on sample cycles) one ring-buffer sample.
// It never allocates.
//
//tlrob:allocfree
func (c *Collector) RecordCycle(now int64, st *CycleState) {
	c.cycles++
	for t := 0; t < c.threads; t++ {
		if st.Dispatched[t] > 0 {
			c.active[t]++
			c.uops[t] += uint64(st.Dispatched[t])
		} else {
			c.stalls[t*int(NumCauses)+int(st.Causes[t])]++
		}
		c.robOccSum[t] += uint64(st.ROBLen[t])
	}
	c.iqOccSum += uint64(st.IQLen)
	c.intRegSum += uint64(st.IntRegs)
	c.fpRegSum += uint64(st.FPRegs)
	if st.Owner >= 0 {
		c.ownedCyc++
	}
	if now >= c.nextSampleAt {
		c.sample(now, st)
		c.nextSampleAt = now + c.cfg.SampleInterval
	}
}

// RecordIdleSpan charges the cycles [from, to) in closed form — the
// exact equivalent of to-from RecordCycle calls with an unchanging
// machine state. st must describe that state: every thread is treated
// as non-dispatching and charged to st.Causes[t] (st.Dispatched is
// ignored), and the occupancy fields are accumulated multiplied by the
// span length. Samples that fall inside the span are emitted at exactly
// the cycles the per-cycle path would have picked, so occupancy traces
// are bit-identical whichever path recorded the span. The active+stalls
// == cycles invariant is preserved cause-by-cause. It never allocates.
//
//tlrob:allocfree
func (c *Collector) RecordIdleSpan(from, to int64, st *CycleState) {
	if to <= from {
		return
	}
	k := uint64(to - from)
	c.cycles += to - from
	for t := 0; t < c.threads; t++ {
		c.stalls[t*int(NumCauses)+int(st.Causes[t])] += k
		c.robOccSum[t] += uint64(st.ROBLen[t]) * k
	}
	c.iqOccSum += uint64(st.IQLen) * k
	c.intRegSum += uint64(st.IntRegs) * k
	c.fpRegSum += uint64(st.FPRegs) * k
	if st.Owner >= 0 {
		c.ownedCyc += k
	}
	// RecordCycle samples at the first cycle >= nextSampleAt and then
	// every SampleInterval; replay that schedule across the span.
	if c.nextSampleAt < from {
		c.nextSampleAt = from
	}
	for c.nextSampleAt < to {
		c.sample(c.nextSampleAt, st)
		c.nextSampleAt += c.cfg.SampleInterval
	}
}

//tlrob:allocfree
func (c *Collector) sample(now int64, st *CycleState) {
	var pos int
	if c.sLen < c.cfg.SampleCap {
		pos = (c.sHead + c.sLen) % c.cfg.SampleCap
		c.sLen++
	} else {
		pos = c.sHead
		c.sHead = (c.sHead + 1) % c.cfg.SampleCap
		c.sDropped++
	}
	c.sCycle[pos] = now
	c.sIQ[pos] = st.IQLen
	c.sInt[pos] = st.IntRegs
	c.sFP[pos] = st.FPRegs
	c.sOwner[pos] = st.Owner
	copy(c.sROB[pos*c.threads:(pos+1)*c.threads], st.ROBLen)
}

// Samples returns the retained occupancy samples oldest-first. The
// visit callback receives the sample cycle, the per-thread ROB
// occupancies (valid only during the call) and the shared occupancies.
func (c *Collector) Samples(visit func(cycle int64, rob []int32, iq, intRegs, fpRegs int32, owner int8)) {
	for i := 0; i < c.sLen; i++ {
		pos := (c.sHead + i) % c.cfg.SampleCap
		visit(c.sCycle[pos], c.sROB[pos*c.threads:(pos+1)*c.threads],
			c.sIQ[pos], c.sInt[pos], c.sFP[pos], c.sOwner[pos])
	}
}

// SampleCount returns how many occupancy samples are retained.
func (c *Collector) SampleCount() int { return c.sLen }

// GrantAcquired opens a second-level tenancy: thread tid took the
// partition at cycle now for the miss at pc. Signature-compatible with
// rob.TwoLevel's OnGrantAcquired hook.
//
//tlrob:allocfree
func (c *Collector) GrantAcquired(tid int, pc uint64, now int64) {
	if c.openActive {
		// Defensive: a release was missed; close the stale tenancy at
		// the new acquisition cycle so intervals never overlap.
		c.GrantReleased(int(c.open.Tid), now)
	}
	c.open = GrantInterval{Tid: int8(tid), PC: pc, Start: now, Misses: 1}
	c.openActive = true
	c.grantCount++
}

// GrantPiggyback records a further miss joining the open tenancy.
//
//tlrob:allocfree
func (c *Collector) GrantPiggyback(tid int, pc uint64, now int64) {
	if c.openActive {
		c.open.Misses++
	}
	c.piggybacks++
}

// GrantReleased closes the open tenancy at cycle now.
//
//tlrob:allocfree
func (c *Collector) GrantReleased(tid int, now int64) {
	if !c.openActive {
		return
	}
	c.open.End = now
	c.heldCycles += uint64(now - c.open.Start)
	var pos int
	if c.gLen < c.cfg.GrantCap {
		pos = (c.gHead + c.gLen) % c.cfg.GrantCap
		c.gLen++
	} else {
		pos = c.gHead
		c.gHead = (c.gHead + 1) % c.cfg.GrantCap
		c.gDropped++
	}
	c.grants[pos] = c.open
	c.openActive = false
}

// Grants returns the retained tenancy intervals oldest-first. The slice
// passed to visit is the ring storage; do not retain it.
func (c *Collector) Grants(visit func(g GrantInterval)) {
	for i := 0; i < c.gLen; i++ {
		visit(c.grants[(c.gHead+i)%c.cfg.GrantCap])
	}
}

// Finish closes any still-open grant at the run's final cycle. Call it
// once when simulation ends, before Summary or trace export.
func (c *Collector) Finish(now int64) {
	if c.openActive {
		c.GrantReleased(int(c.open.Tid), now)
	}
}

// ---- summary ----

// CauseCycles is one (cause, cycles) cell of a stall breakdown.
type CauseCycles struct {
	Cause  string `json:"cause"`
	Cycles uint64 `json:"cycles"`
}

// ThreadSummary is one thread's dispatch accounting over the run.
type ThreadSummary struct {
	ActiveCycles   uint64 `json:"active_cycles"`
	DispatchedUops uint64 `json:"dispatched_uops"`
	// Stalls lists every cause with a non-zero charge, in Cause order.
	Stalls []CauseCycles `json:"stalls,omitempty"`
	// MeanROBOcc is the thread's mean ROB occupancy (exact: accumulated
	// every cycle, not from samples).
	MeanROBOcc float64 `json:"mean_rob_occupancy"`
}

// StallCycles returns the cycles charged to the named cause (0 when
// absent from the breakdown).
func (t *ThreadSummary) StallCycles(cause Cause) uint64 {
	name := cause.String()
	for _, s := range t.Stalls {
		if s.Cause == name {
			return s.Cycles
		}
	}
	return 0
}

// TotalStallCycles sums the thread's charged stall cycles.
func (t *ThreadSummary) TotalStallCycles() uint64 {
	var sum uint64
	for _, s := range t.Stalls {
		sum += s.Cycles
	}
	return sum
}

// GrantsSummary aggregates the second-level tenancy intervals.
type GrantsSummary struct {
	Count      uint64  `json:"count"`
	Piggybacks uint64  `json:"piggybacks"`
	HeldCycles uint64  `json:"held_cycles"`
	MeanHeld   float64 `json:"mean_held_cycles"`
}

// Summary is the compact per-run telemetry digest merged into
// internal/report rows, simd results and NDJSON progress events.
type Summary struct {
	Cycles         int64           `json:"cycles"`
	Threads        []ThreadSummary `json:"threads"`
	MeanIQOcc      float64         `json:"mean_iq_occupancy"`
	MeanIntRegs    float64         `json:"mean_int_regs"`
	MeanFPRegs     float64         `json:"mean_fp_regs"`
	L2OwnedFrac    float64         `json:"l2_owned_frac"`
	Grants         GrantsSummary   `json:"grants"`
	SampleInterval int64           `json:"sample_interval"`
	Samples        int             `json:"samples"`
	SamplesDropped uint64          `json:"samples_dropped,omitempty"`
	GrantsDropped  uint64          `json:"grants_dropped,omitempty"`
}

// Summary digests the collector. Call Finish first so open grants are
// included.
func (c *Collector) Summary() *Summary {
	s := &Summary{
		Cycles:         c.cycles,
		Threads:        make([]ThreadSummary, c.threads),
		SampleInterval: c.cfg.SampleInterval,
		Samples:        c.sLen,
		SamplesDropped: c.sDropped,
		GrantsDropped:  c.gDropped,
		Grants: GrantsSummary{
			Count:      c.grantCount,
			Piggybacks: c.piggybacks,
			HeldCycles: c.heldCycles,
		},
	}
	if c.cycles > 0 {
		cyc := float64(c.cycles)
		s.MeanIQOcc = float64(c.iqOccSum) / cyc
		s.MeanIntRegs = float64(c.intRegSum) / cyc
		s.MeanFPRegs = float64(c.fpRegSum) / cyc
		s.L2OwnedFrac = float64(c.ownedCyc) / cyc
	}
	if c.grantCount > 0 {
		s.Grants.MeanHeld = float64(c.heldCycles) / float64(c.grantCount)
	}
	for t := 0; t < c.threads; t++ {
		ts := ThreadSummary{ActiveCycles: c.active[t], DispatchedUops: c.uops[t]}
		for cause := CauseNone + 1; cause < NumCauses; cause++ {
			if n := c.stalls[t*int(NumCauses)+int(cause)]; n > 0 {
				ts.Stalls = append(ts.Stalls, CauseCycles{Cause: cause.String(), Cycles: n})
			}
		}
		if c.cycles > 0 {
			ts.MeanROBOcc = float64(c.robOccSum[t]) / float64(c.cycles)
		}
		s.Threads[t] = ts
	}
	return s
}

// CheckInvariant verifies the stall-accounting identity: for every
// thread, active cycles plus charged stall cycles equal total cycles.
func (s *Summary) CheckInvariant() error {
	for t := range s.Threads {
		th := &s.Threads[t]
		got := th.ActiveCycles + th.TotalStallCycles()
		if got != uint64(s.Cycles) {
			return fmt.Errorf("telemetry: thread %d accounts for %d of %d cycles (active %d + stalls %d)",
				t, got, s.Cycles, th.ActiveCycles, th.TotalStallCycles())
		}
	}
	return nil
}

// StallTotals sums stall cycles per cause across threads, plus the
// total dispatch-active cycles — the aggregation simd's /metrics
// exports. The returned array is indexed by Cause.
func (s *Summary) StallTotals() (stalls [NumCauses]uint64, active uint64) {
	for t := range s.Threads {
		th := &s.Threads[t]
		active += th.ActiveCycles
		for _, cc := range th.Stalls {
			if cause, ok := CauseByName(cc.Cause); ok {
				stalls[cause] += cc.Cycles
			}
		}
	}
	return stalls, active
}
