package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome Trace Format export (the JSON flavour Perfetto's legacy
// importer accepts: https://ui.perfetto.dev, "Open trace file"). One
// simulated cycle maps to one microsecond of trace time (the "ts" and
// "dur" unit of the format), so Perfetto's time axis reads directly as
// cycles ×1e-6.
//
// Track layout:
//
//   - pid 1 "simulated core": one thread track per hardware thread with
//     a per-thread ROB occupancy counter ("rob_occupancy/t<N>").
//   - pid 2 "shared structures": counters for the issue queue and the
//     rename register pools, plus one slice track carrying the
//     second-level grant tenancies as duration ("X") events named
//     "grant t<N>" with the triggering miss PC in args.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const (
	pidCore   = 1
	pidShared = 2
	tidGrants = 0
)

// WriteChromeTrace renders the collector's rings as a Chrome Trace
// Format JSON document. Export is not a hot path; it allocates freely.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"time_unit":       "1 ts = 1 simulated cycle",
			"sample_interval": fmt.Sprintf("%d cycles", c.cfg.SampleInterval),
		},
	}
	ev := make([]chromeEvent, 0,
		8+2*c.threads+c.sLen*(c.threads+3)+c.gLen)

	meta := func(pid, tid int, name, value string) {
		ev = append(ev, chromeEvent{
			Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": value},
		})
	}
	meta(pidCore, 0, "process_name", "simulated core")
	for t := 0; t < c.threads; t++ {
		meta(pidCore, t, "thread_name", fmt.Sprintf("hw thread %d", t))
	}
	meta(pidShared, tidGrants, "process_name", "shared structures")
	meta(pidShared, tidGrants, "thread_name", "second-level ROB")

	c.Samples(func(cycle int64, rob []int32, iq, intRegs, fpRegs int32, owner int8) {
		for t := 0; t < c.threads; t++ {
			ev = append(ev, chromeEvent{
				Name: fmt.Sprintf("rob_occupancy/t%d", t), Ph: "C",
				Ts: cycle, Pid: pidCore, Tid: t, Cat: "occupancy",
				Args: map[string]any{"entries": rob[t]},
			})
		}
		ev = append(ev,
			chromeEvent{Name: "iq_occupancy", Ph: "C", Ts: cycle,
				Pid: pidShared, Tid: tidGrants, Cat: "occupancy",
				Args: map[string]any{"entries": iq}},
			chromeEvent{Name: "int_regs_inflight", Ph: "C", Ts: cycle,
				Pid: pidShared, Tid: tidGrants, Cat: "occupancy",
				Args: map[string]any{"registers": intRegs}},
			chromeEvent{Name: "fp_regs_inflight", Ph: "C", Ts: cycle,
				Pid: pidShared, Tid: tidGrants, Cat: "occupancy",
				Args: map[string]any{"registers": fpRegs}},
		)
	})

	c.Grants(func(g GrantInterval) {
		dur := g.End - g.Start
		if dur < 1 {
			dur = 1 // zero-width slices are dropped by some importers
		}
		ev = append(ev, chromeEvent{
			Name: fmt.Sprintf("grant t%d", g.Tid), Ph: "X",
			Ts: g.Start, Dur: dur, Pid: pidShared, Tid: tidGrants,
			Cat: "l2_grant",
			Args: map[string]any{
				"tid":    g.Tid,
				"pc":     fmt.Sprintf("0x%x", g.PC),
				"misses": g.Misses,
			},
		})
	})

	tr.TraceEvents = ev
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
