package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCauseNameRoundTrip(t *testing.T) {
	for c := CauseNone; c < NumCauses; c++ {
		got, ok := CauseByName(c.String())
		if !ok || got != c {
			t.Errorf("CauseByName(%q) = %v, %v; want %v, true", c.String(), got, ok, c)
		}
	}
	if _, ok := CauseByName("bogus"); ok {
		t.Error("CauseByName accepted an unknown name")
	}
	if Cause(200).String() != "cause(200)" {
		t.Errorf("out-of-range String() = %q", Cause(200).String())
	}
}

// driveCycles feeds n cycles where thread 0 dispatches every third cycle
// and is otherwise charged CauseROBFull, and thread 1 alternates
// CauseIQFull / dispatch-active.
func driveCycles(c *Collector, st *CycleState, n int64) {
	for now := int64(0); now < n; now++ {
		st.Reset()
		if now%3 == 0 {
			st.Dispatched[0] = 2
		} else {
			st.Causes[0] = CauseROBFull
		}
		if now%2 == 0 {
			st.Causes[1] = CauseIQFull
		} else {
			st.Dispatched[1] = 1
		}
		st.ROBLen[0] = 10
		st.ROBLen[1] = 4
		st.IQLen = 7
		st.IntRegs = 3
		st.FPRegs = 1
		st.Owner = -1
		c.RecordCycle(now, st)
	}
}

func TestStallAccountingInvariant(t *testing.T) {
	c := NewCollector(2, Config{})
	st := NewCycleState(2)
	const n = 999
	driveCycles(c, st, n)
	s := c.Summary()
	if s.Cycles != n {
		t.Fatalf("Cycles = %d, want %d", s.Cycles, n)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Thread 0: dispatch-active on cycles 0,3,6,... = 333 cycles, two
	// uops each; the rest charged to rob_full.
	th0 := s.Threads[0]
	if th0.ActiveCycles != 333 || th0.DispatchedUops != 666 {
		t.Errorf("thread 0 active/uops = %d/%d, want 333/666", th0.ActiveCycles, th0.DispatchedUops)
	}
	if got := th0.StallCycles(CauseROBFull); got != n-333 {
		t.Errorf("thread 0 rob_full = %d, want %d", got, n-333)
	}
	if got := th0.StallCycles(CauseIQFull); got != 0 {
		t.Errorf("thread 0 iq_full = %d, want 0", got)
	}
	if th0.MeanROBOcc != 10 {
		t.Errorf("thread 0 mean ROB occupancy = %v, want 10", th0.MeanROBOcc)
	}
	if s.MeanIQOcc != 7 || s.MeanIntRegs != 3 || s.MeanFPRegs != 1 {
		t.Errorf("shared occupancies = %v/%v/%v, want 7/3/1", s.MeanIQOcc, s.MeanIntRegs, s.MeanFPRegs)
	}
	if s.L2OwnedFrac != 0 {
		t.Errorf("L2OwnedFrac = %v, want 0 (owner always -1)", s.L2OwnedFrac)
	}
	stalls, active := s.StallTotals()
	var total uint64
	for _, v := range stalls {
		total += v
	}
	if total+active != uint64(2*n) {
		t.Errorf("StallTotals: %d stall + %d active != %d thread-cycles", total, active, 2*n)
	}
}

func TestSampleRingOverflow(t *testing.T) {
	c := NewCollector(1, Config{SampleInterval: 1, SampleCap: 4})
	st := NewCycleState(1)
	for now := int64(0); now < 10; now++ {
		st.Reset()
		st.Dispatched[0] = 1
		st.Owner = -1
		c.RecordCycle(now, st)
	}
	if c.SampleCount() != 4 {
		t.Fatalf("SampleCount = %d, want 4", c.SampleCount())
	}
	var cycles []int64
	c.Samples(func(cycle int64, rob []int32, iq, ir, fr int32, owner int8) {
		cycles = append(cycles, cycle)
	})
	want := []int64{6, 7, 8, 9}
	for i, w := range want {
		if cycles[i] != w {
			t.Fatalf("retained sample cycles %v, want %v", cycles, want)
		}
	}
	if s := c.Summary(); s.SamplesDropped != 6 {
		t.Errorf("SamplesDropped = %d, want 6", s.SamplesDropped)
	}
}

func TestGrantLifecycle(t *testing.T) {
	c := NewCollector(2, Config{GrantCap: 2})
	c.GrantAcquired(1, 0x40, 100)
	c.GrantPiggyback(1, 0x44, 120)
	c.GrantPiggyback(1, 0x48, 130)
	c.GrantReleased(1, 250)
	c.GrantAcquired(0, 0x80, 300)
	// Missing release: a new acquisition must close the stale tenancy.
	c.GrantAcquired(1, 0xc0, 400)
	c.Finish(500)

	var got []GrantInterval
	c.Grants(func(g GrantInterval) { got = append(got, g) })
	if len(got) != 2 {
		t.Fatalf("retained %d grants, want 2 (cap)", len(got))
	}
	if got[0].Tid != 0 || got[0].Start != 300 || got[0].End != 400 {
		t.Errorf("stale tenancy closed as %+v, want tid 0 [300,400]", got[0])
	}
	if got[1].Tid != 1 || got[1].Start != 400 || got[1].End != 500 {
		t.Errorf("open tenancy finished as %+v, want tid 1 [400,500]", got[1])
	}
	s := c.Summary()
	if s.Grants.Count != 3 || s.Grants.Piggybacks != 2 {
		t.Errorf("grants count/piggybacks = %d/%d, want 3/2", s.Grants.Count, s.Grants.Piggybacks)
	}
	if s.GrantsDropped != 1 {
		t.Errorf("GrantsDropped = %d, want 1", s.GrantsDropped)
	}
	if s.Grants.HeldCycles != 150+100+100 {
		t.Errorf("HeldCycles = %d, want 350", s.Grants.HeldCycles)
	}
}

func TestRecordCycleDoesNotAllocate(t *testing.T) {
	c := NewCollector(4, Config{SampleInterval: 1, SampleCap: 8, GrantCap: 4})
	st := NewCycleState(4)
	var now int64
	avg := testing.AllocsPerRun(1000, func() {
		st.Reset()
		st.Dispatched[0] = 1
		st.Causes[1] = CauseROBFull
		st.Causes[2] = CauseL2GrantWait
		st.Causes[3] = CauseFetchStarved
		st.Owner = 1
		c.RecordCycle(now, st)
		c.GrantAcquired(1, 0x1000, now)
		c.GrantReleased(1, now+1)
		now++
	})
	if avg != 0 {
		t.Fatalf("RecordCycle+grant hooks allocate %v allocs/cycle, want 0", avg)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	c := NewCollector(2, Config{SampleInterval: 2, SampleCap: 64})
	st := NewCycleState(2)
	driveCycles(c, st, 40)
	c.GrantAcquired(0, 0x99, 5)
	c.GrantReleased(0, 5) // zero-length tenancy must still render (dur >= 1)
	c.GrantAcquired(1, 0xaa, 10)
	c.Finish(40)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var meta, counters, slices int
	type track struct {
		pid, tid int
		name     string
	}
	last := map[track]int64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "C":
			counters++
			k := track{ev.Pid, ev.Tid, ev.Name}
			if prev, ok := last[k]; ok && ev.Ts < prev {
				t.Fatalf("track %+v: ts %d after %d (non-monotonic)", k, ev.Ts, prev)
			}
			last[k] = ev.Ts
		case "X":
			slices++
			if ev.Dur < 1 {
				t.Errorf("slice %q has dur %d < 1", ev.Name, ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta == 0 || counters == 0 {
		t.Fatalf("want metadata and counter events, got M=%d C=%d", meta, counters)
	}
	if slices != 2 {
		t.Fatalf("want 2 grant slices (one closed by Finish), got %d", slices)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	c := NewCollector(2, Config{})
	st := NewCycleState(2)
	driveCycles(c, st, 10)
	data, err := json.Marshal(c.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant lost across JSON: %v", err)
	}
}
