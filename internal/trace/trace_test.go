package trace

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

func sample(n int) []isa.TraceInst {
	prof, _ := workload.ProfileFor("parser")
	g := workload.MustNewGenerator(prof, 7)
	out := make([]isa.TraceInst, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	insts := sample(5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5000 {
		t.Fatalf("reader len = %d", r.Len())
	}
	var got isa.TraceInst
	for i := range insts {
		r.Next(&got)
		if got != insts[i] {
			t.Fatalf("record %d: %+v != %+v", i, got, insts[i])
		}
	}
	// Looping: after the last record the stream restarts.
	r.Next(&got)
	if got != insts[0] {
		t.Fatal("trace does not loop")
	}
}

func TestBranchTargetsReconstructed(t *testing.T) {
	insts := sample(20000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range insts {
		w.Write(&insts[i])
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i, ti := range insts {
		if ti.Op == isa.OpBranch && ti.Taken {
			want := insts[(i+1)%len(insts)].PC
			if got := r.BranchTarget(ti.PC); got != want && found == 0 {
				// Targets for a pc are overwritten by later instances; only
				// the mapping's existence is guaranteed, pointing at one of
				// the pc's successors. Check it is a real successor.
				ok := false
				for j, tj := range insts {
					if tj.Op == isa.OpBranch && tj.Taken && tj.PC == ti.PC &&
						insts[(j+1)%len(insts)].PC == got {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("target %#x for pc %#x is not a successor", got, ti.PC)
				}
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("sample contained no taken branches")
	}
}

func TestRegions(t *testing.T) {
	insts := sample(10000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range insts {
		w.Write(&insts[i])
	}
	w.Flush()
	r, _ := NewReader(&buf)
	regions := r.Regions()
	if len(regions) != 2 || !regions[0].Code || regions[1].Code {
		t.Fatalf("regions: %+v", regions)
	}
	for _, ti := range insts {
		if ti.PC < regions[0].Base || ti.PC >= regions[0].Base+regions[0].Size {
			t.Fatal("pc outside code region")
		}
		if ti.Op.IsMem() &&
			(ti.Addr < regions[1].Base || ti.Addr >= regions[1].Base+regions[1].Size) {
			t.Fatal("addr outside data region")
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	if _, err := NewReader(&buf); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReaderRejectsTruncated(t *testing.T) {
	insts := sample(10)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range insts {
		w.Write(&insts[i])
	}
	w.Flush()
	raw := buf.Bytes()
	if _, err := NewReader(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	bad := isa.TraceInst{Op: isa.OpLoad, Dest: isa.RegNone, Addr: 8}
	if err := w.Write(&bad); err == nil {
		t.Fatal("invalid record accepted")
	}
}
