// Package trace serializes instruction traces to a compact binary format
// and replays them as pipeline.TraceSource streams. This is the bridge to
// real workloads: anyone holding actual program traces (e.g. produced by
// a binary instrumentation tool) can convert them to this format and run
// them through the simulator instead of the synthetic SPEC stand-ins.
//
// Format (little endian):
//
//	magic   [8]byte  "TLROBTR1"
//	count   uint64   number of records (0 = unknown/streamed)
//	records:
//	  pc     uint64
//	  addr   uint64
//	  op     uint8   isa.OpClass
//	  dest   int8
//	  src1   int8
//	  src2   int8
//	  flags  uint8   bit0 = branch taken
//	  _      [3]byte padding (records are 24 bytes)
//
// Branch taken-targets are not stored per record; the reader reconstructs
// them from the next record's PC, which is exactly what the front end's
// BTB needs.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

var magic = [8]byte{'T', 'L', 'R', 'O', 'B', 'T', 'R', '1'}

const recordSize = 24

// Writer streams trace records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	buf   [recordSize]byte
}

// NewWriter writes the header and returns a Writer. The count field is
// written as 0 (streamed); use WriteFileHeaderCount for seekable outputs.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var zero [8]byte
	if _, err := bw.Write(zero[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(ti *isa.TraceInst) error {
	if err := ti.Validate(); err != nil {
		return err
	}
	b := w.buf[:]
	binary.LittleEndian.PutUint64(b[0:], ti.PC)
	binary.LittleEndian.PutUint64(b[8:], ti.Addr)
	b[16] = byte(ti.Op)
	b[17] = byte(ti.Dest)
	b[18] = byte(ti.Src1)
	b[19] = byte(ti.Src2)
	var flags byte
	if ti.Taken {
		flags |= 1
	}
	b[20] = flags
	b[21], b[22], b[23] = 0, 0, 0
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns how many records were written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader loads an entire trace into memory and replays it in a loop as a
// pipeline.TraceSource (simulation budgets routinely exceed trace
// lengths; looping matches the synthetic generators' semantics).
type Reader struct {
	insts   []isa.TraceInst
	pos     int
	targets map[uint64]uint64
}

// NewReader parses a serialized trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:8])
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	rd := &Reader{targets: make(map[uint64]uint64)}
	if count > 0 {
		rd.insts = make([]isa.TraceInst, 0, count)
	}
	var rec [recordSize]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: truncated record: %w", err)
		}
		ti := isa.TraceInst{
			PC:    binary.LittleEndian.Uint64(rec[0:]),
			Addr:  binary.LittleEndian.Uint64(rec[8:]),
			Op:    isa.OpClass(rec[16]),
			Dest:  int8(rec[17]),
			Src1:  int8(rec[18]),
			Src2:  int8(rec[19]),
			Taken: rec[20]&1 != 0,
		}
		if err := ti.Validate(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(rd.insts), err)
		}
		rd.insts = append(rd.insts, ti)
	}
	if len(rd.insts) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	// Reconstruct taken-branch targets from successor PCs.
	for i, ti := range rd.insts {
		if ti.Op == isa.OpBranch && ti.Taken {
			next := rd.insts[(i+1)%len(rd.insts)]
			rd.targets[ti.PC] = next.PC
		}
	}
	return rd, nil
}

// Len returns the number of records in the trace.
func (r *Reader) Len() int { return len(r.insts) }

// Next implements pipeline.TraceSource, looping over the trace.
func (r *Reader) Next(out *isa.TraceInst) {
	*out = r.insts[r.pos]
	r.pos++
	if r.pos == len(r.insts) {
		r.pos = 0
	}
}

// BranchTarget implements pipeline.TraceSource.
func (r *Reader) BranchTarget(pc uint64) uint64 { return r.targets[pc] }

// Regions scans the trace and reports tight code/data bounds so the
// simulator can prewarm its caches (pipeline.RegionProvider).
func (r *Reader) Regions() []isa.Region {
	var codeLo, codeHi, dataLo, dataHi uint64
	codeLo = ^uint64(0)
	dataLo = ^uint64(0)
	for _, ti := range r.insts {
		if ti.PC < codeLo {
			codeLo = ti.PC
		}
		if ti.PC > codeHi {
			codeHi = ti.PC
		}
		if ti.Op.IsMem() {
			if ti.Addr < dataLo {
				dataLo = ti.Addr
			}
			if ti.Addr > dataHi {
				dataHi = ti.Addr
			}
		}
	}
	out := []isa.Region{{Base: codeLo, Size: codeHi - codeLo + 4, Code: true}}
	if dataLo != ^uint64(0) {
		out = append(out, isa.Region{Base: dataLo, Size: dataHi - dataLo + 8})
	}
	return out
}
