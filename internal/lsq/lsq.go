// Package lsq models the private per-thread load/store queues (Table 1:
// 48 entries per thread). The LSQ keeps memory operations in program
// order, blocks a load while an older same-address store is unexecuted,
// forwards store data to younger loads, and releases stores to the cache
// hierarchy at commit.
package lsq

import "fmt"

// Entry is one LSQ slot.
type Entry struct {
	RobSlot  int32
	Seq      uint64
	IsStore  bool
	Addr     uint64 // 8-byte aligned effective address
	Executed bool
	valid    bool
}

// ring is one thread's queue.
type ring struct {
	entries []Entry
	head    int32
	count   int32
}

// LSQ is the set of per-thread load/store queues.
type LSQ struct {
	rings []ring
	size  int32
	stats Stats
}

// Stats counts LSQ activity.
type Stats struct {
	Inserted  uint64
	Forwarded uint64
	Blocked   uint64 // load-issue attempts blocked by an older store
}

// New builds queues for the given thread count and per-thread size.
func New(threads, size int) (*LSQ, error) {
	if threads < 1 || size < 1 {
		return nil, fmt.Errorf("lsq: bad geometry threads=%d size=%d", threads, size)
	}
	l := &LSQ{rings: make([]ring, threads), size: int32(size)}
	for i := range l.rings {
		l.rings[i].entries = make([]Entry, size)
	}
	return l, nil
}

// Size returns the per-thread capacity.
func (l *LSQ) Size() int { return int(l.size) }

// Count returns thread tid's occupancy.
func (l *LSQ) Count(tid int) int { return int(l.rings[tid].count) }

// CanInsert reports whether tid has a free slot.
func (l *LSQ) CanInsert(tid int) bool { return l.rings[tid].count < l.size }

// Stats returns the activity counters.
func (l *LSQ) Stats() Stats { return l.stats }

// Insert appends a memory op at the tail and returns its slot.
func (l *LSQ) Insert(tid int, robSlot int32, seq uint64, isStore bool, addr uint64) int32 {
	r := &l.rings[tid]
	if r.count == l.size {
		panic("lsq: overflow")
	}
	slot := (r.head + r.count) % l.size
	r.entries[slot] = Entry{
		RobSlot: robSlot,
		Seq:     seq,
		IsStore: isStore,
		Addr:    addr &^ 7,
		valid:   true,
	}
	r.count++
	l.stats.Inserted++
	return slot
}

// MarkExecuted records that the op in (tid, slot) finished executing
// (store: address and data available; load: data returned).
func (l *LSQ) MarkExecuted(tid int, slot int32) {
	e := &l.rings[tid].entries[slot]
	if !e.valid {
		panic("lsq: marking invalid entry")
	}
	e.Executed = true
}

// LoadCheck inspects the older stores for the load in (tid, slot):
// blocked means an older same-address store has not executed yet (the load
// must not issue); forward means the youngest older same-address store has
// executed and its data can be forwarded.
func (l *LSQ) LoadCheck(tid int, slot int32) (blocked, forward bool) {
	r := &l.rings[tid]
	e := &r.entries[slot]
	addr := e.Addr
	// Walk from the entry just older than the load back to the head; the
	// first same-address store decides.
	pos := (slot - r.head + l.size) % l.size
	for i := pos - 1; i >= 0; i-- {
		s := &r.entries[(r.head+i)%l.size]
		if !s.IsStore || s.Addr != addr {
			continue
		}
		if s.Executed {
			l.stats.Forwarded++
			return false, true
		}
		l.stats.Blocked++
		return true, false
	}
	return false, false
}

// Head returns the oldest entry for tid, or nil.
func (l *LSQ) Head(tid int) *Entry {
	r := &l.rings[tid]
	if r.count == 0 {
		return nil
	}
	return &r.entries[r.head]
}

// PopHead removes the oldest entry (commit of a memory op).
func (l *LSQ) PopHead(tid int) {
	r := &l.rings[tid]
	if r.count == 0 {
		panic("lsq: pop from empty queue")
	}
	r.entries[r.head].valid = false
	r.head = (r.head + 1) % l.size
	r.count--
}

// PopTail removes the youngest entry during a squash walk; seq must match
// the entry being squashed (consistency check).
func (l *LSQ) PopTail(tid int, seq uint64) {
	r := &l.rings[tid]
	if r.count == 0 {
		panic("lsq: squash pop from empty queue")
	}
	tail := (r.head + r.count - 1) % l.size
	if r.entries[tail].Seq != seq {
		panic(fmt.Sprintf("lsq: squash order violation: tail seq %d, want %d", r.entries[tail].Seq, seq))
	}
	r.entries[tail].valid = false
	r.count--
}

// CheckInvariants verifies per-thread ordering (tests only).
func (l *LSQ) CheckInvariants() error {
	for t := range l.rings {
		r := &l.rings[t]
		var prev uint64
		for i := int32(0); i < r.count; i++ {
			e := &r.entries[(r.head+i)%l.size]
			if !e.valid {
				return fmt.Errorf("lsq: thread %d has invalid live entry", t)
			}
			if i > 0 && e.Seq <= prev {
				return fmt.Errorf("lsq: thread %d out of order at %d", t, i)
			}
			prev = e.Seq
		}
	}
	return nil
}
