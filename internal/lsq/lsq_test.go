package lsq

import (
	"testing"
	"testing/quick"
)

func newLSQ(t *testing.T, threads, size int) *LSQ {
	t.Helper()
	l, err := New(threads, size)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestInsertPopOrder(t *testing.T) {
	l := newLSQ(t, 1, 4)
	s1 := l.Insert(0, 10, 1, false, 0x100)
	s2 := l.Insert(0, 11, 2, true, 0x200)
	if l.Count(0) != 2 {
		t.Fatalf("count = %d", l.Count(0))
	}
	if h := l.Head(0); h == nil || h.RobSlot != 10 {
		t.Fatal("head is not the oldest entry")
	}
	l.PopHead(0)
	if h := l.Head(0); h == nil || h.RobSlot != 11 {
		t.Fatal("pop order wrong")
	}
	_ = s1
	_ = s2
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacity(t *testing.T) {
	l := newLSQ(t, 2, 2)
	l.Insert(0, 1, 1, false, 0x10)
	l.Insert(0, 2, 2, false, 0x18)
	if l.CanInsert(0) {
		t.Fatal("full queue reports space")
	}
	if !l.CanInsert(1) {
		t.Fatal("other thread blocked by full queue")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	l := newLSQ(t, 1, 8)
	st := l.Insert(0, 1, 1, true, 0x1000)
	ld := l.Insert(0, 2, 2, false, 0x1000)
	blocked, fwd := l.LoadCheck(0, ld)
	if !blocked || fwd {
		t.Fatal("load not blocked by unexecuted older store")
	}
	l.MarkExecuted(0, st)
	blocked, fwd = l.LoadCheck(0, ld)
	if blocked || !fwd {
		t.Fatal("executed store did not forward")
	}
	s := l.Stats()
	if s.Blocked != 1 || s.Forwarded != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestYoungestMatchingStoreWins(t *testing.T) {
	l := newLSQ(t, 1, 8)
	old := l.Insert(0, 1, 1, true, 0x2000)
	young := l.Insert(0, 2, 2, true, 0x2000)
	ld := l.Insert(0, 3, 3, false, 0x2000)
	l.MarkExecuted(0, old)
	// The youngest older store is unexecuted: the load must wait even
	// though an older executed store matches.
	if blocked, _ := l.LoadCheck(0, ld); !blocked {
		t.Fatal("load bypassed the youngest matching store")
	}
	l.MarkExecuted(0, young)
	if blocked, fwd := l.LoadCheck(0, ld); blocked || !fwd {
		t.Fatal("load did not forward from youngest store")
	}
}

func TestDifferentAddressesIndependent(t *testing.T) {
	l := newLSQ(t, 1, 8)
	l.Insert(0, 1, 1, true, 0x3000)
	ld := l.Insert(0, 2, 2, false, 0x4000)
	if blocked, fwd := l.LoadCheck(0, ld); blocked || fwd {
		t.Fatal("unrelated store affected load")
	}
}

func TestSubWordAliasing(t *testing.T) {
	l := newLSQ(t, 1, 8)
	l.Insert(0, 1, 1, true, 0x5004) // same 8-byte word as 0x5000
	ld := l.Insert(0, 2, 2, false, 0x5000)
	if blocked, _ := l.LoadCheck(0, ld); !blocked {
		t.Fatal("8-byte aliasing not detected")
	}
}

func TestPopTailSquash(t *testing.T) {
	l := newLSQ(t, 1, 8)
	l.Insert(0, 1, 1, false, 0x10)
	l.Insert(0, 2, 2, true, 0x20)
	l.PopTail(0, 2)
	if l.Count(0) != 1 {
		t.Fatalf("count = %d", l.Count(0))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPopTailOrderViolationPanics(t *testing.T) {
	l := newLSQ(t, 1, 8)
	l.Insert(0, 1, 1, false, 0x10)
	l.Insert(0, 2, 2, false, 0x20)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order squash pop did not panic")
		}
	}()
	l.PopTail(0, 1) // tail has seq 2
}

func TestWrapAround(t *testing.T) {
	l := newLSQ(t, 1, 3)
	seq := uint64(0)
	for round := 0; round < 5; round++ {
		seq++
		l.Insert(0, int32(seq), seq, false, 0x100*seq)
		if round >= 2 {
			l.PopHead(0)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := New(1, 0); err == nil {
		t.Error("zero size accepted")
	}
}

// Property: per-thread entries always pop in insertion (program) order
// under random insert/pop-head/pop-tail sequences.
func TestQuickProgramOrder(t *testing.T) {
	f := func(ops []uint8) bool {
		l, err := New(1, 8)
		if err != nil {
			return false
		}
		seq := uint64(0)
		var pending []uint64 // seqs in queue, oldest first
		for _, o := range ops {
			switch o % 3 {
			case 0: // insert
				if !l.CanInsert(0) {
					continue
				}
				seq++
				l.Insert(0, int32(seq), seq, o%2 == 0, uint64(o)*8+8)
				pending = append(pending, seq)
			case 1: // commit oldest
				if len(pending) == 0 {
					continue
				}
				if l.Head(0).Seq != pending[0] {
					return false
				}
				l.PopHead(0)
				pending = pending[1:]
			case 2: // squash youngest
				if len(pending) == 0 {
					continue
				}
				l.PopTail(0, pending[len(pending)-1])
				pending = pending[:len(pending)-1]
			}
			if l.CheckInvariants() != nil {
				return false
			}
		}
		return l.Count(0) == len(pending)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
