package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// swapHandler lets a worker's HTTP handler be installed after its URL
// is known (httptest assigns ports at start).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// repWorker is one in-process fleet node with replication wired: peer
// cache fill, replica writes (R=2) and the membership endpoint, exactly
// as cmd/simd assembles them.
type repWorker struct {
	srv  *server.Server
	st   *store.Store
	ts   *httptest.Server
	url  string
	ring *Ring
}

func (w *repWorker) kill() {
	w.ts.Listener.Close()
	w.ts.CloseClientConnections()
}

func (w *repWorker) holds(key string) bool {
	_, ok := w.st.Get(key)
	return ok
}

// startRepWorker boots one replication-enabled worker whose ring spans
// urls (which must include its own URL once known — pass nil and call
// wire later for members started before the fleet list is final).
func startRepWorker(t *testing.T, urls []string) *repWorker {
	t.Helper()
	st, err := store.New(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var (
		filler     *PeerFiller
		replicator *Replicator
		mu         sync.Mutex
	)
	srv, err := server.New(server.Config{
		Store:        st,
		QueueSize:    16,
		Workers:      2,
		SimWorkers:   2,
		JobTimeout:   time.Minute,
		Retries:      0,
		RetryBackoff: time.Millisecond,
		Logf:         t.Logf,
		PeerFill: func(ctx context.Context, key string) ([]byte, bool) {
			mu.Lock()
			f := filler
			mu.Unlock()
			if f == nil {
				return nil, false
			}
			return f.Fill(ctx, key)
		},
		Replicate: func(ctx context.Context, key string, data []byte) (int, int) {
			mu.Lock()
			r := replicator
			mu.Unlock()
			if r == nil {
				return 0, 0
			}
			return r.Replicate(ctx, key, data)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := &swapHandler{h: srv.Handler()}
	ts := httptest.NewServer(sh)
	w := &repWorker{srv: srv, st: st, ts: ts, url: ts.URL}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	members := append([]string(nil), urls...)
	members = append(members, w.url)
	ring, err := NewRing(members, 16)
	if err != nil {
		t.Fatal(err)
	}
	w.ring = ring
	mu.Lock()
	filler = NewPeerFiller(w.url, ring, 0, time.Second, nil)
	replicator = NewReplicator(w.url, ring, 2, time.Second, nil)
	mu.Unlock()
	sh.swap(WorkerMux(srv.Handler(), ring, t.Logf))
	return w
}

// startReplicatedFleet boots n workers with R=2 replication plus a
// coordinator whose WriteReplicas matches. Every node's ring spans the
// same member list.
func startReplicatedFleet(t *testing.T, n int) ([]*repWorker, *Coordinator) {
	t.Helper()
	workers := make([]*repWorker, 0, n)
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w := startRepWorker(t, urls)
		workers = append(workers, w)
		urls = append(urls, w.url)
	}
	// Early workers were built before later URLs existed; converge every
	// ring on the full list the way a coordinator sync would.
	for _, w := range workers {
		if _, _, err := w.ring.SetMembers(urls); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          urls,
		VNodes:         16,
		Replicas:       n,
		WriteReplicas:  2,
		HandoffTimeout: 5 * time.Second,
		HedgeAfterMin:  500 * time.Millisecond,
		HealthInterval: time.Hour, // tests drive liveness explicitly
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return workers, c
}

// holdersOf counts which live workers hold key locally.
func holdersOf(workers []*repWorker, key string) int {
	n := 0
	for _, w := range workers {
		if w.holds(key) {
			n++
		}
	}
	return n
}

func totalSimulations(workers []*repWorker) uint64 {
	var n uint64
	for _, w := range workers {
		n += w.srv.Stats().Simulations
	}
	return n
}

func postMembers(t *testing.T, c *Coordinator, ch MemberChange) MembersReply {
	t.Helper()
	body, _ := json.Marshal(ch)
	req := httptest.NewRequest(http.MethodPost, "/v1/members", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/members -> %d: %s", rec.Code, rec.Body.String())
	}
	var reply MembersReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestReplicatedWritesSurvivePrimaryDeath is the R=2 chaos acceptance:
// a result's primary is SIGKILLed after completion, and the result is
// still served through the coordinator byte-identical, with the fleet's
// simulation count unchanged.
func TestReplicatedWritesSurvivePrimaryDeath(t *testing.T) {
	workers, c := startReplicatedFleet(t, 3)
	byURL := map[string]*repWorker{}
	for _, w := range workers {
		byURL[w.url] = w
	}

	spec := testSpec(77)
	r1 := submitVia(t, c.Handler(), spec, "chaos")
	if r1.status != http.StatusOK || r1.Status != "done" || r1.Cache != "miss" {
		t.Fatalf("first submit: %+v", r1)
	}
	key := mustKey(t, spec)
	// Replication is asynchronous: wait until both R=2 owners hold it.
	owners := c.Ring().Owners(key, 2)
	waitFor(t, "replica to land on the second owner", func() bool {
		return byURL[owners[0]].holds(key) && byURL[owners[1]].holds(key)
	})

	primary := byURL[owners[0]]
	primary.kill()

	simsBefore := totalSimulations(workers) // the dead node's counter is frozen with it
	r2 := submitVia(t, c.Handler(), spec, "chaos")
	if r2.status != http.StatusOK || r2.Cache != "hit" {
		t.Fatalf("submit after primary death: %+v", r2)
	}
	if r2.node == primary.url {
		t.Fatalf("answer claims to come from the dead primary")
	}
	if !bytes.Equal(r2.Result, r1.Result) {
		t.Fatal("replica served different bytes than the original result")
	}
	if sims := totalSimulations(workers); sims != simsBefore {
		t.Fatalf("fleet re-simulated: %d -> %d", simsBefore, sims)
	}
}

// TestMembershipChangeHandoff is the tentpole acceptance: adding a node
// through POST /v1/members kicks a background handoff that restores
// primary placement on the new ring, removing one does the same, and
// through the whole sequence every key stays readable through the
// coordinator byte-identical with zero re-simulations.
func TestMembershipChangeHandoff(t *testing.T) {
	workers, c := startReplicatedFleet(t, 3)

	// Seed the fleet with a dozen distinct results so the new node is
	// overwhelmingly likely to own some of them.
	const nKeys = 12
	results := make(map[string][]byte, nKeys)
	keys := make([]string, 0, nKeys)
	for seed := uint64(100); seed < 100+nKeys; seed++ {
		spec := testSpec(seed)
		r := submitVia(t, c.Handler(), spec, "seed")
		if r.status != http.StatusOK || r.Status != "done" {
			t.Fatalf("seed %d: %+v", seed, r)
		}
		key := mustKey(t, spec)
		keys = append(keys, key)
		results[key] = r.Result
	}
	waitFor(t, "replication to reach R=2 everywhere", func() bool {
		for _, key := range keys {
			if holdersOf(workers, key) < 2 {
				return false
			}
		}
		return true
	})

	// Grow the fleet: a fourth worker joins over the membership API.
	joined := startRepWorker(t, urlsOf(workers))
	workers = append(workers, joined)
	reply := postMembers(t, c, MemberChange{Action: "add", Node: joined.url})
	if !reply.Changed || !reply.Handoff || len(reply.Members) != 4 {
		t.Fatalf("add reply: %+v", reply)
	}
	waitFor(t, "handoff after add", func() bool { return c.HandoffIdle() })

	// Handoff restored the invariant the router depends on: every key's
	// new primary holds it locally.
	for _, key := range keys {
		primary := c.Ring().Owners(key, 2)[0]
		if !workerAt(workers, primary).holds(key) {
			t.Fatalf("key %s: new primary %s does not hold it after handoff", key[:12], primary)
		}
	}
	st := c.Stats()
	if st.HandoffRuns < 1 || st.HandoffMoved < 1 {
		t.Fatalf("handoff counters after add: %+v", st)
	}
	if st.MembersAdded != 1 {
		t.Fatalf("membership counters: %+v", st)
	}

	// The coordinator told the workers: their rings converge on the new
	// member list without a restart.
	waitFor(t, "worker rings to converge", func() bool {
		for _, w := range workers {
			if len(w.ring.Nodes()) != 4 {
				return false
			}
		}
		return true
	})

	// Shrink it again: drop one of the founding members and kill it, so
	// reads must not depend on it.
	victim := workers[0]
	reply = postMembers(t, c, MemberChange{Action: "remove", Node: victim.url})
	if !reply.Changed || len(reply.Members) != 3 {
		t.Fatalf("remove reply: %+v", reply)
	}
	waitFor(t, "handoff after remove", func() bool { return c.HandoffIdle() })
	victim.kill()
	live := workers[1:]

	simsBefore := totalSimulations(live)
	for seed := uint64(100); seed < 100+nKeys; seed++ {
		spec := testSpec(seed)
		r := submitVia(t, c.Handler(), spec, "reread")
		key := mustKey(t, spec)
		if r.status != http.StatusOK || r.Cache != "hit" {
			t.Fatalf("re-read %s after add+remove: %+v", key[:12], r)
		}
		if !bytes.Equal(r.Result, results[key]) {
			t.Fatalf("key %s: bytes changed across membership churn", key[:12])
		}
	}
	if sims := totalSimulations(live); sims != simsBefore {
		t.Fatalf("membership churn caused re-simulation: %d -> %d", simsBefore, sims)
	}

	// The handoff metrics surface on /metrics.
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"simd_cluster_handoff_runs_total",
		"simd_cluster_handoff_keys_moved_total",
		"simd_cluster_handoff_keys_skipped_total",
		"simd_cluster_handoff_errors_total",
		"simd_cluster_members_added_total 1",
		"simd_cluster_members_removed_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestHandoffSurvivesNodeDeathMidChange: a founding member dies right
// as the fleet grows, so the handoff pass runs against an unreachable
// source. The pass must complete (errors counted, not fatal) and every
// key stays readable through the coordinator with zero re-simulations —
// the R=2 copies cover the dead node's holdings.
func TestHandoffSurvivesNodeDeathMidChange(t *testing.T) {
	workers, c := startReplicatedFleet(t, 3)

	const nKeys = 8
	results := make(map[string][]byte, nKeys)
	for seed := uint64(300); seed < 300+nKeys; seed++ {
		spec := testSpec(seed)
		r := submitVia(t, c.Handler(), spec, "seed")
		if r.status != http.StatusOK || r.Status != "done" {
			t.Fatalf("seed %d: %+v", seed, r)
		}
		results[mustKey(t, spec)] = r.Result
	}
	waitFor(t, "replication to reach R=2 everywhere", func() bool {
		for key := range results {
			if holdersOf(workers, key) < 2 {
				return false
			}
		}
		return true
	})

	joined := startRepWorker(t, urlsOf(workers))
	reply := postMembers(t, c, MemberChange{Action: "add", Node: joined.url})
	if !reply.Handoff {
		t.Fatalf("add reply: %+v", reply)
	}
	// Kill a founding member immediately: the handoff pass races the
	// death and must cope with a source that stops answering.
	victim := workers[0]
	victim.kill()
	waitFor(t, "handoff to finish despite the dead source", func() bool { return c.HandoffIdle() })

	live := append([]*repWorker{}, workers[1:]...)
	live = append(live, joined)
	simsBefore := totalSimulations(live)
	for seed := uint64(300); seed < 300+nKeys; seed++ {
		spec := testSpec(seed)
		r := submitVia(t, c.Handler(), spec, "reread")
		if r.status != http.StatusOK || r.Cache != "hit" {
			t.Fatalf("re-read after mid-change death: %+v", r)
		}
		if !bytes.Equal(r.Result, results[mustKey(t, spec)]) {
			t.Fatal("bytes changed across mid-change death")
		}
	}
	if sims := totalSimulations(live); sims != simsBefore {
		t.Fatalf("mid-change death caused re-simulation: %d -> %d", simsBefore, sims)
	}
}

func urlsOf(workers []*repWorker) []string {
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.url
	}
	return urls
}

func workerAt(workers []*repWorker, url string) *repWorker {
	for _, w := range workers {
		if w.url == url {
			return w
		}
	}
	return nil
}
