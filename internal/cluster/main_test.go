package cluster

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain wraps the whole package in the goroutine-leak guard: every
// coordinator, prober, handoff pass, and hedged forward spawned by a
// test must be joined or cancelled by the time the binary exits — the
// dynamic counterpart of the golifecycle static pass.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
