// Package cluster turns single cmd/simd nodes into a horizontally
// scaled fleet. A coordinator shards each submission by its
// content-address cache key over a consistent-hash ring of worker
// nodes, hedges slow requests onto a replica after an observed latency
// percentile, reroutes around dead or overloaded (429) shards, and
// enforces per-tenant token-bucket quotas with weighted-fair dequeue in
// front of the fan-out. Workers stay exactly what internal/server made
// them — bounded queue, singleflight, content-addressed cache — plus a
// peer cache-fill client so any node can serve any cached result
// without re-simulating.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes and health-aware
// lookups. Membership is fixed at construction; liveness is toggled by
// the health checker and by forward-path connection failures.
type Ring struct {
	mu     sync.RWMutex
	points []point // sorted by hash
	nodes  []string
	alive  map[string]bool
}

// ringHash places s on the 64-bit ring keyspace. SHA-256 keeps vnode
// placement both well-mixed and platform-independent: the same peer
// list yields the same shard map on every node, which is what lets
// workers predict where the coordinator cached a key.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring of the given nodes with vnodes virtual nodes
// each (vnodes <= 0 selects the default 64). Node order does not
// matter; duplicates are rejected.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		nodes: append([]string(nil), nodes...),
		alive: make(map[string]bool, len(nodes)),
	}
	sort.Strings(r.nodes)
	for i := 1; i < len(r.nodes); i++ {
		if r.nodes[i] == r.nodes[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node %q", r.nodes[i])
		}
	}
	r.points = make([]point, 0, len(nodes)*vnodes)
	for _, n := range r.nodes {
		r.alive[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// SetAlive marks a node's liveness and reports whether that changed.
func (r *Ring) SetAlive(node string, alive bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.alive[node]; !ok {
		return false
	}
	if r.alive[node] == alive {
		return false
	}
	r.alive[node] = alive
	return true
}

// IsAlive reports a node's current liveness.
func (r *Ring) IsAlive(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[node]
}

// AliveCount returns how many members are currently healthy.
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, node := range r.nodes {
		if r.alive[node] {
			n++
		}
	}
	return n
}

// Owners returns up to max distinct nodes for key in preference order:
// ring order starting at key's successor, with nodes currently marked
// dead demoted behind every live one (they remain last-resort targets —
// liveness is advisory, and a "dead" node may answer). max <= 0 returns
// every member.
func (r *Ring) Owners(key string, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if max <= 0 || max > len(r.nodes) {
		max = len(r.nodes)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	ordered := make([]string, 0, len(r.nodes))
	for n := 0; n < len(r.points) && len(ordered) < len(r.nodes); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			ordered = append(ordered, p.node)
		}
	}
	out := make([]string, 0, max)
	for _, node := range ordered { // live nodes keep ring order
		if r.alive[node] {
			out = append(out, node)
		}
	}
	for _, node := range ordered { // dead ones trail as a last resort
		if !r.alive[node] {
			out = append(out, node)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// Ownership estimates each node's share of the keyspace by probing
// evenly spaced ring positions. It returns parallel slices (sorted by
// node) rather than a map so callers can render it deterministically.
func (r *Ring) Ownership(samples int) ([]string, []float64) {
	if samples <= 0 {
		samples = 1024
	}
	counts := make(map[string]int, len(r.nodes))
	r.mu.RLock()
	step := ^uint64(0) / uint64(samples)
	for i := 0; i < samples; i++ {
		h := uint64(i) * step
		j := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
		counts[r.points[j%len(r.points)].node]++
	}
	nodes := append([]string(nil), r.nodes...)
	r.mu.RUnlock()
	shares := make([]float64, len(nodes))
	for i, n := range nodes {
		shares[i] = float64(counts[n]) / float64(samples)
	}
	return nodes, shares
}
