// Package cluster turns single cmd/simd nodes into a horizontally
// scaled fleet. A coordinator shards each submission by its
// content-address cache key over a consistent-hash ring of worker
// nodes, hedges slow requests onto a replica after an observed latency
// percentile, reroutes around dead or overloaded (429) shards, and
// enforces per-tenant token-bucket quotas with weighted-fair dequeue in
// front of the fan-out. Workers stay exactly what internal/server made
// them — bounded queue, singleflight, content-addressed cache — plus a
// peer cache-fill client so any node can serve any cached result
// without re-simulating.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes and health-aware
// lookups. Membership is dynamic: Add and Remove rebuild the vnode
// table so nodes can join or leave a running fleet; liveness is toggled
// by the health checker and by forward-path connection failures.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by hash
	nodes  []string
	alive  map[string]bool
	gen    uint64 // bumped on every membership change
}

// ringHash places s on the 64-bit ring keyspace. SHA-256 keeps vnode
// placement both well-mixed and platform-independent: the same peer
// list yields the same shard map on every node, which is what lets
// workers predict where the coordinator cached a key.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring of the given nodes with vnodes virtual nodes
// each (vnodes <= 0 selects the default 64). Node order does not
// matter; duplicates are rejected.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  append([]string(nil), nodes...),
		alive:  make(map[string]bool, len(nodes)),
	}
	sort.Strings(r.nodes)
	for i := 1; i < len(r.nodes); i++ {
		if r.nodes[i] == r.nodes[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node %q", r.nodes[i])
		}
	}
	for _, n := range r.nodes {
		r.alive[n] = true
	}
	r.rebuildLocked()
	return r, nil
}

// rebuildLocked regenerates the vnode table from the current member
// list. Callers hold r.mu (or own the ring exclusively, as in NewRing).
// Placement depends only on the member set and vnode count, so every
// add/remove sequence that reaches the same membership yields the same
// ring a fresh NewRing would.
func (r *Ring) rebuildLocked() {
	r.points = make([]point, 0, len(r.nodes)*r.vnodes)
	for _, n := range r.nodes {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.nodes...)
}

// Generation counts membership changes. A handoff pass snapshots it and
// aborts when it moves, so a stale pass never applies an old ring's
// placement decisions.
func (r *Ring) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Add joins node to the ring (initially alive) and rebuilds the vnode
// table. It reports false if node is already a member.
func (r *Ring) Add(node string) bool {
	if node == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.alive[node]; ok {
		return false
	}
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
	r.alive[node] = true
	r.gen++
	r.rebuildLocked()
	return true
}

// Remove drops node from the ring and rebuilds the vnode table. The
// last member cannot be removed (a ring with no nodes routes nothing).
// It reports false if node is not a member or is the last one.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.alive[node]; !ok || len(r.nodes) == 1 {
		return false
	}
	delete(r.alive, node)
	for i, n := range r.nodes {
		if n == node {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	r.gen++
	r.rebuildLocked()
	return true
}

// SetMembers replaces the member list wholesale (the SIGHUP peer-file
// reload path), preserving the liveness of retained members. It returns
// the nodes added and removed; both empty means the list matched the
// current membership and nothing changed.
func (r *Ring) SetMembers(nodes []string) (added, removed []string, err error) {
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	next := append([]string(nil), nodes...)
	sort.Strings(next)
	for i := 1; i < len(next); i++ {
		if next[i] == next[i-1] {
			return nil, nil, fmt.Errorf("cluster: duplicate node %q", next[i])
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	want := make(map[string]bool, len(next))
	for _, n := range next {
		want[n] = true
		if _, ok := r.alive[n]; !ok {
			added = append(added, n)
		}
	}
	for _, n := range r.nodes {
		if !want[n] {
			removed = append(removed, n)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return nil, nil, nil
	}
	for _, n := range removed {
		delete(r.alive, n)
	}
	for _, n := range added {
		r.alive[n] = true
	}
	r.nodes = next
	r.gen++
	r.rebuildLocked()
	return added, removed, nil
}

// SetAlive marks a node's liveness and reports whether that changed.
func (r *Ring) SetAlive(node string, alive bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.alive[node]; !ok {
		return false
	}
	if r.alive[node] == alive {
		return false
	}
	r.alive[node] = alive
	return true
}

// IsAlive reports a node's current liveness.
func (r *Ring) IsAlive(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[node]
}

// AliveCount returns how many members are currently healthy.
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, node := range r.nodes {
		if r.alive[node] {
			n++
		}
	}
	return n
}

// Owners returns up to max distinct nodes for key in preference order:
// ring order starting at key's successor, with nodes currently marked
// dead demoted behind every live one (they remain last-resort targets —
// liveness is advisory, and a "dead" node may answer). max <= 0 returns
// every member.
func (r *Ring) Owners(key string, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if max <= 0 || max > len(r.nodes) {
		max = len(r.nodes)
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	ordered := make([]string, 0, len(r.nodes))
	for n := 0; n < len(r.points) && len(ordered) < len(r.nodes); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			ordered = append(ordered, p.node)
		}
	}
	out := make([]string, 0, max)
	for _, node := range ordered { // live nodes keep ring order
		if r.alive[node] {
			out = append(out, node)
		}
	}
	for _, node := range ordered { // dead ones trail as a last resort
		if !r.alive[node] {
			out = append(out, node)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// Ownership estimates each node's share of the keyspace by probing
// evenly spaced ring positions. It returns parallel slices (sorted by
// node) rather than a map so callers can render it deterministically.
func (r *Ring) Ownership(samples int) ([]string, []float64) {
	if samples <= 0 {
		samples = 1024
	}
	counts := make(map[string]int, len(r.nodes))
	r.mu.RLock()
	step := ^uint64(0) / uint64(samples)
	for i := 0; i < samples; i++ {
		h := uint64(i) * step
		j := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
		counts[r.points[j%len(r.points)].node]++
	}
	nodes := append([]string(nil), r.nodes...)
	r.mu.RUnlock()
	shares := make([]float64, len(nodes))
	for i, n := range nodes {
		shares[i] = float64(counts[n]) / float64(samples)
	}
	return nodes, shares
}
