package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestQuotasBurstAndRefill(t *testing.T) {
	q := NewQuotas(10, 2) // 10 tokens/sec, burst 2
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	if !q.Allow("t1") || !q.Allow("t1") {
		t.Fatal("burst of 2 not honored")
	}
	if q.Allow("t1") {
		t.Fatal("third immediate request allowed")
	}
	// Tenants are isolated.
	if !q.Allow("t2") {
		t.Fatal("fresh tenant rejected")
	}
	// 100ms later one token (10/sec) has refilled.
	now = now.Add(100 * time.Millisecond)
	if !q.Allow("t1") {
		t.Fatal("refilled token not granted")
	}
	if q.Allow("t1") {
		t.Fatal("over-refilled")
	}
	// Refill caps at burst.
	now = now.Add(time.Hour)
	if !q.Allow("t1") || !q.Allow("t1") || q.Allow("t1") {
		t.Fatal("burst cap not applied after idle period")
	}
}

func TestQuotasRetryAfter(t *testing.T) {
	q := NewQuotas(2, 1) // 2 tokens/sec, burst 1
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	// An unseen tenant has a full bucket: no wait.
	if got := q.RetryAfter("fresh"); got != 0 {
		t.Fatalf("fresh tenant RetryAfter = %v", got)
	}
	if !q.Allow("t") || q.Allow("t") {
		t.Fatal("burst of 1 not honored")
	}
	// The bucket is empty; at 2 tokens/sec a whole token is 500ms away.
	if got := q.RetryAfter("t"); !within(got, 500*time.Millisecond, time.Millisecond) {
		t.Fatalf("RetryAfter = %v, want ~500ms", got)
	}
	// 200ms later 0.4 tokens refilled: 300ms left.
	now = now.Add(200 * time.Millisecond)
	if got := q.RetryAfter("t"); !within(got, 300*time.Millisecond, time.Millisecond) {
		t.Fatalf("RetryAfter after partial refill = %v, want ~300ms", got)
	}
	// Once a token is back the wait is zero, and Allow agrees.
	now = now.Add(300 * time.Millisecond)
	if got := q.RetryAfter("t"); got != 0 {
		t.Fatalf("RetryAfter with a full token = %v", got)
	}
	if !q.Allow("t") {
		t.Fatal("Allow disagrees with RetryAfter")
	}

	// Disabled limiter never asks anyone to wait.
	if got := NewQuotas(0, 0).RetryAfter("x"); got != 0 {
		t.Fatalf("disabled RetryAfter = %v", got)
	}
}

func within(got, want, tol time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestRetryAfterSecondsRounding pins the header rendering: ceil to whole
// seconds with a floor of 1.
func TestRetryAfterSecondsRounding(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Fatalf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestQuotasDisabled(t *testing.T) {
	q := NewQuotas(0, 0)
	for i := 0; i < 1000; i++ {
		if !q.Allow("anyone") {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

// grabSlot acquires and returns a release func.
func grabSlot(t *testing.T, f *FairQueue, tenant string) func() {
	t.Helper()
	if err := f.Acquire(context.Background(), tenant); err != nil {
		t.Fatal(err)
	}
	return f.Release
}

// queueAcquire starts an Acquire in a goroutine and waits until it is
// enqueued, so test enqueue order is deterministic.
func queueAcquire(t *testing.T, f *FairQueue, tenant string, order *[]string, mu *sync.Mutex, wg *sync.WaitGroup) {
	t.Helper()
	depth := f.Depth()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.Acquire(context.Background(), tenant); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		*order = append(*order, tenant)
		mu.Unlock()
		f.Release()
	}()
	for i := 0; i < 1000 && f.Depth() == depth; i++ {
		time.Sleep(time.Millisecond)
	}
	if f.Depth() == depth {
		t.Fatalf("acquire for %s never queued", tenant)
	}
}

func TestFairQueueInterleavesTenants(t *testing.T) {
	f := NewFairQueue(1, nil)
	release := grabSlot(t, f, "holder")

	var (
		order []string
		mu    sync.Mutex
		wg    sync.WaitGroup
	)
	// Tenant A floods three requests, then B queues one. Without
	// fairness B would wait behind all of A; with WFQ its finish tag
	// (1) beats A's second (2) and third (3).
	queueAcquire(t, f, "A", &order, &mu, &wg)
	queueAcquire(t, f, "A", &order, &mu, &wg)
	queueAcquire(t, f, "A", &order, &mu, &wg)
	queueAcquire(t, f, "B", &order, &mu, &wg)

	release()
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
	pos := map[string][]int{}
	for i, tn := range order {
		pos[tn] = append(pos[tn], i)
	}
	if b := pos["B"][0]; b > 1 {
		t.Fatalf("B dequeued at position %d behind A's flood: %v", b, order)
	}
}

func TestFairQueueWeights(t *testing.T) {
	f := NewFairQueue(1, func(tenant string) float64 {
		if tenant == "heavy" {
			return 2
		}
		return 1
	})
	release := grabSlot(t, f, "holder")
	var (
		order []string
		mu    sync.Mutex
		wg    sync.WaitGroup
	)
	// heavy finishes: .5, 1, 1.5, 2 — light: 1, 2. In the first four
	// grants heavy must get three (ties at 1 and 2 are unordered).
	for i := 0; i < 4; i++ {
		queueAcquire(t, f, "heavy", &order, &mu, &wg)
	}
	queueAcquire(t, f, "light", &order, &mu, &wg)
	queueAcquire(t, f, "light", &order, &mu, &wg)
	release()
	wg.Wait()
	heavyInFirstFour := 0
	for _, tn := range order[:4] {
		if tn == "heavy" {
			heavyInFirstFour++
		}
	}
	if heavyInFirstFour < 3 {
		t.Fatalf("heavy (weight 2) got %d of the first 4 grants: %v", heavyInFirstFour, order)
	}
}

func TestFairQueueCancelledWaiterSkipped(t *testing.T) {
	f := NewFairQueue(1, nil)
	release := grabSlot(t, f, "holder")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- f.Acquire(ctx, "quitter") }()
	for i := 0; i < 1000 && f.Depth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}

	// The cancelled waiter must not absorb the next grant.
	var wg sync.WaitGroup
	var got bool
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.Acquire(context.Background(), "live"); err != nil {
			errCh <- err
			return
		}
		mu.Lock()
		got = true
		mu.Unlock()
		f.Release()
	}()
	release()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !got {
		t.Fatal("live waiter never granted")
	}
}

func TestLatencyTrackerQuantiles(t *testing.T) {
	l := newLatencyTracker(128)
	if l.Quantile(0.95) != 0 {
		t.Fatal("empty tracker should report 0")
	}
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := l.Quantile(0.50); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Quantile(0.99); got < 95*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	// The window slides: after 128 more fast observations the old slow
	// tail is gone.
	for i := 0; i < 128; i++ {
		l.Observe(time.Millisecond)
	}
	if got := l.Quantile(0.99); got != time.Millisecond {
		t.Fatalf("p99 after window slide = %v", got)
	}
}
