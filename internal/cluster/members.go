package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
)

// MemberChange is the POST /v1/members request body, accepted by the
// coordinator (which also rebalances and syncs workers) and by workers
// (which just update their local ring for peer fill and replication).
type MemberChange struct {
	// Action is "add", "remove" (Node required) or "set" (Nodes
	// required, replacing the member list wholesale).
	Action string   `json:"action"`
	Node   string   `json:"node,omitempty"`
	Nodes  []string `json:"nodes,omitempty"`
}

// MembersReply reports the membership after a change (or a GET).
type MembersReply struct {
	Members []string `json:"members"`
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	Changed bool     `json:"changed"`
	// Handoff is set by the coordinator when the change kicked a
	// background key-handoff pass.
	Handoff bool `json:"handoff,omitempty"`
}

// validateNodeURL rejects anything that is not a usable base URL.
func validateNodeURL(p string) error {
	u, err := url.Parse(p)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("cluster: node %q is not a base URL", p)
	}
	return nil
}

// applyChange mutates ring according to ch. It returns what actually
// changed; an add of an existing member or a remove of an unknown one
// is an idempotent no-op, not an error.
func applyChange(ring *Ring, ch MemberChange) (added, removed []string, err error) {
	switch ch.Action {
	case "add":
		if err := validateNodeURL(ch.Node); err != nil {
			return nil, nil, err
		}
		if ring.Add(ch.Node) {
			added = []string{ch.Node}
		}
	case "remove":
		if ch.Node == "" {
			return nil, nil, fmt.Errorf("cluster: remove needs a node")
		}
		members := ring.Nodes()
		if len(members) == 1 && members[0] == ch.Node {
			return nil, nil, fmt.Errorf("cluster: refusing to remove the last member %q", ch.Node)
		}
		if ring.Remove(ch.Node) {
			removed = []string{ch.Node}
		}
	case "set":
		for _, n := range ch.Nodes {
			if err := validateNodeURL(n); err != nil {
				return nil, nil, err
			}
		}
		return ring.SetMembers(ch.Nodes)
	default:
		return nil, nil, fmt.Errorf("cluster: unknown membership action %q", ch.Action)
	}
	return added, removed, nil
}

// WorkerMux layers the fleet-membership endpoints over a worker's base
// API. The coordinator pushes ring updates here after every membership
// change, so the worker's peer fill and replica writes follow the fleet
// as it grows and shrinks instead of staying frozen at boot.
func WorkerMux(base http.Handler, ring *Ring, logf func(format string, args ...any)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/members", func(w http.ResponseWriter, r *http.Request) {
		var ch MemberChange
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&ch); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode member change: %w", err))
			return
		}
		added, removed, err := applyChange(ring, ch)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if logf != nil && (len(added) > 0 || len(removed) > 0) {
			logf("cluster: membership updated (+%d -%d), now %d members", len(added), len(removed), len(ring.Nodes()))
		}
		writeJSON(w, http.StatusOK, MembersReply{
			Members: ring.Nodes(),
			Added:   added,
			Removed: removed,
			Changed: len(added) > 0 || len(removed) > 0,
		})
	})
	mux.HandleFunc("GET /v1/members", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, MembersReply{Members: ring.Nodes()})
	})
	mux.Handle("/", base)
	return mux
}
