package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// PeerFiller lets a worker answer a locally missed submission from a
// peer's cache instead of re-simulating: on a miss it asks the key's
// ring owners (where the coordinator would have cached the result) for
// GET /v1/cache/{key}. Plug Fill into server.Config.PeerFill.
//
// Fill only ever reads peers' *local* caches (the cache endpoint never
// recurses into its own peer fill), so two nodes missing the same key
// cannot chase each other.
type PeerFiller struct {
	ring    *Ring
	self    string
	fanout  int
	timeout time.Duration
	client  *http.Client
}

// NewPeerFiller builds a filler for the node advertised as self over
// the full peer list (which should include self, so the ring every
// node computes is identical). fanout caps how many owners are asked
// per miss (<= 0 means 3); timeout bounds each attempt (<= 0 means 1s).
func NewPeerFiller(self string, peers []string, vnodes, fanout int, timeout time.Duration, client *http.Client) (*PeerFiller, error) {
	ring, err := NewRing(peers, vnodes)
	if err != nil {
		return nil, err
	}
	if fanout <= 0 {
		fanout = 3
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	if client == nil {
		client = &http.Client{}
	}
	return &PeerFiller{ring: ring, self: self, fanout: fanout, timeout: timeout, client: client}, nil
}

// Fill fetches key from its owners, skipping self. The first peer that
// answers with valid JSON wins; every failure mode (down peer, 404,
// garbage) just means "not filled" and the caller simulates locally.
func (p *PeerFiller) Fill(ctx context.Context, key string) ([]byte, bool) {
	asked := 0
	for _, owner := range p.ring.Owners(key, 0) {
		if owner == p.self {
			continue
		}
		if asked >= p.fanout {
			break
		}
		asked++
		if data, ok := p.fetch(ctx, owner, key); ok {
			return data, true
		}
	}
	return nil, false
}

func (p *PeerFiller) fetch(ctx context.Context, owner, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/cache/%s", owner, key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || !json.Valid(data) {
		return nil, false
	}
	return data, true
}
