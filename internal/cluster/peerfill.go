package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// PeerFiller lets a worker answer a locally missed submission from a
// peer's cache instead of re-simulating: on a miss it asks the key's
// ring owners (where the coordinator would have cached the result) for
// GET /v1/cache/{key}. Plug Fill into server.Config.PeerFill.
//
// Fill only ever reads peers' *local* caches (the cache endpoint never
// recurses into its own peer fill), so two nodes missing the same key
// cannot chase each other.
//
// The ring is shared with the node's Replicator and membership handler:
// a membership update pushed by the coordinator redirects fills and
// replica writes alike.
type PeerFiller struct {
	ring    *Ring
	self    string
	fanout  int
	timeout time.Duration
	client  *http.Client
}

// NewPeerFiller builds a filler for the node advertised as self over
// the shared membership ring (built from the full peer list including
// self, so the ring every node computes is identical). fanout caps how
// many owners are asked per miss (<= 0 means 3); timeout bounds each
// attempt (<= 0 means 1s).
func NewPeerFiller(self string, ring *Ring, fanout int, timeout time.Duration, client *http.Client) *PeerFiller {
	if fanout <= 0 {
		fanout = 3
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	if client == nil {
		client = &http.Client{}
	}
	return &PeerFiller{ring: ring, self: self, fanout: fanout, timeout: timeout, client: client}
}

// Fill fetches key from its owners, skipping self. The first peer that
// answers with valid JSON wins; every failure mode (down peer, 404,
// garbage) just means "not filled" and the caller simulates locally.
func (p *PeerFiller) Fill(ctx context.Context, key string) ([]byte, bool) {
	asked := 0
	for _, owner := range p.ring.Owners(key, 0) {
		if owner == p.self {
			continue
		}
		if asked >= p.fanout {
			break
		}
		asked++
		if data, ok := p.fetch(ctx, owner, key); ok {
			return data, true
		}
	}
	return nil, false
}

func (p *PeerFiller) fetch(ctx context.Context, owner, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/cache/%s", owner, key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || !json.Valid(data) {
		return nil, false
	}
	return data, true
}

// Replicator pushes a completed result to the other ring owners of its
// key so a single node death loses no cached entry. Plug Replicate into
// server.Config.Replicate; the server calls it asynchronously after
// every simulation completes.
type Replicator struct {
	ring     *Ring
	self     string
	replicas int
	timeout  time.Duration
	client   *http.Client
}

// NewReplicator builds a replicator over the shared membership ring.
// replicas is the total copies a result should have across the fleet,
// counting the one the completing node already wrote (<= 0 means 2:
// primary + one replica); timeout bounds each push (<= 0 means 5s).
func NewReplicator(self string, ring *Ring, replicas int, timeout time.Duration, client *http.Client) *Replicator {
	if replicas <= 0 {
		replicas = 2
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if client == nil {
		client = &http.Client{}
	}
	return &Replicator{ring: ring, self: self, replicas: replicas, timeout: timeout, client: client}
}

// Replicate PUTs data to key's first `replicas` ring owners, skipping
// this node (which already holds the result). When the completing node
// is itself one of those owners this pushes replicas-1 copies; when the
// result was simulated off-placement (a direct submission to the
// "wrong" node) it repairs placement by pushing to every owner. Each
// push is best-effort: a dead target simply stays behind, and the
// coordinator's handoff pass or the next completion heals it.
func (r *Replicator) Replicate(ctx context.Context, key string, data []byte) (pushed, failed int) {
	for _, owner := range r.ring.Owners(key, r.replicas) {
		if owner == r.self {
			continue
		}
		if r.push(ctx, owner, key, data) {
			pushed++
		} else {
			failed++
		}
	}
	return pushed, failed
}

func (r *Replicator) push(ctx context.Context, owner, key string, data []byte) bool {
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, fmt.Sprintf("%s/v1/cache/%s", owner, key), bytes.NewReader(data))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}
