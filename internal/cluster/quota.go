package cluster

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Quotas is a per-tenant token-bucket rate limiter in front of the
// coordinator. Every tenant gets the same rate/burst; buckets are
// created lazily on first use and refilled on demand from elapsed
// time, so an idle tenant costs nothing.
type Quotas struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas builds a limiter granting rate tokens/sec with the given
// burst per tenant. rate <= 0 disables limiting (Allow always true).
func NewQuotas(rate, burst float64) *Quotas {
	if burst < 1 {
		burst = 1
	}
	return &Quotas{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from tenant's bucket, reporting whether one
// was available.
func (q *Quotas) Allow(tenant string) bool {
	if q.rate <= 0 {
		return true
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter reports how long tenant must wait for the bucket to refill
// one whole token — the honest Retry-After value for a quota rejection.
// Zero when limiting is off or a token is already available.
func (q *Quotas) RetryAfter(tenant string) time.Duration {
	if q.rate <= 0 {
		return 0
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		return 0 // fresh bucket starts full
	}
	tokens := b.tokens
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		tokens += dt * q.rate
		if tokens > q.burst {
			tokens = q.burst
		}
	}
	if tokens >= 1 {
		return 0
	}
	return time.Duration((1 - tokens) / q.rate * float64(time.Second))
}

// waiter is one queued Acquire, tagged with its virtual finish time.
type waiter struct {
	finish    float64
	grant     chan struct{}
	granted   bool
	cancelled bool
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].finish < h[j].finish }
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)        { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// FairQueue bounds the coordinator's concurrent forwards at slots and,
// when oversubscribed, dequeues waiting tenants in weighted-fair order
// (virtual-time WFQ: each grant advances a tenant's virtual time by
// 1/weight, and the globally smallest finish tag runs next). A tenant
// hammering the coordinator therefore queues behind itself, not behind
// everyone else.
type FairQueue struct {
	slots  int
	weight func(tenant string) float64

	mu       sync.Mutex
	inflight int
	vtime    float64
	finishes map[string]float64 // per-tenant last finish tag
	waiting  waiterHeap
}

// NewFairQueue builds a queue admitting slots concurrent holders.
// weight maps a tenant to its share (nil or non-positive values mean
// weight 1).
func NewFairQueue(slots int, weight func(tenant string) float64) *FairQueue {
	if slots <= 0 {
		slots = 64
	}
	return &FairQueue{
		slots:    slots,
		weight:   weight,
		finishes: make(map[string]float64),
	}
}

// Acquire blocks until the caller holds a slot or ctx is done. On
// success the caller must Release exactly once.
func (f *FairQueue) Acquire(ctx context.Context, tenant string) error {
	f.mu.Lock()
	if f.inflight < f.slots && len(f.waiting) == 0 {
		f.inflight++
		f.mu.Unlock()
		return nil
	}
	w := &waiter{finish: f.finishTag(tenant), grant: make(chan struct{})}
	heap.Push(&f.waiting, w)
	f.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		f.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed while we were leaving.
			// Hand the slot straight back.
			f.mu.Unlock()
			f.Release()
			return ctx.Err()
		}
		w.cancelled = true
		f.mu.Unlock()
		return ctx.Err()
	}
}

// finishTag computes the waiter's virtual finish time. Callers hold
// f.mu.
func (f *FairQueue) finishTag(tenant string) float64 {
	wt := 1.0
	if f.weight != nil {
		if v := f.weight(tenant); v > 0 {
			wt = v
		}
	}
	start := f.vtime
	if last := f.finishes[tenant]; last > start {
		start = last
	}
	finish := start + 1/wt
	f.finishes[tenant] = finish
	return finish
}

// Release returns a slot and grants it to the fairest waiter.
func (f *FairQueue) Release() {
	f.mu.Lock()
	f.inflight--
	for f.inflight < f.slots && len(f.waiting) > 0 {
		w := heap.Pop(&f.waiting).(*waiter)
		if w.cancelled {
			continue
		}
		w.granted = true
		f.inflight++
		if w.finish > f.vtime {
			f.vtime = w.finish
		}
		close(w.grant)
	}
	f.mu.Unlock()
}

// Depth returns the number of queued (not yet granted) acquires.
func (f *FairQueue) Depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiting)
}
