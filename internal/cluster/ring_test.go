package cluster

import (
	"reflect"
	"testing"
)

func threeNodes() []string {
	return []string{"http://node-a:1", "http://node-b:1", "http://node-c:1"}
}

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	r1, err := NewRing(threeNodes(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// A second ring built from the same members (different order) must
	// agree on every routing decision — workers and the coordinator
	// each build their own.
	r2, err := NewRing([]string{"http://node-c:1", "http://node-a:1", "http://node-b:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"k1", "k2", "deadbeef", "0000", "zzzz"} {
		o1 := r1.Owners(key, 0)
		o2 := r2.Owners(key, 0)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("rings disagree for %q: %v vs %v", key, o1, o2)
		}
		if len(o1) != 3 {
			t.Fatalf("want all 3 distinct owners, got %v", o1)
		}
		seen := map[string]bool{}
		for _, n := range o1 {
			if seen[n] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[n] = true
		}
		if got := r1.Owners(key, 2); len(got) != 2 || got[0] != o1[0] || got[1] != o1[1] {
			t.Fatalf("Owners(_, 2) = %v, want prefix of %v", got, o1)
		}
	}
}

func TestRingDeadNodeDemoted(t *testing.T) {
	r, _ := NewRing(threeNodes(), 64)
	key := "some-content-hash"
	before := r.Owners(key, 0)
	primary := before[0]
	if !r.SetAlive(primary, false) {
		t.Fatal("SetAlive(false) reported no change")
	}
	after := r.Owners(key, 0)
	if after[0] == primary {
		t.Fatalf("dead primary still first: %v", after)
	}
	if after[len(after)-1] != primary {
		t.Fatalf("dead node should trail as last resort: %v", after)
	}
	if r.AliveCount() != 2 {
		t.Fatalf("alive count %d", r.AliveCount())
	}
	// Revival restores the original preference order.
	r.SetAlive(primary, true)
	if got := r.Owners(key, 0); !reflect.DeepEqual(got, before) {
		t.Fatalf("after revival %v, want %v", got, before)
	}
	if r.SetAlive("http://not-a-member:9", false) {
		t.Fatal("non-member SetAlive reported a change")
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing(threeNodes(), 64)
	nodes, shares := r.Ownership(4096)
	if len(nodes) != 3 {
		t.Fatalf("nodes %v", nodes)
	}
	var sum float64
	for i, s := range shares {
		sum += s
		// With 64 vnodes each, shares should be within a loose band of
		// the ideal 1/3.
		if s < 0.15 || s > 0.55 {
			t.Fatalf("node %s owns %.3f of the keyspace — ring is unbalanced (%v %v)", nodes[i], s, nodes, shares)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestRingRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// ownersDistinct fails the test if any key's owner list repeats a
// physical node — the invariant that keeps replication and handoff from
// counting one copy twice.
func ownersDistinct(t *testing.T, r *Ring, keys []string) {
	t.Helper()
	for _, key := range keys {
		owners := r.Owners(key, 0)
		seen := map[string]bool{}
		for _, n := range owners {
			if seen[n] {
				t.Fatalf("key %q: duplicate owner in %v", key, owners)
			}
			seen[n] = true
		}
		if len(owners) != len(r.Nodes()) {
			t.Fatalf("key %q: owners %v does not cover the %d members", key, owners, len(r.Nodes()))
		}
	}
}

var ringProbeKeys = []string{"k1", "k2", "deadbeef", "0000", "zzzz", "some-content-hash"}

// TestRingAddRemove pins the membership-change table: each step mutates
// the ring and the result must equal a fresh ring built from the final
// member list — vnodes of removed-then-readded members must interleave
// exactly as if the node had always been there, and Owners must never
// repeat a physical node.
func TestRingAddRemove(t *testing.T) {
	a, b, c, d := "http://node-a:1", "http://node-b:1", "http://node-c:1", "http://node-d:1"
	steps := []struct {
		name    string
		op      func(r *Ring) bool
		wantOK  bool
		members []string
	}{
		{"add new node", func(r *Ring) bool { return r.Add(d) }, true, []string{a, b, c, d}},
		{"add existing node", func(r *Ring) bool { return r.Add(d) }, false, []string{a, b, c, d}},
		{"remove member", func(r *Ring) bool { return r.Remove(b) }, true, []string{a, c, d}},
		{"remove non-member", func(r *Ring) bool { return r.Remove(b) }, false, []string{a, c, d}},
		{"re-add removed member", func(r *Ring) bool { return r.Add(b) }, true, []string{a, b, c, d}},
		{"remove again", func(r *Ring) bool { return r.Remove(d) }, true, []string{a, b, c}},
		{"add empty name", func(r *Ring) bool { return r.Add("") }, false, []string{a, b, c}},
	}
	r, err := NewRing(threeNodes(), 64)
	if err != nil {
		t.Fatal(err)
	}
	gen := r.Generation()
	for _, step := range steps {
		if got := step.op(r); got != step.wantOK {
			t.Fatalf("%s: reported %v, want %v", step.name, got, step.wantOK)
		}
		if got := r.Nodes(); !reflect.DeepEqual(got, step.members) {
			t.Fatalf("%s: members %v, want %v", step.name, got, step.members)
		}
		if step.wantOK {
			if g := r.Generation(); g != gen+1 {
				t.Fatalf("%s: generation %d, want %d", step.name, g, gen+1)
			}
			gen++
		} else if g := r.Generation(); g != gen {
			t.Fatalf("%s: no-op bumped the generation", step.name)
		}
		ownersDistinct(t, r, ringProbeKeys)
		// The mutated ring must agree with a fresh one on every routing
		// decision — workers and the coordinator each build their own.
		fresh, err := NewRing(step.members, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range ringProbeKeys {
			if got, want := r.Owners(key, 0), fresh.Owners(key, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ring diverged from fresh build for %q: %v vs %v", step.name, key, got, want)
			}
		}
	}
}

// TestRingRemoveReaddKeepsOwnersDistinct churns one member in and out
// while another is marked dead, so live-first reordering runs against
// interleaved vnodes of the re-added node.
func TestRingRemoveReaddKeepsOwnersDistinct(t *testing.T) {
	r, err := NewRing(threeNodes(), 64)
	if err != nil {
		t.Fatal(err)
	}
	churn := "http://node-b:1"
	if !r.SetAlive("http://node-c:1", false) {
		t.Fatal("SetAlive(false) on member reported no change")
	}
	for i := 0; i < 5; i++ {
		if !r.Remove(churn) {
			t.Fatalf("round %d: remove failed", i)
		}
		ownersDistinct(t, r, ringProbeKeys)
		if !r.Add(churn) {
			t.Fatalf("round %d: re-add failed", i)
		}
		ownersDistinct(t, r, ringProbeKeys)
		// A re-added node starts alive regardless of its pre-removal
		// state.
		if !r.IsAlive(churn) {
			t.Fatalf("round %d: re-added node not alive", i)
		}
	}
	// The untouched dead node stayed dead across the churn.
	if r.IsAlive("http://node-c:1") {
		t.Fatal("dead node revived by unrelated membership changes")
	}
}

// TestRingSetAliveUnknownNode pins the contract the prober and the
// forward path rely on: liveness flips on unknown nodes report false
// (no change) instead of silently materializing a member the way Add
// would.
func TestRingSetAliveUnknownNode(t *testing.T) {
	r, err := NewRing(threeNodes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, alive := range []bool{true, false} {
		if r.SetAlive("http://not-a-member:9", alive) {
			t.Fatalf("SetAlive(unknown, %v) reported a change", alive)
		}
	}
	if got := len(r.Nodes()); got != 3 {
		t.Fatalf("SetAlive grew the membership to %d", got)
	}
	// A removed node is unknown too: its stale liveness updates (a late
	// prober goroutine) must not resurrect it.
	gone := "http://node-a:1"
	if !r.Remove(gone) {
		t.Fatal("remove failed")
	}
	if r.SetAlive(gone, true) {
		t.Fatal("SetAlive on a removed node reported a change")
	}
	if r.IsAlive(gone) {
		t.Fatal("removed node reads as alive")
	}
}

// TestRingRemoveLastMemberRefused: a ring with no nodes routes nothing,
// so the final member is pinned.
func TestRingRemoveLastMemberRefused(t *testing.T) {
	r, err := NewRing([]string{"http://only:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remove("http://only:1") {
		t.Fatal("last member removed")
	}
	if got := r.Nodes(); len(got) != 1 {
		t.Fatalf("membership %v", got)
	}
}

func TestRingSetMembers(t *testing.T) {
	r, err := NewRing(threeNodes(), 16)
	if err != nil {
		t.Fatal(err)
	}
	r.SetAlive("http://node-b:1", false)

	added, removed, err := r.SetMembers([]string{"http://node-b:1", "http://node-c:1", "http://node-d:1"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(added, []string{"http://node-d:1"}) || !reflect.DeepEqual(removed, []string{"http://node-a:1"}) {
		t.Fatalf("added %v removed %v", added, removed)
	}
	// Retained members keep their liveness; new ones start alive.
	if r.IsAlive("http://node-b:1") {
		t.Fatal("reload revived a dead retained member")
	}
	if !r.IsAlive("http://node-d:1") {
		t.Fatal("new member not alive")
	}
	ownersDistinct(t, r, ringProbeKeys)

	// An identical list is a no-op and does not bump the generation.
	gen := r.Generation()
	added, removed, err = r.SetMembers([]string{"http://node-d:1", "http://node-c:1", "http://node-b:1"})
	if err != nil || added != nil || removed != nil {
		t.Fatalf("no-op reload: added %v removed %v err %v", added, removed, err)
	}
	if r.Generation() != gen {
		t.Fatal("no-op reload bumped the generation")
	}

	if _, _, err := r.SetMembers(nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, _, err := r.SetMembers([]string{"x", "x"}); err == nil {
		t.Fatal("duplicate member list accepted")
	}
}
