package cluster

import (
	"reflect"
	"testing"
)

func threeNodes() []string {
	return []string{"http://node-a:1", "http://node-b:1", "http://node-c:1"}
}

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	r1, err := NewRing(threeNodes(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// A second ring built from the same members (different order) must
	// agree on every routing decision — workers and the coordinator
	// each build their own.
	r2, err := NewRing([]string{"http://node-c:1", "http://node-a:1", "http://node-b:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"k1", "k2", "deadbeef", "0000", "zzzz"} {
		o1 := r1.Owners(key, 0)
		o2 := r2.Owners(key, 0)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("rings disagree for %q: %v vs %v", key, o1, o2)
		}
		if len(o1) != 3 {
			t.Fatalf("want all 3 distinct owners, got %v", o1)
		}
		seen := map[string]bool{}
		for _, n := range o1 {
			if seen[n] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[n] = true
		}
		if got := r1.Owners(key, 2); len(got) != 2 || got[0] != o1[0] || got[1] != o1[1] {
			t.Fatalf("Owners(_, 2) = %v, want prefix of %v", got, o1)
		}
	}
}

func TestRingDeadNodeDemoted(t *testing.T) {
	r, _ := NewRing(threeNodes(), 64)
	key := "some-content-hash"
	before := r.Owners(key, 0)
	primary := before[0]
	if !r.SetAlive(primary, false) {
		t.Fatal("SetAlive(false) reported no change")
	}
	after := r.Owners(key, 0)
	if after[0] == primary {
		t.Fatalf("dead primary still first: %v", after)
	}
	if after[len(after)-1] != primary {
		t.Fatalf("dead node should trail as last resort: %v", after)
	}
	if r.AliveCount() != 2 {
		t.Fatalf("alive count %d", r.AliveCount())
	}
	// Revival restores the original preference order.
	r.SetAlive(primary, true)
	if got := r.Owners(key, 0); !reflect.DeepEqual(got, before) {
		t.Fatalf("after revival %v, want %v", got, before)
	}
	if r.SetAlive("http://not-a-member:9", false) {
		t.Fatal("non-member SetAlive reported a change")
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing(threeNodes(), 64)
	nodes, shares := r.Ownership(4096)
	if len(nodes) != 3 {
		t.Fatalf("nodes %v", nodes)
	}
	var sum float64
	for i, s := range shares {
		sum += s
		// With 64 vnodes each, shares should be within a loose band of
		// the ideal 1/3.
		if s < 0.15 || s > 0.55 {
			t.Fatalf("node %s owns %.3f of the keyspace — ring is unbalanced (%v %v)", nodes[i], s, nodes, shares)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestRingRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate member accepted")
	}
}
