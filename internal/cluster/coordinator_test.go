package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/server"
	"repro/internal/store"
)

// worker is one in-process simd node.
type worker struct {
	srv *server.Server
	ts  *httptest.Server
	url string
}

// startWorker boots a real internal/server node behind an httptest
// listener. mutate may adjust the config (e.g. Workers: 1); setFiller,
// when non-nil, receives a hook that installs a PeerFiller after every
// node's URL is known.
func startWorker(t *testing.T, mutate func(*server.Config)) (*worker, *func(ctx context.Context, key string) ([]byte, bool)) {
	t.Helper()
	st, err := store.New(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var fill func(ctx context.Context, key string) ([]byte, bool)
	cfg := server.Config{
		Store:        st,
		QueueSize:    16,
		Workers:      2,
		SimWorkers:   2,
		JobTimeout:   time.Minute,
		Retries:      0,
		RetryBackoff: time.Millisecond,
		Logf:         t.Logf,
		PeerFill: func(ctx context.Context, key string) ([]byte, bool) {
			if fill == nil {
				return nil, false
			}
			return fill(ctx, key)
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	w := &worker{srv: srv, ts: ts, url: ts.URL}
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return w, &fill
}

// kill severs the worker's network presence without waiting for
// in-flight handlers: the listener closes and every open client
// connection is dropped, like a SIGKILL would.
func (w *worker) kill() {
	w.ts.Listener.Close()
	w.ts.CloseClientConnections()
}

func startFleet(t *testing.T, n int, mutate func(i int, cfg *server.Config)) ([]*worker, *Coordinator) {
	t.Helper()
	workers := make([]*worker, n)
	fills := make([]*func(ctx context.Context, key string) ([]byte, bool), n)
	urls := make([]string, n)
	for i := range workers {
		i := i
		workers[i], fills[i] = startWorker(t, func(cfg *server.Config) {
			if mutate != nil {
				mutate(i, cfg)
			}
		})
		urls[i] = workers[i].url
	}
	// Now that every URL is known, give each node a real peer filler
	// over its own membership ring (as cmd/simd does).
	for i, w := range workers {
		ring, err := NewRing(urls, 16)
		if err != nil {
			t.Fatal(err)
		}
		pf := NewPeerFiller(w.url, ring, 0, time.Second, nil)
		*fills[i] = pf.Fill
	}
	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          urls,
		VNodes:         16,
		Replicas:       n,
		HedgeAfterMin:  500 * time.Millisecond, // effectively off unless a test lowers it
		HealthInterval: time.Hour,              // tests drive liveness explicitly
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return workers, c
}

func testSpec(seed uint64) server.RunSpec {
	return server.RunSpec{Scheme: "rrob", Threshold: 16, Mixes: []string{"Mix 1"}, Budget: 2_000, Seed: seed}
}

// submitVia posts spec to handler with ?wait=1 and returns the parsed
// envelope plus response metadata.
type submitResp struct {
	status int
	node   string
	hedged bool
	Cache  string          `json:"cache"`
	Status string          `json:"status"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func submitVia(t *testing.T, h http.Handler, spec server.RunSpec, tenant string) submitResp {
	t.Helper()
	body, _ := json.Marshal(spec)
	req := httptest.NewRequest(http.MethodPost, "/v1/runs?wait=1", bytes.NewReader(body))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := submitResp{status: rec.Code, node: rec.Header().Get("X-Simd-Node"), hedged: rec.Header().Get("X-Simd-Hedged") != ""}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil && rec.Code == http.StatusOK {
		t.Fatalf("bad response body (%d): %s", rec.Code, rec.Body.String())
	}
	return out
}

// specOwnedBy searches seeds until the spec's primary owner is the
// given node, so tests can route deterministically.
func specOwnedBy(t *testing.T, c *Coordinator, node string) server.RunSpec {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		spec := testSpec(seed)
		key, err := server.SpecKey(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c.Owners(key)[0] == node {
			return spec
		}
	}
	t.Fatal("no seed found whose primary is the requested node")
	return server.RunSpec{}
}

// calibrateBudget sizes an instruction budget so one run of testSpec
// takes roughly wallTarget on this machine (the race detector slows the
// engine by orders of magnitude, so fixed budgets are untestable). It
// measures a 50k-budget run on its own throwaway worker.
func calibrateBudget(t *testing.T, wallTarget time.Duration) uint64 {
	t.Helper()
	w, _ := startWorker(t, nil)
	spec := testSpec(424_242)
	spec.Budget = 50_000
	start := time.Now()
	if r := submitVia(t, w.srv.Handler(), spec, ""); r.status != http.StatusOK {
		t.Fatalf("calibration run: %+v", r)
	}
	rate := float64(spec.Budget) / time.Since(start).Seconds()
	b := uint64(rate * wallTarget.Seconds())
	if b < 100_000 {
		b = 100_000
	}
	if b > 50_000_000 {
		b = 50_000_000
	}
	t.Logf("calibrated: %.0f cycles/sec -> budget %d for ~%v", rate, b, wallTarget)
	return b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShardingAndPeerCacheFill: a result simulated via the coordinator
// lands on its shard owner; a client hitting a *different* node
// directly is served through peer fill with no second simulation.
func TestShardingAndPeerCacheFill(t *testing.T) {
	workers, c := startFleet(t, 3, nil)
	spec := testSpec(7)

	r1 := submitVia(t, c.Handler(), spec, "tenant-1")
	if r1.status != http.StatusOK || r1.Status != "done" || r1.Cache != "miss" {
		t.Fatalf("first submit: %+v", r1)
	}
	// Exactly one node simulated, and it is the ring primary.
	key, _ := server.SpecKey(spec, 0)
	var simNode *worker
	sims := 0
	for _, w := range workers {
		st := w.srv.Stats()
		sims += int(st.Simulations)
		if st.Simulations > 0 {
			simNode = w
		}
	}
	if sims != 1 || simNode == nil {
		t.Fatalf("want exactly 1 simulation in the fleet, got %d", sims)
	}
	if owner := c.Owners(key)[0]; owner != simNode.url {
		t.Fatalf("simulated on %s but ring primary is %s", simNode.url, owner)
	}

	// Hit a different node directly: peer fill, not re-simulation.
	var other *worker
	for _, w := range workers {
		if w != simNode {
			other = w
			break
		}
	}
	r2 := submitVia(t, other.srv.Handler(), spec, "")
	if r2.status != http.StatusOK || r2.Cache != "hit" {
		t.Fatalf("direct submit to non-owner: %+v", r2)
	}
	if !bytes.Equal(r2.Result, r1.Result) {
		t.Fatal("peer-filled result differs from the original")
	}
	st := other.srv.Stats()
	if st.PeerFillHits != 1 || st.Simulations != 0 {
		t.Fatalf("non-owner stats: %+v", st)
	}
	if os := simNode.srv.Stats(); os.PeerServed != 1 {
		t.Fatalf("owner did not serve the fill: %+v", os)
	}
}

// TestChaosKillWorkerMidSweep kills a worker while its sweep is
// running: the coordinator must reroute to a replica and the client
// still gets a result byte-identical to an undisturbed run.
func TestChaosKillWorkerMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multi-second calibrated sweeps")
	}
	workers, c := startFleet(t, 3, nil)
	byURL := map[string]*worker{}
	for _, w := range workers {
		byURL[w.url] = w
	}

	// Reference: an undisturbed single-node run of the same spec.
	ref, _ := startWorker(t, nil)
	// A spec big enough (~2s) to still be in flight when the kill lands.
	spec := testSpec(11)
	spec.Budget = calibrateBudget(t, 2*time.Second)
	refResp := submitVia(t, ref.srv.Handler(), spec, "")
	if refResp.status != http.StatusOK || refResp.Status != "done" {
		t.Fatalf("reference run: %+v", refResp)
	}

	key, _ := server.SpecKey(spec, 0)
	victim := byURL[c.Owners(key)[0]]

	done := make(chan submitResp, 1)
	go func() { done <- submitVia(t, c.Handler(), spec, "tenant-chaos") }()

	// Wait until the victim is actually simulating, then kill it.
	waitFor(t, "victim to start the sweep", func() bool { return victim.srv.Stats().Inflight > 0 })
	victim.kill()

	var r submitResp
	select {
	case r = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("submission never completed after the kill")
	}
	if r.status != http.StatusOK || r.Status != "done" {
		t.Fatalf("post-kill response: %+v", r)
	}
	if !bytes.Equal(r.Result, refResp.Result) {
		t.Fatal("rerouted result is not byte-identical to the reference run")
	}
	if r.node == victim.url {
		t.Fatalf("response claims to come from the killed node %s", r.node)
	}
	st := c.Stats()
	if st.Reroutes < 1 {
		t.Fatalf("no reroute recorded: %+v", st)
	}
	// The forward path marked the dead node down without waiting for
	// the prober.
	if c.ring.IsAlive(victim.url) {
		t.Fatal("killed node still marked alive")
	}
}

// TestHedgedRequestWinsAndLoserIsCancelled pins the tail-latency path:
// the primary is wedged (its single worker slot is occupied), the hedge
// fires to the replica and wins, and the losing arm's job on the
// primary is cancelled — freeing its queue slot — once the client is
// answered.
func TestHedgedRequestWinsAndLoserIsCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multi-second calibrated sweeps")
	}
	workers, c0 := startFleet(t, 2, func(i int, cfg *server.Config) {
		cfg.Workers = 1 // one slot per node so a single blocker wedges it
	})
	c0.Close() // rebuild with a fast hedge below
	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{workers[0].url, workers[1].url},
		VNodes:         16,
		Replicas:       2,
		HedgeAfterMin:  30 * time.Millisecond,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	byURL := map[string]*worker{workers[0].url: workers[0], workers[1].url: workers[1]}
	spec := specOwnedBy(t, c, workers[0].url)
	primary := byURL[c.Owners(mustKey(t, spec))[0]]

	// Wedge the primary: a long (~4s) detached run occupies its only
	// slot.
	blocker := testSpec(9999)
	blocker.Budget = calibrateBudget(t, 4*time.Second)
	bj, cached, err := primary.srv.Submit(context.Background(), blocker, true)
	if err != nil || cached != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	waitFor(t, "blocker to occupy the slot", func() bool { return primary.srv.Stats().Inflight == 1 })

	r := submitVia(t, c.Handler(), spec, "tenant-hedge")
	if r.status != http.StatusOK || r.Status != "done" {
		t.Fatalf("hedged submit: %+v", r)
	}
	if r.node == primary.url {
		t.Fatalf("response came from the wedged primary")
	}
	if !r.hedged {
		t.Fatal("winning response not marked as hedged")
	}
	st := c.Stats()
	if st.HedgesFired < 1 || st.HedgesWon < 1 {
		t.Fatalf("hedge counters: %+v", st)
	}

	// The losing arm is still queued behind the blocker on the primary,
	// but the coordinator's cancel already severed its client — so once
	// the blocker unwinds, the loser must drain as cancelled-while-queued
	// without ever simulating.
	waitFor(t, "loser to appear in the primary's queue", func() bool {
		return primary.srv.Stats().QueueDepth >= 1
	})
	if !primary.srv.Cancel(bj.ID) {
		t.Fatal("blocker cancel rejected")
	}
	// Once the blocker unwinds, the dequeued loser must be discarded as
	// cancelled — freeing the queue and the slot without running.
	waitFor(t, "loser job cancellation", func() bool {
		st := primary.srv.Stats()
		return st.Canceled >= 1 && st.QueueDepth == 0 && st.Inflight == 0
	})
	// The loser never consumed the freed slot for real work: the only
	// simulation the primary ever started was the blocker's.
	if sims := primary.srv.Stats().Simulations; sims != 1 {
		t.Fatalf("primary simulations = %d, want just the blocker's", sims)
	}
	// And the spec was simulated exactly once fleet-wide — on the
	// winning replica.
	if sims := byURL[r.node].srv.Stats().Simulations; sims != 1 {
		t.Fatalf("replica simulations = %d", sims)
	}
}

func mustKey(t *testing.T, spec server.RunSpec) string {
	t.Helper()
	key, err := server.SpecKey(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestRerouteOn429 proves a shard answering 429 is retried on the next
// replica instead of surfacing the backpressure to the client.
func TestRerouteOn429(t *testing.T) {
	// A fake always-overloaded node plus a real worker.
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/healthz") {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer overloaded.Close()
	real, _ := startWorker(t, nil)

	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{overloaded.URL, real.url},
		VNodes:         16,
		Replicas:       2,
		HedgeAfterMin:  time.Second,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	spec := specOwnedBy(t, c, overloaded.URL)
	r := submitVia(t, c.Handler(), spec, "")
	if r.status != http.StatusOK || r.Status != "done" {
		t.Fatalf("submit via overloaded primary: %+v", r)
	}
	if r.node != real.url {
		t.Fatalf("served by %s, want the real node", r.node)
	}
	if st := c.Stats(); st.Reroutes429 < 1 {
		t.Fatalf("429 reroute not counted: %+v", st)
	}
}

// TestQuotaRejectsOverLimitTenant: the token bucket answers 429 before
// any forwarding happens.
func TestQuotaRejectsOverLimitTenant(t *testing.T) {
	w, _ := startWorker(t, nil)
	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{w.url},
		VNodes:         16,
		QuotaRate:      0.001, // effectively no refill during the test
		QuotaBurst:     2,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	spec := testSpec(3)
	for i := 0; i < 2; i++ {
		if r := submitVia(t, c.Handler(), spec, "greedy"); r.status != http.StatusOK {
			t.Fatalf("request %d inside burst rejected: %+v", i, r)
		}
	}
	r := submitVia(t, c.Handler(), spec, "greedy")
	if r.status != http.StatusTooManyRequests {
		t.Fatalf("over-quota request got %d, want 429", r.status)
	}
	// Another tenant is unaffected.
	if r := submitVia(t, c.Handler(), spec, "patient"); r.status != http.StatusOK {
		t.Fatalf("other tenant rejected: %+v", r)
	}
	if st := c.Stats(); st.QuotaRejected != 1 {
		t.Fatalf("quota counter: %+v", st)
	}
}

// TestFleetAggregation checks /v1/fleet merges node stats, ownership
// and coordinator counters.
func TestFleetAggregation(t *testing.T) {
	workers, c := startFleet(t, 3, nil)
	submitVia(t, c.Handler(), testSpec(21), "t")
	submitVia(t, c.Handler(), testSpec(22), "t")

	req := httptest.NewRequest(http.MethodGet, "/v1/fleet", nil)
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/fleet -> %d", rec.Code)
	}
	var fleet Fleet
	if err := json.Unmarshal(rec.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Nodes) != len(workers) {
		t.Fatalf("fleet nodes: %+v", fleet.Nodes)
	}
	var share float64
	for _, n := range fleet.Nodes {
		if !n.Alive || n.Stats == nil {
			t.Fatalf("node %s: alive=%v stats=%v err=%s", n.URL, n.Alive, n.Stats != nil, n.Error)
		}
		share += n.Ownership
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("ownership shares sum to %f", share)
	}
	if fleet.Totals.Submitted < 2 || fleet.Totals.Simulations != 2 {
		t.Fatalf("totals: %+v", fleet.Totals)
	}
	if fleet.Coordinator.Forwards != 2 || fleet.Coordinator.CacheMisses != 2 {
		t.Fatalf("coordinator stats: %+v", fleet.Coordinator)
	}

	// The metrics endpoint renders the same counters in Prometheus
	// text form.
	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"simd_cluster_nodes 3",
		"simd_cluster_nodes_alive 3",
		"simd_cluster_forwards_total 2",
		"simd_cluster_ownership{node=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHealthProberRevivesNode: the background prober flips liveness
// both ways.
func TestHealthProberRevivesNode(t *testing.T) {
	var down sync.Mutex
	dead := false
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		down.Lock()
		d := dead
		down.Unlock()
		if d {
			http.Error(w, "dying", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer node.Close()

	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{node.URL},
		VNodes:         8,
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	waitFor(t, "initial liveness", func() bool { return c.ring.AliveCount() == 1 })
	down.Lock()
	dead = true
	down.Unlock()
	waitFor(t, "death detection", func() bool { return c.ring.AliveCount() == 0 })
	down.Lock()
	dead = false
	down.Unlock()
	waitFor(t, "revival", func() bool { return c.ring.AliveCount() == 1 })
	if st := c.Stats(); st.NodeDeaths < 1 || st.NodeRevivals < 1 {
		t.Fatalf("transition counters: %+v", st)
	}
}

// TestProxyJobRoutes: async submits can be watched through the
// coordinator, which proxies job endpoints to the owning node.
func TestProxyJobRoutes(t *testing.T) {
	_, c := startFleet(t, 2, nil)
	body, _ := json.Marshal(testSpec(31))
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body)) // no wait: 202 + id
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit -> %d: %s", rec.Code, rec.Body.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil || sub.ID == "" {
		t.Fatalf("no job id in %s", rec.Body.String())
	}

	waitFor(t, "proxied job to finish", func() bool {
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/"+sub.ID, nil))
		if rec.Code != http.StatusOK {
			return false
		}
		var snap struct {
			Status string `json:"status"`
		}
		return json.Unmarshal(rec.Body.Bytes(), &snap) == nil && snap.Status == "done"
	})

	// Unknown jobs 404 instead of guessing a node.
	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job -> %d", rec.Code)
	}
}

// TestJobRouteEviction pins the route-map lifecycle that used to leak:
// a status poll that sees a terminal job starts the RouteTTL clock, the
// sweep then shrinks the map, a DELETE evicts immediately, and the
// RouteMaxAge backstop clears entries never observed terminal.
func TestJobRouteEviction(t *testing.T) {
	_, c := startFleet(t, 2, nil)
	// An injectable clock so the test can jump past the TTLs.
	base := time.Now()
	offset := time.Duration(0)
	var clockMu sync.Mutex
	c.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return base.Add(offset)
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		offset += d
		clockMu.Unlock()
	}

	submitAsync := func(seed uint64) string {
		t.Helper()
		body, _ := json.Marshal(testSpec(seed))
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body)))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("async submit -> %d: %s", rec.Code, rec.Body.String())
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil || sub.ID == "" {
			t.Fatalf("no job id in %s", rec.Body.String())
		}
		return sub.ID
	}
	get := func(id string) int {
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/"+id, nil))
		return rec.Code
	}

	// Terminal-status eviction: poll until done, jump past RouteTTL,
	// sweep — the map shrinks and later polls 404.
	id := submitAsync(41)
	if c.RouteCount() != 1 {
		t.Fatalf("route count %d after submit", c.RouteCount())
	}
	waitFor(t, "proxied job to finish", func() bool {
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/"+id, nil))
		var snap struct {
			Status string `json:"status"`
		}
		return rec.Code == http.StatusOK && json.Unmarshal(rec.Body.Bytes(), &snap) == nil && snap.Status == "done"
	})
	// Inside the TTL the route survives sweeps: polling clients keep
	// working right after completion.
	c.sweepRoutes()
	if c.RouteCount() != 1 {
		t.Fatal("terminal route evicted before its TTL")
	}
	advance(c.cfg.RouteTTL + time.Second)
	c.sweepRoutes()
	if c.RouteCount() != 0 {
		t.Fatalf("route count %d after TTL sweep", c.RouteCount())
	}
	if code := get(id); code != http.StatusNotFound {
		t.Fatalf("evicted job GET -> %d, want 404", code)
	}
	if st := c.Stats(); st.RouteEvictions < 1 {
		t.Fatalf("eviction not counted: %+v", st)
	}

	// DELETE evicts immediately — no TTL wait.
	id = submitAsync(42)
	waitFor(t, "cancel to land", func() bool {
		rec := httptest.NewRecorder()
		c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/runs/"+id, nil))
		return rec.Code == http.StatusOK
	})
	if c.RouteCount() != 0 {
		t.Fatalf("route count %d after DELETE", c.RouteCount())
	}

	// MaxAge backstop: an entry never observed terminal (abandoned async
	// submission) still ages out.
	c.rememberRoute("abandoned-job", "http://nowhere:1")
	advance(c.cfg.RouteMaxAge + time.Second)
	c.sweepRoutes()
	if c.RouteCount() != 0 {
		t.Fatalf("route count %d after MaxAge sweep", c.RouteCount())
	}
}

// TestRetryAfterComputedNotHardcoded pins both 429 paths: the quota
// rejection derives Retry-After from the token bucket's refill time,
// and a reroute-exhausted rejection replays the worker's own estimate
// instead of the old hardcoded "1".
func TestRetryAfterComputedNotHardcoded(t *testing.T) {
	// Quota path: rate 0.5/sec, burst 1 -> after one spend the next
	// token is 2s away.
	w, _ := startWorker(t, nil)
	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{w.url},
		VNodes:         16,
		QuotaRate:      0.5,
		QuotaBurst:     1,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if r := submitVia(t, c.Handler(), testSpec(51), "greedy"); r.status != http.StatusOK {
		t.Fatalf("first request rejected: %+v", r)
	}
	body, _ := json.Marshal(testSpec(51))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs?wait=1", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "greedy")
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request got %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("quota Retry-After = %q, want %q (bucket refill time)", got, "2")
	}

	// Exhausted path: every replica answers 429 with its own estimate;
	// the coordinator must replay the worker's header, not invent one.
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/healthz") {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer overloaded.Close()
	c2, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{overloaded.URL},
		VNodes:         16,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	rec = httptest.NewRecorder()
	c2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/runs?wait=1", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("exhausted reroute got %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("exhausted Retry-After = %q, want the worker's %q", got, "7")
	}
}

// TestProxyStatusPeekDoesNotTruncateLargeBodies pins the fix for the
// proxy's terminal-status peek: a status response bigger than the 1MB
// peek prefix must reach the client complete and byte-identical (the
// old buffer-and-replace cut it off mid-body while Content-Length still
// advertised the full size), and a too-big prefix must not be
// misparsed as a status. Small terminal responses still start the
// route's eviction clock.
func TestProxyStatusPeekDoesNotTruncateLargeBodies(t *testing.T) {
	big := []byte(`{"status":"done","result":"` + strings.Repeat("x", 3<<20) + `"}`)
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/runs/big":
			w.Write(big)
		case "/v1/runs/small":
			w.Write([]byte(`{"status":"done"}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer upstream.Close()

	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{upstream.URL},
		VNodes:         16,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.rememberRoute("big", upstream.URL)
	c.rememberRoute("small", upstream.URL)
	terminal := func(id string) bool {
		c.routesMu.Lock()
		defer c.routesMu.Unlock()
		e, ok := c.jobRoutes[id]
		return ok && !e.terminal.IsZero()
	}

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/big", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("large status GET -> %d", rec.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), big) {
		t.Fatalf("large body corrupted in proxy: got %d bytes, want %d", rec.Body.Len(), len(big))
	}
	if terminal("big") {
		t.Fatal("truncated peek prefix must not be parsed as a terminal status")
	}

	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/runs/small", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("small status GET -> %d", rec.Code)
	}
	if !terminal("small") {
		t.Fatal("small terminal response did not start the route's eviction clock")
	}
}

// TestRememberRoutePreservesTerminal: re-remembering a tracked job (a
// duplicate submit response) must update node and touch time in place —
// not replace the entry and silently restart the RouteTTL eviction
// clock — and the FIFO-cap eviction path must count into
// route_evictions like every other eviction.
func TestRememberRoutePreservesTerminal(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{"http://127.0.0.1:1"},
		VNodes:         16,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	c.rememberRoute("job", "http://n1:1")
	c.markRouteTerminal("job")
	c.rememberRoute("job", "http://n2:1")
	c.routesMu.Lock()
	e, fifo := c.jobRoutes["job"], len(c.routeFIFO)
	c.routesMu.Unlock()
	if e.node != "http://n2:1" {
		t.Fatalf("node not refreshed: %q", e.node)
	}
	if e.terminal.IsZero() {
		t.Fatal("duplicate remember cleared the terminal timestamp (TTL clock restarted)")
	}
	if fifo != 1 {
		t.Fatalf("duplicate remember grew the FIFO to %d entries", fifo)
	}

	before := c.routeEvictions.Load()
	for i := 0; i < maxJobRoutes+10; i++ {
		c.rememberRoute(fmt.Sprintf("j%d", i), "http://n1:1")
	}
	if got := c.RouteCount(); got != maxJobRoutes {
		t.Fatalf("route count %d after FIFO cap, want %d", got, maxJobRoutes)
	}
	if c.routeEvictions.Load() <= before {
		t.Fatal("FIFO-cap eviction not counted in route_evictions")
	}
}

// TestForwardHedgeLoserGoroutineExits pins the lifecycle of the losing
// forward arm itself: once forward has returned the winning answer and
// cancelled the race, the loser's goroutine must observe the cancel and
// exit instead of parking forever on the results channel. Regression
// test for the hedged-forward spawn being made cancellable (it now
// selects on ctx.Done alongside the result send).
func TestForwardHedgeLoserGoroutineExits(t *testing.T) {
	defer leakcheck.Check(t)()

	// The slow arm wedges until its client — the coordinator's cancelled
	// request — goes away; the fast arm answers immediately.
	slowHit := make(chan struct{}, 1)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slowHit <- struct{}{}:
		default:
		}
		// Drain the body so the server's background read — which is what
		// detects the coordinator hanging up — can run, then wedge until
		// that disconnect cancels the request context (bounded so a
		// detection regression fails the test instead of hanging it).
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
			t.Error("loser arm's disconnect never reached the slow node's handler")
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"done"}`))
	}))
	defer fast.Close()

	c, err := NewCoordinator(CoordinatorConfig{
		Peers:          []string{slow.URL, fast.URL},
		VNodes:         16,
		Replicas:       2,
		HedgeAfterMin:  20 * time.Millisecond,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, err := c.forward(context.Background(), []string{slow.URL, fast.URL}, "/v1/runs?wait=1", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.node != fast.URL || !r.hedged {
		t.Fatalf("winner = %q (hedged=%v), want the hedge onto %q", r.node, r.hedged, fast.URL)
	}
	select {
	case <-slowHit:
	default:
		t.Fatal("primary arm never reached the slow node; the race was not real")
	}
	// The deferred leakcheck.Check verifies the loser goroutine and the
	// wedged handler both unwind once forward's cancel propagates.
}
