package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Key handoff: after any membership change the coordinator walks every
// member's store.Keys() (via GET /v1/cache), re-resolves each key's
// owners against the new ring, and pushes keys a node no longer owns to
// their new primary over the existing GET/PUT /v1/cache/{key} path.
//
// The pass is:
//   - bounded: at most HandoffConcurrency key moves run at once;
//   - resumable: a key the target already holds is skipped, so an
//     interrupted pass re-run from scratch only moves what is missing;
//   - generation-checked: if membership changes again mid-pass the pass
//     aborts and a fresh one starts against the new ring, so a stale
//     ring's placement decisions are never applied.
//
// Old holders keep their copies — handoff only ever adds replicas.
// Extra copies are harmless (the store is content-addressed) and mean a
// botched change can be rolled back without data motion.

// kickHandoff starts a background handoff pass, or flags a rerun if one
// is already running. Safe to call from any goroutine.
func (c *Coordinator) kickHandoff() {
	c.handoffMu.Lock()
	defer c.handoffMu.Unlock()
	if c.handoffClosed {
		return // Close has begun; don't race its handoffWG.Wait
	}
	if c.handoffRunning {
		c.handoffPending = true
		return
	}
	c.handoffRunning = true
	c.handoffWG.Add(1)
	go c.handoffLoop()
}

func (c *Coordinator) handoffLoop() {
	defer c.handoffWG.Done()
	for {
		c.runHandoff(c.handoffCtx)
		c.handoffMu.Lock()
		if !c.handoffPending || c.handoffCtx.Err() != nil {
			c.handoffRunning = false
			c.handoffMu.Unlock()
			return
		}
		c.handoffPending = false
		c.handoffMu.Unlock()
	}
}

// HandoffIdle reports whether no handoff pass is running or pending —
// the signal tests and operators poll for after a membership change.
func (c *Coordinator) HandoffIdle() bool {
	c.handoffMu.Lock()
	defer c.handoffMu.Unlock()
	return !c.handoffRunning
}

// handoffMove is one planned key transfer.
type handoffMove struct {
	key, from, to string
}

func (c *Coordinator) runHandoff(ctx context.Context) {
	gen := c.ring.Generation()
	members := c.ring.Nodes()
	c.handoffRuns.Add(1)
	c.handoffActive.Store(1)
	defer c.handoffActive.Store(0)

	// Snapshot every member's holdings first: the target sets double as
	// the "already there" filter that makes an interrupted pass cheap to
	// resume.
	holdings := make(map[string]map[string]bool, len(members))
	for _, m := range members {
		keys, err := c.cacheKeys(ctx, m)
		if err != nil {
			// A dead or unreachable member has nothing to hand off and
			// cannot receive; skip it. Its keys are either replicated
			// elsewhere already or lost with it.
			c.handoffErrors.Add(1)
			c.cfg.Logf("cluster: handoff: skip %s: %v", m, err)
			continue
		}
		set := make(map[string]bool, len(keys))
		for _, k := range keys {
			set[k] = true
		}
		holdings[m] = set
	}

	replicas := c.cfg.WriteReplicas
	var moves []handoffMove
	for _, m := range members {
		for key := range holdings[m] {
			c.handoffScanned.Add(1)
			owners := c.ring.Owners(key, replicas)
			owned := false
			for _, o := range owners {
				if o == m {
					owned = true
					break
				}
			}
			if owned || len(owners) == 0 {
				continue
			}
			target := owners[0]
			if holdings[target][key] {
				c.handoffSkipped.Add(1)
				continue
			}
			if holdings[target] == nil {
				// Target was unreachable during the snapshot; still plan
				// the move — a failed push is counted, not fatal.
				holdings[target] = make(map[string]bool)
			}
			holdings[target][key] = true // dedup: one source per key is enough
			moves = append(moves, handoffMove{key: key, from: m, to: target})
		}
	}
	if len(moves) == 0 {
		c.cfg.Logf("cluster: handoff: ring gen %d already in placement (%d members)", gen, len(members))
		return
	}
	// The plan came out of map iteration; sort it so an interrupted pass
	// resumes in the same order and logs are reproducible.
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].key != moves[j].key {
			return moves[i].key < moves[j].key
		}
		return moves[i].from < moves[j].from
	})
	c.cfg.Logf("cluster: handoff: moving %d keys across %d members (ring gen %d)", len(moves), len(members), gen)

	conc := c.cfg.HandoffConcurrency
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var aborted bool
	for _, mv := range moves {
		if c.ring.Generation() != gen || ctx.Err() != nil {
			aborted = true // membership moved again; the pending rerun replans
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(mv handoffMove) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := c.moveKey(ctx, mv); err != nil {
				c.handoffErrors.Add(1)
				c.cfg.Logf("cluster: handoff: %s: %v", mv.key[:12], err)
				return
			}
			c.handoffMoved.Add(1)
		}(mv)
	}
	wg.Wait()
	if aborted {
		c.cfg.Logf("cluster: handoff: aborted at ring gen change (gen %d stale)", gen)
		return
	}
	c.cfg.Logf("cluster: handoff: done (%d moved total, %d errors total)", c.handoffMoved.Load(), c.handoffErrors.Load())
}

func (c *Coordinator) moveKey(ctx context.Context, mv handoffMove) error {
	data, err := c.cacheGet(ctx, mv.from, mv.key)
	if err != nil {
		return fmt.Errorf("fetch from %s: %w", mv.from, err)
	}
	if err := c.cachePut(ctx, mv.to, mv.key, data); err != nil {
		return fmt.Errorf("push to %s: %w", mv.to, err)
	}
	return nil
}

// cacheKeys lists one member's cached content hashes (GET /v1/cache).
func (c *Coordinator) cacheKeys(ctx context.Context, node string) ([]string, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HandoffTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/cache", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("list cache: http %d", resp.StatusCode)
	}
	var body struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Keys, nil
}

func (c *Coordinator) cacheGet(ctx context.Context, node, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HandoffTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/cache/%s", node, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if !json.Valid(data) {
		return nil, fmt.Errorf("invalid payload")
	}
	return data, nil
}

func (c *Coordinator) cachePut(ctx context.Context, node, key string, data []byte) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HandoffTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, fmt.Sprintf("%s/v1/cache/%s", node, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("http %d", resp.StatusCode)
	}
	return nil
}
