package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// CoordinatorConfig tunes routing, hedging, quotas and health checks.
type CoordinatorConfig struct {
	// Peers are the worker base URLs ("http://host:port"). Required.
	Peers []string
	// VNodes per ring member (default 64).
	VNodes int
	// Replicas caps how many distinct nodes one submission may try
	// across reroutes and hedges (default 3, clamped to the fleet
	// size).
	Replicas int

	// HedgeQuantile picks the observed-latency percentile after which
	// a second request is hedged onto the next replica (default 0.95).
	// HedgeAfterMin/Max clamp the computed delay (defaults 100ms / 5s);
	// the Min also serves as the cold-start delay before any latency
	// has been observed.
	HedgeQuantile float64
	HedgeAfterMin time.Duration
	HedgeAfterMax time.Duration

	// HealthInterval / HealthTimeout drive the background liveness
	// prober (defaults 2s / 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// MaxInflight bounds concurrent forwards; excess submissions wait
	// in weighted-fair order (default 128).
	MaxInflight int
	// TenantWeight maps a tenant to its fair-queue share (nil = all 1).
	TenantWeight func(tenant string) float64
	// QuotaRate/QuotaBurst are the per-tenant token bucket
	// (tokens/sec; rate <= 0 disables quotas, default disabled).
	QuotaRate  float64
	QuotaBurst float64

	// MaxBudget mirrors the workers' largest accepted per-thread
	// instruction budget so routing rejects what workers would (0 =
	// worker default).
	MaxBudget uint64

	Client *http.Client // defaults to a dedicated client
	Logf   func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > len(c.Peers) {
		c.Replicas = len(c.Peers)
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeAfterMin <= 0 {
		c.HedgeAfterMin = 100 * time.Millisecond
	}
	if c.HedgeAfterMax <= 0 {
		c.HedgeAfterMax = 5 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 2 * c.QuotaRate
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator routes submissions over the worker ring. Create with
// NewCoordinator, serve Handler(), stop with Close.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	quotas *Quotas
	fairq  *FairQueue
	lat    *latencyTracker

	stopHealth chan struct{}
	closeOnce  sync.Once
	healthWG   sync.WaitGroup

	// jobRoutes remembers which node owns a job ID so status, cancel
	// and event-stream requests can be proxied after an async submit.
	routesMu  sync.Mutex
	jobRoutes map[string]string
	routeFIFO []string

	forwards, forwardErrors  atomic.Uint64
	hedgesFired, hedgesWon   atomic.Uint64
	reroutes, reroutes429    atomic.Uint64
	quotaRejected            atomic.Uint64
	nodeDeaths, nodeRevivals atomic.Uint64
	cacheHits, cacheMisses   atomic.Uint64 // as reported by worker responses
}

const maxJobRoutes = 4096

// NewCoordinator validates cfg, builds the ring and starts the health
// prober. Callers must Close it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	for _, p := range cfg.Peers {
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not a base URL", p)
		}
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		ring:       ring,
		quotas:     NewQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		fairq:      NewFairQueue(cfg.MaxInflight, cfg.TenantWeight),
		lat:        newLatencyTracker(512),
		stopHealth: make(chan struct{}),
		jobRoutes:  make(map[string]string),
	}
	c.healthWG.Add(1)
	go c.healthLoop()
	return c, nil
}

// Close stops the health prober. Safe to call more than once.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stopHealth) })
	c.healthWG.Wait()
}

// Owners exposes the routing decision for key (tests, debugging).
func (c *Coordinator) Owners(key string) []string {
	return c.ring.Owners(key, c.cfg.Replicas)
}

// Ring exposes the membership ring (cmd/simd -coordinator logging).
func (c *Coordinator) Ring() *Ring { return c.ring }

func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopHealth:
			return
		case <-ticker.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, node := range c.ring.Nodes() {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			c.setAlive(node, c.probe(node))
		}(node)
	}
	wg.Wait()
}

func (c *Coordinator) probe(node string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Coordinator) setAlive(node string, alive bool) {
	if !c.ring.SetAlive(node, alive) {
		return
	}
	if alive {
		c.nodeRevivals.Add(1)
		c.cfg.Logf("cluster: node %s is back", node)
	} else {
		c.nodeDeaths.Add(1)
		c.cfg.Logf("cluster: node %s is down", node)
	}
}

// hedgeDelay is the current wait before firing a backup request: the
// configured percentile of recent forward latencies, clamped.
func (c *Coordinator) hedgeDelay() time.Duration {
	d := c.lat.Quantile(c.cfg.HedgeQuantile)
	if d < c.cfg.HedgeAfterMin {
		d = c.cfg.HedgeAfterMin
	}
	if d > c.cfg.HedgeAfterMax {
		d = c.cfg.HedgeAfterMax
	}
	return d
}

// forwardResult is one worker's answer to a forwarded submission.
type forwardResult struct {
	node   string
	status int
	body   []byte
	err    error
	hedged bool
}

// retryable reports whether another replica should be tried: transport
// errors (node dead mid-request), 429 backpressure, and 503 draining
// all are; everything else — including a 500 from a failed run — is the
// authoritative answer for this submission.
func (r forwardResult) retryable() bool {
	return r.err != nil || r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable
}

// forward tries key's owner nodes in preference order: the primary
// first, a hedge onto the next replica once the request outlives the
// fleet's latency percentile, and an immediate reroute whenever a node
// answers with a retryable failure. The first authoritative answer
// wins and every other in-flight arm is cancelled.
func (c *Coordinator) forward(ctx context.Context, nodes []string, path string, body []byte) (forwardResult, error) {
	if len(nodes) == 0 {
		return forwardResult{}, errors.New("no nodes available")
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan forwardResult, len(nodes))
	inflight := 0
	next := 0
	launch := func(hedged bool) {
		node := nodes[next]
		next++
		inflight++
		go func() {
			r := c.tryNode(ctx, node, path, body)
			r.hedged = hedged
			results <- r
		}()
	}
	launch(false)

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()

	var last forwardResult
	for {
		select {
		case r := <-results:
			inflight--
			if !r.retryable() {
				if r.hedged {
					c.hedgesWon.Add(1)
				}
				return r, nil
			}
			// This arm is out; note why and reroute if arms remain.
			if r.err != nil {
				c.setAlive(r.node, false) // fail fast; the prober revives it
				c.reroutes.Add(1)
			} else if r.status == http.StatusTooManyRequests {
				c.reroutes429.Add(1)
			} else {
				c.reroutes.Add(1)
			}
			last = r
			if next < len(nodes) {
				launch(false)
			} else if inflight == 0 {
				return last, nil // exhausted: surface the final failure
			}
		case <-hedge.C:
			if next < len(nodes) && inflight > 0 {
				c.hedgesFired.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			return forwardResult{}, ctx.Err()
		}
	}
}

// tryNode issues one forwarded request and slurps the response so the
// result can be replayed to the client even after other arms are
// cancelled.
func (c *Coordinator) tryNode(ctx context.Context, node, path string, body []byte) forwardResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return forwardResult{node: node, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return forwardResult{node: node, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return forwardResult{node: node, err: err}
	}
	return forwardResult{node: node, status: resp.StatusCode, body: data}
}

// rememberRoute maps a job ID to the node that owns it, evicting the
// oldest mapping beyond maxJobRoutes.
func (c *Coordinator) rememberRoute(id, node string) {
	if id == "" {
		return
	}
	c.routesMu.Lock()
	if _, ok := c.jobRoutes[id]; !ok {
		c.routeFIFO = append(c.routeFIFO, id)
		if len(c.routeFIFO) > maxJobRoutes {
			delete(c.jobRoutes, c.routeFIFO[0])
			c.routeFIFO = c.routeFIFO[1:]
		}
	}
	c.jobRoutes[id] = node
	c.routesMu.Unlock()
}

func (c *Coordinator) routeFor(id string) (string, bool) {
	c.routesMu.Lock()
	defer c.routesMu.Unlock()
	node, ok := c.jobRoutes[id]
	return node, ok
}

// Stats is the coordinator's observable state.
type Stats struct {
	Nodes          int     `json:"nodes"`
	NodesAlive     int     `json:"nodes_alive"`
	Forwards       uint64  `json:"forwards"`
	ForwardErrors  uint64  `json:"forward_errors"`
	HedgesFired    uint64  `json:"hedges_fired"`
	HedgesWon      uint64  `json:"hedges_won"`
	Reroutes       uint64  `json:"reroutes"`
	Reroutes429    uint64  `json:"reroutes_429"`
	QuotaRejected  uint64  `json:"quota_rejected"`
	NodeDeaths     uint64  `json:"node_deaths"`
	NodeRevivals   uint64  `json:"node_revivals"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	FairQueueDepth int     `json:"fairq_depth"`
	HedgeDelayMs   float64 `json:"hedge_delay_ms"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP95Ms   float64 `json:"latency_p95_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Nodes:          len(c.ring.Nodes()),
		NodesAlive:     c.ring.AliveCount(),
		Forwards:       c.forwards.Load(),
		ForwardErrors:  c.forwardErrors.Load(),
		HedgesFired:    c.hedgesFired.Load(),
		HedgesWon:      c.hedgesWon.Load(),
		Reroutes:       c.reroutes.Load(),
		Reroutes429:    c.reroutes429.Load(),
		QuotaRejected:  c.quotaRejected.Load(),
		NodeDeaths:     c.nodeDeaths.Load(),
		NodeRevivals:   c.nodeRevivals.Load(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		FairQueueDepth: c.fairq.Depth(),
		HedgeDelayMs:   float64(c.hedgeDelay()) / 1e6,
		LatencyP50Ms:   float64(c.lat.Quantile(0.50)) / 1e6,
		LatencyP95Ms:   float64(c.lat.Quantile(0.95)) / 1e6,
		LatencyP99Ms:   float64(c.lat.Quantile(0.99)) / 1e6,
	}
}

// Handler returns the coordinator's HTTP API:
//
//	POST   /v1/runs             shard + forward (hedged); ?wait=1 passthrough
//	GET    /v1/runs/{id}        proxied to the owning node
//	DELETE /v1/runs/{id}        proxied to the owning node
//	GET    /v1/runs/{id}/events proxied NDJSON stream
//	GET    /v1/fleet            fleet-wide aggregation (nodes + coordinator)
//	GET    /metrics             simd_cluster_* text metrics
//	GET    /healthz             liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", c.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", c.handleProxyJob)
	mux.HandleFunc("DELETE /v1/runs/{id}", c.handleProxyJob)
	mux.HandleFunc("GET /v1/runs/{id}/events", c.handleProxyJob)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "nodes_alive": c.ring.AliveCount()})
	})
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if !c.quotas.Allow(tenant) {
		c.quotaRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("tenant %q over quota", tenant))
		return
	}
	key, err := server.SpecKey(spec, c.cfg.MaxBudget)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.fairq.Acquire(r.Context(), tenant); err != nil {
		return // client gone while queued
	}
	defer c.fairq.Release()

	body, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	path := "/v1/runs"
	if r.URL.Query().Get("wait") != "" {
		path += "?wait=1"
	}
	c.forwards.Add(1)
	start := time.Now()
	res, err := c.forward(r.Context(), c.Owners(key), path, body)
	if err != nil {
		c.forwardErrors.Add(1)
		return // client cancelled; nothing to write
	}
	if res.err != nil {
		c.forwardErrors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("all replicas failed: %w", res.err))
		return
	}
	if res.status >= 200 && res.status < 300 {
		c.lat.Observe(time.Since(start))
		var sub struct {
			ID    string `json:"id"`
			Cache string `json:"cache"`
		}
		if json.Unmarshal(res.body, &sub) == nil {
			c.rememberRoute(sub.ID, res.node)
			switch sub.Cache {
			case "hit":
				c.cacheHits.Add(1)
			case "miss":
				c.cacheMisses.Add(1)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Node", res.node)
	if res.hedged {
		w.Header().Set("X-Simd-Hedged", "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// handleProxyJob forwards job-scoped requests to the node that owns
// the job ID.
func (c *Coordinator) handleProxyJob(w http.ResponseWriter, r *http.Request) {
	node, ok := c.routeFor(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q (submitted elsewhere or evicted)", r.PathValue("id")))
		return
	}
	target, err := url.Parse(node)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	proxy := &httputil.ReverseProxy{
		Director: func(req *http.Request) {
			req.URL.Scheme = target.Scheme
			req.URL.Host = target.Host
			req.Host = target.Host
		},
		FlushInterval: 100 * time.Millisecond, // NDJSON event streams
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			writeError(w, http.StatusBadGateway, fmt.Errorf("node %s: %w", node, err))
		},
	}
	proxy.ServeHTTP(w, r)
}

// FleetNode is one worker's entry in the /v1/fleet aggregation.
type FleetNode struct {
	URL       string        `json:"url"`
	Alive     bool          `json:"alive"`
	Ownership float64       `json:"ownership"` // estimated keyspace share
	Error     string        `json:"error,omitempty"`
	Stats     *server.Stats `json:"stats,omitempty"`
}

// Fleet is the /v1/fleet response.
type Fleet struct {
	Nodes       []FleetNode `json:"nodes"`
	Coordinator Stats       `json:"coordinator"`
	// Totals sum the per-node counters that matter for capacity
	// planning.
	Totals struct {
		Submitted   uint64 `json:"submitted"`
		Completed   uint64 `json:"completed"`
		Simulations uint64 `json:"simulations"`
		CacheHits   uint64 `json:"cache_hits"`
		PeerFills   uint64 `json:"peer_fills"`
		QueueDepth  int    `json:"queue_depth"`
		Inflight    int64  `json:"inflight"`
	} `json:"totals"`
}

// FleetStatus polls every node's /v1/stats and aggregates.
func (c *Coordinator) FleetStatus(ctx context.Context) Fleet {
	nodes, shares := c.ring.Ownership(4096)
	fleet := Fleet{Coordinator: c.Stats(), Nodes: make([]FleetNode, len(nodes))}
	var wg sync.WaitGroup
	for i, node := range nodes {
		fleet.Nodes[i] = FleetNode{URL: node, Alive: c.ring.IsAlive(node), Ownership: shares[i]}
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			st, err := c.nodeStats(ctx, node)
			if err != nil {
				fleet.Nodes[i].Error = err.Error()
				return
			}
			fleet.Nodes[i].Stats = st
		}(i, node)
	}
	wg.Wait()
	for _, n := range fleet.Nodes {
		if n.Stats == nil {
			continue
		}
		fleet.Totals.Submitted += n.Stats.Submitted
		fleet.Totals.Completed += n.Stats.Completed
		fleet.Totals.Simulations += n.Stats.Simulations
		fleet.Totals.CacheHits += n.Stats.Cache.Hits + n.Stats.Cache.DiskHits
		fleet.Totals.PeerFills += n.Stats.PeerFillHits
		fleet.Totals.QueueDepth += n.Stats.QueueDepth
		fleet.Totals.Inflight += n.Stats.Inflight
	}
	return fleet
}

func (c *Coordinator) nodeStats(ctx context.Context, node string) (*server.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: http %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.FleetStatus(r.Context()))
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range []struct {
		name, typ string
		value     any
	}{
		{"simd_cluster_nodes", "gauge", st.Nodes},
		{"simd_cluster_nodes_alive", "gauge", st.NodesAlive},
		{"simd_cluster_forwards_total", "counter", st.Forwards},
		{"simd_cluster_forward_errors_total", "counter", st.ForwardErrors},
		{"simd_cluster_hedges_fired_total", "counter", st.HedgesFired},
		{"simd_cluster_hedges_won_total", "counter", st.HedgesWon},
		{"simd_cluster_reroutes_total", "counter", st.Reroutes},
		{"simd_cluster_reroutes_429_total", "counter", st.Reroutes429},
		{"simd_cluster_quota_rejected_total", "counter", st.QuotaRejected},
		{"simd_cluster_node_deaths_total", "counter", st.NodeDeaths},
		{"simd_cluster_node_revivals_total", "counter", st.NodeRevivals},
		{"simd_cluster_cache_hits_total", "counter", st.CacheHits},
		{"simd_cluster_cache_misses_total", "counter", st.CacheMisses},
		{"simd_cluster_fairq_depth", "gauge", st.FairQueueDepth},
		{"simd_cluster_hedge_delay_ms", "gauge", st.HedgeDelayMs},
		{"simd_cluster_latency_p50_ms", "gauge", st.LatencyP50Ms},
		{"simd_cluster_latency_p95_ms", "gauge", st.LatencyP95Ms},
		{"simd_cluster_latency_p99_ms", "gauge", st.LatencyP99Ms},
	} {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", m.name, m.typ, m.name, m.value)
	}
	nodes, shares := c.ring.Ownership(4096)
	fmt.Fprint(w, "# TYPE simd_cluster_ownership gauge\n")
	for i, node := range nodes {
		fmt.Fprintf(w, "simd_cluster_ownership{node=%q} %.4f\n", node, shares[i])
	}
}

// latencyTracker keeps a fixed ring of recent forward latencies and
// answers quantile queries over a sorted snapshot.
type latencyTracker struct {
	mu   sync.Mutex
	buf  []time.Duration
	n    int // total observed
	next int
}

func newLatencyTracker(size int) *latencyTracker {
	return &latencyTracker{buf: make([]time.Duration, size)}
}

func (l *latencyTracker) Observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	l.n++
	l.mu.Unlock()
}

// Quantile returns the q-th latency quantile over the retained window,
// or 0 before any observation.
func (l *latencyTracker) Quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.n
	if n > len(l.buf) {
		n = len(l.buf)
	}
	snap := make([]time.Duration, n)
	copy(snap, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return snap[idx]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
