package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// CoordinatorConfig tunes routing, hedging, quotas and health checks.
type CoordinatorConfig struct {
	// Peers are the worker base URLs ("http://host:port"). Required.
	Peers []string
	// VNodes per ring member (default 64).
	VNodes int
	// Replicas caps how many distinct nodes one submission may try
	// across reroutes and hedges (default 3, clamped to the fleet
	// size).
	Replicas int

	// HedgeQuantile picks the observed-latency percentile after which
	// a second request is hedged onto the next replica (default 0.95).
	// HedgeAfterMin/Max clamp the computed delay (defaults 100ms / 5s);
	// the Min also serves as the cold-start delay before any latency
	// has been observed.
	HedgeQuantile float64
	HedgeAfterMin time.Duration
	HedgeAfterMax time.Duration

	// HealthInterval / HealthTimeout drive the background liveness
	// prober (defaults 2s / 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// MaxInflight bounds concurrent forwards; excess submissions wait
	// in weighted-fair order (default 128).
	MaxInflight int
	// TenantWeight maps a tenant to its fair-queue share (nil = all 1).
	TenantWeight func(tenant string) float64
	// QuotaRate/QuotaBurst are the per-tenant token bucket
	// (tokens/sec; rate <= 0 disables quotas, default disabled).
	QuotaRate  float64
	QuotaBurst float64

	// WriteReplicas is the durability factor R the fleet aims for: each
	// result should live on its key's first R ring owners (workers
	// replicate on completion; the handoff pass restores placement after
	// membership changes). Default 2 — primary plus one replica.
	WriteReplicas int
	// HandoffConcurrency bounds parallel key moves in a handoff pass
	// (default 4); HandoffTimeout bounds each list/fetch/push op
	// (default 15s).
	HandoffConcurrency int
	HandoffTimeout     time.Duration

	// RouteTTL is how long a job-route entry survives after the job was
	// observed terminal (default 2m); RouteMaxAge evicts entries never
	// observed terminal — abandoned async submissions (default 1h).
	RouteTTL    time.Duration
	RouteMaxAge time.Duration

	// MaxBudget mirrors the workers' largest accepted per-thread
	// instruction budget so routing rejects what workers would (0 =
	// worker default).
	MaxBudget uint64

	Client *http.Client // defaults to a dedicated client
	Logf   func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	// Replicas is deliberately not clamped to len(Peers): membership is
	// dynamic, and Ring.Owners caps at the fleet's current size anyway.
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeAfterMin <= 0 {
		c.HedgeAfterMin = 100 * time.Millisecond
	}
	if c.HedgeAfterMax <= 0 {
		c.HedgeAfterMax = 5 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 2 * c.QuotaRate
	}
	if c.WriteReplicas <= 0 {
		c.WriteReplicas = 2
	}
	if c.HandoffConcurrency <= 0 {
		c.HandoffConcurrency = 4
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 15 * time.Second
	}
	if c.RouteTTL <= 0 {
		c.RouteTTL = 2 * time.Minute
	}
	if c.RouteMaxAge <= 0 {
		c.RouteMaxAge = time.Hour
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator routes submissions over the worker ring. Create with
// NewCoordinator, serve Handler(), stop with Close.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	quotas *Quotas
	fairq  *FairQueue
	lat    *latencyTracker

	stopHealth chan struct{}
	closeOnce  sync.Once
	healthWG   sync.WaitGroup

	// Handoff state: one pass runs at a time; a membership change while
	// one is running flags a rerun (handoff.go). handoffClosed is set
	// under handoffMu before Close waits, so neither kickHandoff nor
	// syncWorkers can Add to a WaitGroup that is already being waited on.
	//tlrob:allow(process-lifetime base context for background handoff, cancelled by Close)
	handoffCtx     context.Context
	handoffCancel  context.CancelFunc
	handoffMu      sync.Mutex
	handoffRunning bool
	handoffPending bool
	handoffClosed  bool
	handoffWG      sync.WaitGroup
	syncWG         sync.WaitGroup

	// now is injectable so route-eviction tests can advance the clock.
	now func() time.Time

	// jobRoutes remembers which node owns a job ID so status, cancel
	// and event-stream requests can be proxied after an async submit.
	// Entries are evicted when the job is observed terminal (after
	// RouteTTL), on DELETE, by the RouteMaxAge backstop, and by the
	// maxJobRoutes FIFO cap.
	routesMu  sync.Mutex
	jobRoutes map[string]*routeEntry
	routeFIFO []string

	forwards, forwardErrors       atomic.Uint64
	hedgesFired, hedgesWon        atomic.Uint64
	reroutes, reroutes429         atomic.Uint64
	quotaRejected                 atomic.Uint64
	nodeDeaths, nodeRevivals      atomic.Uint64
	cacheHits, cacheMisses        atomic.Uint64 // as reported by worker responses
	membersAdded, membersRemoved  atomic.Uint64
	routeEvictions                atomic.Uint64
	handoffRuns, handoffScanned   atomic.Uint64
	handoffMoved, handoffSkipped  atomic.Uint64
	handoffErrors                 atomic.Uint64
	handoffActive                 atomic.Int64
	memberSyncs, memberSyncErrors atomic.Uint64
}

type routeEntry struct {
	node     string
	seen     time.Time // last remember/lookup touch
	terminal time.Time // zero until the job was observed terminal
}

const maxJobRoutes = 4096

// NewCoordinator validates cfg, builds the ring and starts the health
// prober. Callers must Close it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	for _, p := range cfg.Peers {
		if err := validateNodeURL(p); err != nil {
			return nil, err
		}
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	hctx, hcancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:           cfg,
		ring:          ring,
		quotas:        NewQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		fairq:         NewFairQueue(cfg.MaxInflight, cfg.TenantWeight),
		lat:           newLatencyTracker(512),
		stopHealth:    make(chan struct{}),
		handoffCtx:    hctx,
		handoffCancel: hcancel,
		now:           time.Now,
		jobRoutes:     make(map[string]*routeEntry),
	}
	c.healthWG.Add(1)
	go c.healthLoop()
	return c, nil
}

// Close stops the health prober, any running handoff pass and in-flight
// member syncs. Safe to call more than once.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stopHealth)
		c.handoffMu.Lock()
		c.handoffClosed = true
		c.handoffMu.Unlock()
		c.handoffCancel()
	})
	c.healthWG.Wait()
	c.handoffWG.Wait()
	c.syncWG.Wait()
}

// Owners exposes the routing decision for key (tests, debugging).
func (c *Coordinator) Owners(key string) []string {
	return c.ring.Owners(key, c.cfg.Replicas)
}

// Ring exposes the membership ring (cmd/simd -coordinator logging).
func (c *Coordinator) Ring() *Ring { return c.ring }

func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopHealth:
			return
		case <-ticker.C:
			c.probeAll()
			c.sweepRoutes()
		}
	}
}

// ApplyMemberChange mutates fleet membership (POST /v1/members and the
// SIGHUP peer-file reload both land here). On any actual change the new
// member list is pushed to every affected worker and a background key
// handoff pass is kicked.
func (c *Coordinator) ApplyMemberChange(ch MemberChange) (MembersReply, error) {
	before := c.ring.Nodes()
	added, removed, err := applyChange(c.ring, ch)
	if err != nil {
		return MembersReply{Members: before}, err
	}
	reply := MembersReply{
		Members: c.ring.Nodes(),
		Added:   added,
		Removed: removed,
		Changed: len(added) > 0 || len(removed) > 0,
	}
	if !reply.Changed {
		return reply, nil
	}
	c.membersAdded.Add(uint64(len(added)))
	c.membersRemoved.Add(uint64(len(removed)))
	c.cfg.Logf("cluster: membership changed: +%v -%v (now %d members)", added, removed, len(reply.Members))
	c.syncWorkers(before, reply.Members)
	c.kickHandoff()
	reply.Handoff = true
	return reply, nil
}

// syncWorkers pushes the authoritative member list to every node that
// was or is a member, so worker-side peer fill and replica writes
// follow the new ring. Best-effort and asynchronous: a worker that
// misses an update converges on the next change (set semantics are
// idempotent), and the handoff pass repairs any placement drift.
func (c *Coordinator) syncWorkers(before, after []string) {
	targets := make(map[string]bool, len(before)+len(after))
	for _, n := range before {
		targets[n] = true
	}
	for _, n := range after {
		targets[n] = true
	}
	body, err := json.Marshal(MemberChange{Action: "set", Nodes: after})
	if err != nil {
		c.cfg.Logf("cluster: member sync: %v", err)
		return
	}
	c.handoffMu.Lock()
	if c.handoffClosed {
		c.handoffMu.Unlock()
		return
	}
	c.syncWG.Add(len(targets))
	c.handoffMu.Unlock()
	for node := range targets {
		node := node
		go func() {
			defer c.syncWG.Done()
			ctx, cancel := context.WithTimeout(c.handoffCtx, c.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/members", bytes.NewReader(body))
			if err != nil {
				c.memberSyncErrors.Add(1)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := c.cfg.Client.Do(req)
			if err != nil {
				c.memberSyncErrors.Add(1)
				c.cfg.Logf("cluster: member sync to %s: %v", node, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				c.memberSyncErrors.Add(1)
				c.cfg.Logf("cluster: member sync to %s: http %d", node, resp.StatusCode)
				return
			}
			c.memberSyncs.Add(1)
		}()
	}
}

func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, node := range c.ring.Nodes() {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			c.setAlive(node, c.probe(node))
		}(node)
	}
	wg.Wait()
}

func (c *Coordinator) probe(node string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Coordinator) setAlive(node string, alive bool) {
	if !c.ring.SetAlive(node, alive) {
		return
	}
	if alive {
		c.nodeRevivals.Add(1)
		c.cfg.Logf("cluster: node %s is back", node)
	} else {
		c.nodeDeaths.Add(1)
		c.cfg.Logf("cluster: node %s is down", node)
	}
}

// hedgeDelay is the current wait before firing a backup request: the
// configured percentile of recent forward latencies, clamped.
func (c *Coordinator) hedgeDelay() time.Duration {
	d := c.lat.Quantile(c.cfg.HedgeQuantile)
	if d < c.cfg.HedgeAfterMin {
		d = c.cfg.HedgeAfterMin
	}
	if d > c.cfg.HedgeAfterMax {
		d = c.cfg.HedgeAfterMax
	}
	return d
}

// forwardResult is one worker's answer to a forwarded submission.
type forwardResult struct {
	node       string
	status     int
	body       []byte
	retryAfter string // the worker's Retry-After header, if any
	err        error
	hedged     bool
}

// retryable reports whether another replica should be tried: transport
// errors (node dead mid-request), 429 backpressure, and 503 draining
// all are; everything else — including a 500 from a failed run — is the
// authoritative answer for this submission.
func (r forwardResult) retryable() bool {
	return r.err != nil || r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable
}

// forward tries key's owner nodes in preference order: the primary
// first, a hedge onto the next replica once the request outlives the
// fleet's latency percentile, and an immediate reroute whenever a node
// answers with a retryable failure. The first authoritative answer
// wins and every other in-flight arm is cancelled.
func (c *Coordinator) forward(ctx context.Context, nodes []string, path string, body []byte) (forwardResult, error) {
	if len(nodes) == 0 {
		return forwardResult{}, errors.New("no nodes available")
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan forwardResult, len(nodes))
	inflight := 0
	next := 0
	launch := func(hedged bool) {
		node := nodes[next]
		next++
		inflight++
		go func() {
			r := c.tryNode(ctx, node, path, body)
			r.hedged = hedged
			select {
			case results <- r:
			case <-ctx.Done(): // forward already returned; drop the late answer
			}
		}()
	}
	launch(false)

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()

	var last forwardResult
	for {
		select {
		case r := <-results:
			inflight--
			if !r.retryable() {
				if r.hedged {
					c.hedgesWon.Add(1)
				}
				return r, nil
			}
			// This arm is out; note why and reroute if arms remain.
			if r.err != nil {
				c.setAlive(r.node, false) // fail fast; the prober revives it
				c.reroutes.Add(1)
			} else if r.status == http.StatusTooManyRequests {
				c.reroutes429.Add(1)
			} else {
				c.reroutes.Add(1)
			}
			last = r
			if next < len(nodes) {
				launch(false)
			} else if inflight == 0 {
				return last, nil // exhausted: surface the final failure
			}
		case <-hedge.C:
			if next < len(nodes) && inflight > 0 {
				c.hedgesFired.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			return forwardResult{}, ctx.Err()
		}
	}
}

// tryNode issues one forwarded request and slurps the response so the
// result can be replayed to the client even after other arms are
// cancelled.
func (c *Coordinator) tryNode(ctx context.Context, node, path string, body []byte) forwardResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return forwardResult{node: node, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return forwardResult{node: node, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return forwardResult{node: node, err: err}
	}
	return forwardResult{node: node, status: resp.StatusCode, body: data, retryAfter: resp.Header.Get("Retry-After")}
}

// rememberRoute maps a job ID to the node that owns it. The FIFO cap is
// only the backstop; the real lifecycle is terminal-status eviction
// (markRouteTerminal + sweepRoutes) so sustained async traffic cannot
// grow the map without bound.
func (c *Coordinator) rememberRoute(id, node string) {
	if id == "" {
		return
	}
	c.routesMu.Lock()
	if e, ok := c.jobRoutes[id]; ok {
		// Duplicate submit for a tracked job: refresh node and touch
		// time in place, keeping any terminal timestamp so the RouteTTL
		// eviction clock doesn't restart.
		e.node = node
		e.seen = c.now()
	} else {
		c.routeFIFO = append(c.routeFIFO, id)
		for len(c.routeFIFO) > maxJobRoutes {
			if _, ok := c.jobRoutes[c.routeFIFO[0]]; ok {
				delete(c.jobRoutes, c.routeFIFO[0])
				c.routeEvictions.Add(1)
			}
			c.routeFIFO = c.routeFIFO[1:]
		}
		c.jobRoutes[id] = &routeEntry{node: node, seen: c.now()}
	}
	c.routesMu.Unlock()
}

func (c *Coordinator) routeFor(id string) (string, bool) {
	c.routesMu.Lock()
	defer c.routesMu.Unlock()
	e, ok := c.jobRoutes[id]
	if !ok {
		return "", false
	}
	e.seen = c.now()
	return e.node, true
}

// markRouteTerminal starts the route's eviction clock: the job was seen
// in a terminal state, so after RouteTTL nobody should still be asking
// the coordinator about it.
func (c *Coordinator) markRouteTerminal(id string) {
	c.routesMu.Lock()
	if e, ok := c.jobRoutes[id]; ok && e.terminal.IsZero() {
		e.terminal = c.now()
	}
	c.routesMu.Unlock()
}

// dropRoute evicts a job route immediately (a successful DELETE — the
// job is gone on the worker too).
func (c *Coordinator) dropRoute(id string) {
	c.routesMu.Lock()
	if _, ok := c.jobRoutes[id]; ok {
		delete(c.jobRoutes, id)
		c.routeEvictions.Add(1)
	}
	c.routesMu.Unlock()
}

// sweepRoutes evicts job routes that are past their terminal TTL or —
// for jobs never observed terminal (abandoned async submissions) — past
// the RouteMaxAge backstop. Runs on every health tick.
func (c *Coordinator) sweepRoutes() {
	now := c.now()
	c.routesMu.Lock()
	var evicted int
	live := c.routeFIFO[:0]
	for _, id := range c.routeFIFO {
		e, ok := c.jobRoutes[id]
		if !ok {
			continue // already dropped (DELETE or FIFO cap)
		}
		expired := (!e.terminal.IsZero() && now.Sub(e.terminal) > c.cfg.RouteTTL) ||
			now.Sub(e.seen) > c.cfg.RouteMaxAge
		if expired {
			delete(c.jobRoutes, id)
			evicted++
			continue
		}
		live = append(live, id)
	}
	c.routeFIFO = live
	c.routesMu.Unlock()
	if evicted > 0 {
		c.routeEvictions.Add(uint64(evicted))
	}
}

// RouteCount reports the current job-route map size (tests, /metrics).
func (c *Coordinator) RouteCount() int {
	c.routesMu.Lock()
	defer c.routesMu.Unlock()
	return len(c.jobRoutes)
}

// Stats is the coordinator's observable state.
type Stats struct {
	Nodes          int     `json:"nodes"`
	NodesAlive     int     `json:"nodes_alive"`
	Forwards       uint64  `json:"forwards"`
	ForwardErrors  uint64  `json:"forward_errors"`
	HedgesFired    uint64  `json:"hedges_fired"`
	HedgesWon      uint64  `json:"hedges_won"`
	Reroutes       uint64  `json:"reroutes"`
	Reroutes429    uint64  `json:"reroutes_429"`
	QuotaRejected  uint64  `json:"quota_rejected"`
	NodeDeaths     uint64  `json:"node_deaths"`
	NodeRevivals   uint64  `json:"node_revivals"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	MembersAdded   uint64  `json:"members_added"`
	MembersRemoved uint64  `json:"members_removed"`
	MemberSyncs    uint64  `json:"member_syncs"`
	MemberSyncErrs uint64  `json:"member_sync_errors"`
	HandoffRuns    uint64  `json:"handoff_runs"`
	HandoffScanned uint64  `json:"handoff_keys_scanned"`
	HandoffMoved   uint64  `json:"handoff_keys_moved"`
	HandoffSkipped uint64  `json:"handoff_keys_skipped"`
	HandoffErrors  uint64  `json:"handoff_errors"`
	HandoffActive  int64   `json:"handoff_active"`
	JobRoutes      int     `json:"job_routes"`
	RouteEvictions uint64  `json:"route_evictions"`
	FairQueueDepth int     `json:"fairq_depth"`
	HedgeDelayMs   float64 `json:"hedge_delay_ms"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP95Ms   float64 `json:"latency_p95_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Nodes:          len(c.ring.Nodes()),
		NodesAlive:     c.ring.AliveCount(),
		Forwards:       c.forwards.Load(),
		ForwardErrors:  c.forwardErrors.Load(),
		HedgesFired:    c.hedgesFired.Load(),
		HedgesWon:      c.hedgesWon.Load(),
		Reroutes:       c.reroutes.Load(),
		Reroutes429:    c.reroutes429.Load(),
		QuotaRejected:  c.quotaRejected.Load(),
		NodeDeaths:     c.nodeDeaths.Load(),
		NodeRevivals:   c.nodeRevivals.Load(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		MembersAdded:   c.membersAdded.Load(),
		MembersRemoved: c.membersRemoved.Load(),
		MemberSyncs:    c.memberSyncs.Load(),
		MemberSyncErrs: c.memberSyncErrors.Load(),
		HandoffRuns:    c.handoffRuns.Load(),
		HandoffScanned: c.handoffScanned.Load(),
		HandoffMoved:   c.handoffMoved.Load(),
		HandoffSkipped: c.handoffSkipped.Load(),
		HandoffErrors:  c.handoffErrors.Load(),
		HandoffActive:  c.handoffActive.Load(),
		JobRoutes:      c.RouteCount(),
		RouteEvictions: c.routeEvictions.Load(),
		FairQueueDepth: c.fairq.Depth(),
		HedgeDelayMs:   float64(c.hedgeDelay()) / 1e6,
		LatencyP50Ms:   float64(c.lat.Quantile(0.50)) / 1e6,
		LatencyP95Ms:   float64(c.lat.Quantile(0.95)) / 1e6,
		LatencyP99Ms:   float64(c.lat.Quantile(0.99)) / 1e6,
	}
}

// Handler returns the coordinator's HTTP API:
//
//	POST   /v1/runs             shard + forward (hedged); ?wait=1 passthrough
//	GET    /v1/runs/{id}        proxied to the owning node
//	DELETE /v1/runs/{id}        proxied to the owning node
//	GET    /v1/runs/{id}/events proxied NDJSON stream
//	GET    /v1/fleet            fleet-wide aggregation (nodes + coordinator)
//	GET    /metrics             simd_cluster_* text metrics
//	GET    /healthz             liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", c.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", c.handleProxyJob)
	mux.HandleFunc("DELETE /v1/runs/{id}", c.handleProxyJob)
	mux.HandleFunc("GET /v1/runs/{id}/events", c.handleProxyJob)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("POST /v1/members", c.handleMembers)
	mux.HandleFunc("GET /v1/members", c.handleMembers)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "nodes_alive": c.ring.AliveCount()})
	})
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if !c.quotas.Allow(tenant) {
		c.quotaRejected.Add(1)
		// Real refill time from the token bucket, not a hardcoded guess:
		// clients backing off exactly this long succeed on the retry.
		w.Header().Set("Retry-After", retryAfterSeconds(c.quotas.RetryAfter(tenant)))
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("tenant %q over quota", tenant))
		return
	}
	key, err := server.SpecKey(spec, c.cfg.MaxBudget)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.fairq.Acquire(r.Context(), tenant); err != nil {
		return // client gone while queued
	}
	defer c.fairq.Release()

	body, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	path := "/v1/runs"
	if r.URL.Query().Get("wait") != "" {
		path += "?wait=1"
	}
	c.forwards.Add(1)
	start := time.Now()
	res, err := c.forward(r.Context(), c.Owners(key), path, body)
	if err != nil {
		c.forwardErrors.Add(1)
		return // client cancelled; nothing to write
	}
	if res.err != nil {
		c.forwardErrors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("all replicas failed: %w", res.err))
		return
	}
	if res.status >= 200 && res.status < 300 {
		c.lat.Observe(time.Since(start))
		var sub struct {
			ID     string `json:"id"`
			Cache  string `json:"cache"`
			Status string `json:"status"`
		}
		if json.Unmarshal(res.body, &sub) == nil {
			c.rememberRoute(sub.ID, res.node)
			if terminalStatus(sub.Status) {
				// wait=1 answers arrive already terminal: start the
				// route's eviction clock right away.
				c.markRouteTerminal(sub.ID)
			}
			switch sub.Cache {
			case "hit":
				c.cacheHits.Add(1)
			case "miss":
				c.cacheMisses.Add(1)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Node", res.node)
	if res.hedged {
		w.Header().Set("X-Simd-Hedged", "1")
	}
	if res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable {
		// Every replica pushed back; surface the last worker's own
		// drain-rate estimate rather than inventing a constant.
		ra := res.retryAfter
		if ra == "" {
			ra = "1"
		}
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// statusPeek passes an upstream body through unchanged while keeping a
// bounded prefix; onEOF fires once with that prefix when the client has
// drained the whole response. A half-read body (client went away) never
// fires — it proves nothing about the job's status.
type statusPeek struct {
	body  io.ReadCloser
	limit int
	buf   bytes.Buffer
	onEOF func(prefix []byte)
	fired bool
}

func (p *statusPeek) Read(b []byte) (int, error) {
	n, err := p.body.Read(b)
	if n > 0 && p.buf.Len() < p.limit {
		keep := n
		if room := p.limit - p.buf.Len(); keep > room {
			keep = room
		}
		p.buf.Write(b[:keep])
	}
	if err == io.EOF && !p.fired {
		p.fired = true
		p.onEOF(p.buf.Bytes())
	}
	return n, err
}

func (p *statusPeek) Close() error { return p.body.Close() }

// terminalStatus mirrors server.Status.terminal over the wire form.
func terminalStatus(s string) bool {
	switch server.Status(s) {
	case server.StatusDone, server.StatusFailed, server.StatusCanceled:
		return true
	}
	return false
}

// retryAfterSeconds renders a wait as a whole-second Retry-After value,
// rounding up so a client that honors it lands after the refill, with a
// floor of 1 (0 would invite an immediate, certainly rejected retry).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// handleMembers serves fleet membership: GET reports it, POST mutates
// it through ApplyMemberChange (rebalancing + worker sync included).
func (c *Coordinator) handleMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, MembersReply{Members: c.ring.Nodes()})
		return
	}
	var ch MemberChange
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&ch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode member change: %w", err))
		return
	}
	reply, err := c.ApplyMemberChange(ch)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleProxyJob forwards job-scoped requests to the node that owns
// the job ID, and retires the route once the job is over: a successful
// DELETE drops it immediately, a status poll that shows a terminal
// state starts the RouteTTL clock.
func (c *Coordinator) handleProxyJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, ok := c.routeFor(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q (submitted elsewhere or evicted)", id))
		return
	}
	target, err := url.Parse(node)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	isEvents := r.Method == http.MethodGet && len(r.URL.Path) > len("/events") &&
		r.URL.Path[len(r.URL.Path)-len("/events"):] == "/events"
	proxy := &httputil.ReverseProxy{
		Director: func(req *http.Request) {
			req.URL.Scheme = target.Scheme
			req.URL.Host = target.Host
			req.Host = target.Host
		},
		FlushInterval: 100 * time.Millisecond, // NDJSON event streams
		ModifyResponse: func(resp *http.Response) error {
			if resp.StatusCode < 200 || resp.StatusCode >= 300 {
				return nil
			}
			switch {
			case r.Method == http.MethodDelete:
				c.dropRoute(id)
			case r.Method == http.MethodGet && !isEvents:
				// Peek at the status without disturbing the stream the
				// client sees: the full body (results can be multi-MB)
				// streams through untouched, Content-Length stays
				// truthful, and only a bounded prefix is kept for the
				// parse. A body that outgrows the prefix fails the JSON
				// parse and the RouteMaxAge sweep evicts the route.
				resp.Body = &statusPeek{body: resp.Body, limit: 1 << 20, onEOF: func(prefix []byte) {
					var job struct {
						Status string `json:"status"`
					}
					if json.Unmarshal(prefix, &job) == nil && terminalStatus(job.Status) {
						c.markRouteTerminal(id)
					}
				}}
			}
			return nil
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			writeError(w, http.StatusBadGateway, fmt.Errorf("node %s: %w", node, err))
		},
	}
	proxy.ServeHTTP(w, r)
}

// FleetNode is one worker's entry in the /v1/fleet aggregation.
type FleetNode struct {
	URL       string        `json:"url"`
	Alive     bool          `json:"alive"`
	Ownership float64       `json:"ownership"` // estimated keyspace share
	Error     string        `json:"error,omitempty"`
	Stats     *server.Stats `json:"stats,omitempty"`
}

// Fleet is the /v1/fleet response.
type Fleet struct {
	Nodes       []FleetNode `json:"nodes"`
	Coordinator Stats       `json:"coordinator"`
	// Totals sum the per-node counters that matter for capacity
	// planning.
	Totals struct {
		Submitted   uint64 `json:"submitted"`
		Completed   uint64 `json:"completed"`
		Simulations uint64 `json:"simulations"`
		CacheHits   uint64 `json:"cache_hits"`
		PeerFills   uint64 `json:"peer_fills"`
		QueueDepth  int    `json:"queue_depth"`
		Inflight    int64  `json:"inflight"`
	} `json:"totals"`
}

// FleetStatus polls every node's /v1/stats and aggregates.
func (c *Coordinator) FleetStatus(ctx context.Context) Fleet {
	nodes, shares := c.ring.Ownership(4096)
	fleet := Fleet{Coordinator: c.Stats(), Nodes: make([]FleetNode, len(nodes))}
	var wg sync.WaitGroup
	for i, node := range nodes {
		fleet.Nodes[i] = FleetNode{URL: node, Alive: c.ring.IsAlive(node), Ownership: shares[i]}
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			st, err := c.nodeStats(ctx, node)
			if err != nil {
				fleet.Nodes[i].Error = err.Error()
				return
			}
			fleet.Nodes[i].Stats = st
		}(i, node)
	}
	wg.Wait()
	for _, n := range fleet.Nodes {
		if n.Stats == nil {
			continue
		}
		fleet.Totals.Submitted += n.Stats.Submitted
		fleet.Totals.Completed += n.Stats.Completed
		fleet.Totals.Simulations += n.Stats.Simulations
		fleet.Totals.CacheHits += n.Stats.Cache.Hits + n.Stats.Cache.DiskHits
		fleet.Totals.PeerFills += n.Stats.PeerFillHits
		fleet.Totals.QueueDepth += n.Stats.QueueDepth
		fleet.Totals.Inflight += n.Stats.Inflight
	}
	return fleet
}

func (c *Coordinator) nodeStats(ctx context.Context, node string) (*server.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: http %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.FleetStatus(r.Context()))
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := c.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range []struct {
		name, typ string
		value     any
	}{
		{"simd_cluster_nodes", "gauge", st.Nodes},
		{"simd_cluster_nodes_alive", "gauge", st.NodesAlive},
		{"simd_cluster_forwards_total", "counter", st.Forwards},
		{"simd_cluster_forward_errors_total", "counter", st.ForwardErrors},
		{"simd_cluster_hedges_fired_total", "counter", st.HedgesFired},
		{"simd_cluster_hedges_won_total", "counter", st.HedgesWon},
		{"simd_cluster_reroutes_total", "counter", st.Reroutes},
		{"simd_cluster_reroutes_429_total", "counter", st.Reroutes429},
		{"simd_cluster_quota_rejected_total", "counter", st.QuotaRejected},
		{"simd_cluster_node_deaths_total", "counter", st.NodeDeaths},
		{"simd_cluster_node_revivals_total", "counter", st.NodeRevivals},
		{"simd_cluster_cache_hits_total", "counter", st.CacheHits},
		{"simd_cluster_cache_misses_total", "counter", st.CacheMisses},
		{"simd_cluster_members_added_total", "counter", st.MembersAdded},
		{"simd_cluster_members_removed_total", "counter", st.MembersRemoved},
		{"simd_cluster_member_syncs_total", "counter", st.MemberSyncs},
		{"simd_cluster_member_sync_errors_total", "counter", st.MemberSyncErrs},
		{"simd_cluster_handoff_runs_total", "counter", st.HandoffRuns},
		{"simd_cluster_handoff_keys_scanned_total", "counter", st.HandoffScanned},
		{"simd_cluster_handoff_keys_moved_total", "counter", st.HandoffMoved},
		{"simd_cluster_handoff_keys_skipped_total", "counter", st.HandoffSkipped},
		{"simd_cluster_handoff_errors_total", "counter", st.HandoffErrors},
		{"simd_cluster_handoff_active", "gauge", st.HandoffActive},
		{"simd_cluster_job_routes", "gauge", st.JobRoutes},
		{"simd_cluster_route_evictions_total", "counter", st.RouteEvictions},
		{"simd_cluster_fairq_depth", "gauge", st.FairQueueDepth},
		{"simd_cluster_hedge_delay_ms", "gauge", st.HedgeDelayMs},
		{"simd_cluster_latency_p50_ms", "gauge", st.LatencyP50Ms},
		{"simd_cluster_latency_p95_ms", "gauge", st.LatencyP95Ms},
		{"simd_cluster_latency_p99_ms", "gauge", st.LatencyP99Ms},
	} {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", m.name, m.typ, m.name, m.value)
	}
	nodes, shares := c.ring.Ownership(4096)
	fmt.Fprint(w, "# TYPE simd_cluster_ownership gauge\n")
	for i, node := range nodes {
		fmt.Fprintf(w, "simd_cluster_ownership{node=%q} %.4f\n", node, shares[i])
	}
}

// latencyTracker keeps a fixed ring of recent forward latencies and
// answers quantile queries over a sorted snapshot.
type latencyTracker struct {
	mu   sync.Mutex
	buf  []time.Duration
	n    int // total observed
	next int
}

func newLatencyTracker(size int) *latencyTracker {
	return &latencyTracker{buf: make([]time.Duration, size)}
}

func (l *latencyTracker) Observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	l.n++
	l.mu.Unlock()
}

// Quantile returns the q-th latency quantile over the retained window,
// or 0 before any observation.
func (l *latencyTracker) Quantile(q float64) time.Duration {
	l.mu.Lock()
	n := l.n
	if n > len(l.buf) {
		n = len(l.buf)
	}
	snap := make([]time.Duration, n)
	copy(snap, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return snap[idx]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
