// Package store is a content-addressed result cache for deterministic
// simulation runs. Because a run is fully determined by its request
// (options + workload mix + budget + seed — PR 1's fixed-seed
// guarantee), the canonical JSON encoding of the request hashed with
// SHA-256 addresses the result forever. The store keeps a byte-budgeted
// in-memory LRU in front of an on-disk layer
// (<dir>/<hh>/<hash>.json, where hh is the first two hex digits);
// disk writes are atomic (temp file + rename) and disk reads verify an
// embedded payload checksum, so a torn or corrupted file is silently
// treated as a miss and removed.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Key returns the content address of a request value: the SHA-256 hex
// digest of its canonical JSON encoding. Canonicalization round-trips
// the value through a generic JSON tree so object keys are sorted —
// two specs that encode the same fields in different orders produce
// the same key.
func Key(v any) (string, error) {
	data, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Canonical returns the canonical JSON encoding of v: object keys
// sorted, no insignificant whitespace, numbers preserved verbatim.
func Canonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep 1e6 vs 1000000 and uint64 precision intact
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	return json.Marshal(tree) // map keys are emitted sorted
}

// Stats are the store's monotonic counters plus current occupancy.
type Stats struct {
	Hits        uint64 // served from memory
	DiskHits    uint64 // served from disk (and promoted to memory)
	Misses      uint64
	Evictions   uint64 // memory-LRU evictions (disk copies survive)
	Corrupt     uint64 // disk entries dropped on checksum mismatch
	Bytes       int64  // current memory footprint
	Entries     int    // current memory entry count
	DiskBytes   int64  // current on-disk envelope footprint
	DiskEntries int    // current on-disk entry count
}

// envelope is the on-disk file format.
type envelope struct {
	Checksum string          `json:"checksum"` // sha256 hex of Payload
	Payload  json.RawMessage `json:"payload"`
}

type entry struct {
	key  string
	data []byte
}

// Store is safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	// disk maps key -> on-disk envelope size, maintained incrementally
	// after a one-time scan in New so Stats and Keys never walk the
	// tree on the hot path.
	diskMu    sync.Mutex
	disk      map[string]int64
	diskBytes int64

	hits, diskHits, misses, evictions, corrupt atomic.Uint64
}

// New opens (creating if needed) a store rooted at dir with the given
// in-memory byte budget. maxBytes <= 0 disables the memory layer.
func New(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		disk:     make(map[string]int64),
	}
	s.scanDisk()
	return s, nil
}

// scanDisk seeds the disk index from an existing cache directory.
// Entries that later fail their checksum are dropped on first read, so
// an optimistic size-only scan is enough here.
func (s *Store) scanDisk() {
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, sub := range subdirs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, ".json") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			key := strings.TrimSuffix(name, ".json")
			s.disk[key] = info.Size()
			s.diskBytes += info.Size()
		}
	}
}

// Keys returns the content hashes cached in either layer, sorted, so
// peers can enumerate this node's results for warm-up and fill.
func (s *Store) Keys() []string {
	seen := make(map[string]bool)
	s.mu.Lock()
	for key := range s.items {
		seen[key] = true
	}
	s.mu.Unlock()
	s.diskMu.Lock()
	for key := range s.disk {
		seen[key] = true
	}
	s.diskMu.Unlock()
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

func (s *Store) diskTrack(key string, size int64) {
	s.diskMu.Lock()
	s.diskBytes += size - s.disk[key]
	s.disk[key] = size
	s.diskMu.Unlock()
}

func (s *Store) diskForget(key string) {
	s.diskMu.Lock()
	if size, ok := s.disk[key]; ok {
		s.diskBytes -= size
		delete(s.disk, key)
	}
	s.diskMu.Unlock()
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the cached payload for key. Callers must not mutate the
// returned slice.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		data := el.Value.(*entry).data
		s.mu.Unlock()
		s.hits.Add(1)
		return data, true
	}
	s.mu.Unlock()

	data, ok := s.readDisk(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.diskHits.Add(1)
	s.memPut(key, data)
	return data, true
}

// readDisk loads and verifies one on-disk entry. Any inconsistency —
// unreadable file, malformed envelope, checksum mismatch — removes the
// file and reports a miss.
func (s *Store) readDisk(key string) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.dropCorrupt(key)
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Checksum != hex.EncodeToString(sum[:]) {
		s.dropCorrupt(key)
		return nil, false
	}
	return env.Payload, true
}

func (s *Store) dropCorrupt(key string) {
	s.corrupt.Add(1)
	os.Remove(s.path(key))
	s.diskForget(key)
}

// Put stores data under key in both layers. data must be a valid JSON
// document (results always are); it is embedded verbatim in the on-disk
// envelope. Concurrent writers of the same key are safe: each writes
// its own temp file and the atomic rename leaves exactly one
// <hash>.json behind.
func (s *Store) Put(key string, data []byte) error {
	s.memPut(key, data)
	return s.writeDisk(key, data)
}

func (s *Store) memPut(key string, data []byte) {
	if s.maxBytes <= 0 || int64(len(data)) > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&entry{key: key, data: data})
		s.bytes += int64(len(data))
	}
	for s.bytes > s.maxBytes {
		el := s.ll.Back()
		if el == nil {
			break
		}
		e := s.ll.Remove(el).(*entry)
		delete(s.items, e.key)
		s.bytes -= int64(len(e.data))
		s.evictions.Add(1)
	}
}

func (s *Store) writeDisk(key string, data []byte) error {
	sum := sha256.Sum256(data)
	env, err := json.Marshal(envelope{
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  json.RawMessage(data),
	})
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.diskTrack(key, int64(len(env)))
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	bytes, entries := s.bytes, len(s.items)
	s.mu.Unlock()
	s.diskMu.Lock()
	diskBytes, diskEntries := s.diskBytes, len(s.disk)
	s.diskMu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		DiskHits:    s.diskHits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Corrupt:     s.corrupt.Load(),
		Bytes:       bytes,
		Entries:     entries,
		DiskBytes:   diskBytes,
		DiskEntries: diskEntries,
	}
}
