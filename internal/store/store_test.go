package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Two spec shapes with the same JSON fields declared in different
// orders: content addressing must not depend on field order.
type specA struct {
	Budget uint64   `json:"budget"`
	Seed   uint64   `json:"seed"`
	Mixes  []string `json:"mixes"`
	Scheme string   `json:"scheme"`
}

type specB struct {
	Scheme string   `json:"scheme"`
	Mixes  []string `json:"mixes"`
	Seed   uint64   `json:"seed"`
	Budget uint64   `json:"budget"`
}

func TestKeyStableAcrossFieldOrder(t *testing.T) {
	a := specA{Budget: 200_000, Seed: 1, Mixes: []string{"Mix 1", "Mix 2"}, Scheme: "rrob"}
	b := specB{Scheme: "rrob", Mixes: []string{"Mix 1", "Mix 2"}, Seed: 1, Budget: 200_000}
	ka, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("field order changed the key: %s vs %s", ka, kb)
	}
	if len(ka) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", ka)
	}

	c := a
	c.Seed = 2
	if kc, _ := Key(c); kc == ka {
		t.Fatal("different specs collided")
	}
}

func TestKeyPreservesLargeNumbers(t *testing.T) {
	type s struct {
		N uint64 `json:"n"`
	}
	k1, _ := Key(s{N: 1<<63 + 1})
	k2, _ := Key(s{N: 1<<63 + 2})
	if k1 == k2 {
		t.Fatal("uint64 precision lost in canonicalization")
	}
}

func TestRoundTripAndDiskPromotion(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key(specA{Budget: 1, Scheme: "x"})
	payload := []byte(`{"result":42}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("memory get: %q %v", got, ok)
	}

	// A fresh store over the same dir must serve from disk.
	s2, err := New(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk get: %q %v", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
	// Promoted: second read is a memory hit.
	if _, ok := s2.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.Hits != 1 {
		t.Fatalf("stats after promotion: %+v", st)
	}
}

func TestLRUEvictionAtByteBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`"` + strings.Repeat("x", 98) + `"`) // 100 bytes of valid JSON
	keys := make([]string, 3)
	for i := range keys {
		keys[i], _ = Key(fmt.Sprintf("k%d", i))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("want 1 eviction at 300 bytes over a 256-byte budget, got %+v", st)
	}
	if st.Bytes > 256 {
		t.Fatalf("over budget: %+v", st)
	}
	// keys[0] was least recently used: evicted from memory, still on disk.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("evicted entry lost from disk")
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("evicted entry not served from disk: %+v", st)
	}
	// keys[2] is hot: memory hit.
	if _, ok := s.Get(keys[2]); !ok {
		t.Fatal("hot entry missing")
	}
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("hot entry not served from memory: %+v", st)
	}
}

func TestOversizedPayloadSkipsMemory(t *testing.T) {
	s, err := New(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("big")
	if err := s.Put(key, []byte(`"`+strings.Repeat("y", 62)+`"`)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Evictions != 0 {
		t.Fatalf("oversized payload should bypass memory: %+v", st)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("oversized payload not on disk")
	}
}

func TestCorruptedDiskFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir, 1<<20)
	key, _ := Key("corrupt-me")
	if err := s.Put(key, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")

	for name, mutate := range map[string]func([]byte) []byte{
		"bit-flip in payload": func(b []byte) []byte {
			out := bytes.Replace(b, []byte(`"v":1`), []byte(`"v":2`), 1)
			return out
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"not json":  func(b []byte) []byte { return []byte("garbage") },
	} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, _ := New(dir, 1<<20)
		if _, ok := fresh.Get(key); ok {
			t.Fatalf("%s: corrupted entry served", name)
		}
		st := fresh.Stats()
		if st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("%s: stats %+v", name, st)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupted file not removed", name)
		}
		// Restore for the next case.
		if err := s.writeDisk(key, []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKeysUnionMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir, 1<<20)
	var want []string
	for i := 0; i < 4; i++ {
		key, _ := Key(fmt.Sprintf("entry-%d", i))
		want = append(want, key)
		if err := s.Put(key, []byte(`{"i":`+fmt.Sprint(i)+`}`)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)
	if got := s.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}

	// A fresh store over the same dir sees the same keys (disk scan),
	// and its disk occupancy gauges are non-zero and consistent.
	s2, _ := New(dir, 1<<20)
	if got := s2.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh store Keys() = %v, want %v", got, want)
	}
	st := s2.Stats()
	if st.DiskEntries != 4 || st.DiskBytes <= 0 {
		t.Fatalf("disk stats after scan: %+v", st)
	}

	// Overwriting a key must not double-count its disk footprint.
	before := s.Stats().DiskBytes
	if err := s.Put(want[0], []byte(`{"i":0}`)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DiskEntries != 4 || st.DiskBytes != before {
		t.Fatalf("disk stats after same-size overwrite: %+v (before %d)", st, before)
	}

	// Corruption removes the entry from the disk index too.
	path := filepath.Join(dir, want[0][:2], want[0]+".json")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(dir, 0) // no memory layer: reads always consult disk
	if _, ok := fresh.Get(want[0]); ok {
		t.Fatal("corrupted entry served")
	}
	if st := fresh.Stats(); st.DiskEntries != 3 {
		t.Fatalf("corrupt entry still indexed: %+v", st)
	}
}

func TestConcurrentSameKeyWritersProduceOneFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir, 1<<20)
	key, _ := Key("contended")
	payload := []byte(`{"deterministic":true}`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	entries, err := os.ReadDir(filepath.Join(dir, key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 1 || names[0] != key+".json" {
		t.Fatalf("want exactly one %s.json, got %v", key[:8], names)
	}
	if strings.Contains(strings.Join(names, ","), ".tmp-") {
		t.Fatalf("temp files leaked: %v", names)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get after contended put: %q %v", got, ok)
	}
}
