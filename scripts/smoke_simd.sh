#!/usr/bin/env bash
# Smoke test for cmd/simd, run by CI and usable locally:
#   ./scripts/smoke_simd.sh
# Starts the daemon, submits a small run, asserts a 200 result, asserts
# the identical resubmission is a byte-identical cache hit (via the
# response envelope and the /metrics hit counter), then SIGTERMs the
# daemon and asserts a clean drain (exit code 0).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SIMD_PORT:-8972}"
BASE="http://$ADDR"
CACHE_DIR="$(mktemp -d)"
BIN="$(mktemp -d)/simd"
SPEC='{"scheme":"rrob","threshold":16,"mixes":["Mix 1"],"budget":5000,"seed":1}'

go build -o "$BIN" ./cmd/simd
"$BIN" -addr "$ADDR" -cache-dir "$CACHE_DIR" &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

echo "==> submit"
R1=$(curl -fsS -X POST "$BASE/v1/runs?wait=1" -d "$SPEC")
echo "$R1" | jq -e '.status == "done" and .cache == "miss"' >/dev/null \
  || { echo "unexpected first response: $R1"; exit 1; }

echo "==> resubmit (must be a cache hit)"
R2=$(curl -fsS -X POST "$BASE/v1/runs?wait=1" -d "$SPEC")
echo "$R2" | jq -e '.cache == "hit"' >/dev/null \
  || { echo "resubmission was not a cache hit: $R2"; exit 1; }

echo "==> results byte-identical"
[ "$(echo "$R1" | jq -cS .result)" = "$(echo "$R2" | jq -cS .result)" ] \
  || { echo "cached result differs from original"; exit 1; }

echo "==> metrics show the hit and exactly one simulation"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^simd_cache_hits_total 1$' \
  || { echo "bad hit counter"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '^simd_simulations_total 1$' \
  || { echo "resubmission re-simulated"; echo "$METRICS"; exit 1; }

echo "==> event stream reaches a terminal state"
ID=$(curl -fsS -X POST "$BASE/v1/runs" -d '{"scheme":"prob","mixes":["Mix 2"],"budget":5000}' | jq -r .id)
curl -fsS "$BASE/v1/runs/$ID/events" | tail -1 | jq -e '.type == "done"' >/dev/null \
  || { echo "event stream did not end in done"; exit 1; }

echo "==> SIGTERM drains cleanly"
kill -TERM "$PID"
CODE=0
wait "$PID" || CODE=$?
trap - EXIT
[ "$CODE" -eq 0 ] || { echo "daemon exited $CODE after SIGTERM"; exit 1; }
echo "OK"
