#!/usr/bin/env bash
# Smoke test for the simd cluster, run by CI and usable locally:
#   ./scripts/smoke_cluster.sh
# Boots three workers plus a coordinator over them, drives a Zipf-shaped
# load with cmd/simdload, and asserts:
#   - every request succeeds and repeats hit the content-addressed cache
#   - exactly one worker simulated each distinct spec (sharding works)
#   - a worker asked directly for another shard's key answers from peer
#     cache fill without re-simulating
#   - a node added via POST /v1/members mid-sweep joins the ring and
#     triggers a key-handoff pass that runs to completion
#   - a worker killed with SIGKILL is routed around: the fleet keeps
#     answering and the coordinator marks the node dead
#   - after the membership change and the primary's death, a repeat
#     sweep's cache-hit ratio does not regress (replication + handoff
#     mean the dead node's keys are still served without re-simulating)
#   - the load summaries pass the checkbench -load gate
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_BASE="${CLUSTER_PORT_BASE:-18972}"
BINDIR="$(mktemp -d)"
CACHE_ROOT="$(mktemp -d)"
LOAD_JSON="$BINDIR/load.json"
go build -o "$BINDIR/simd" ./cmd/simd
go build -o "$BINDIR/simdload" ./cmd/simdload
go build -o "$BINDIR/checkbench" ./cmd/checkbench

W0="http://127.0.0.1:$PORT_BASE"
W1="http://127.0.0.1:$((PORT_BASE + 1))"
W2="http://127.0.0.1:$((PORT_BASE + 2))"
PEERS="$W0,$W1,$W2"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "==> boot 3 workers ($PEERS)"
for i in 0 1 2; do
  "$BINDIR/simd" -addr "127.0.0.1:$((PORT_BASE + i))" -cache-dir "$CACHE_ROOT/w$i" \
    -workers 2 -peers "$PEERS" >"$BINDIR/worker$i.log" 2>&1 &
  PIDS+=($!)
  eval "WPID$i=$!"
done

echo "==> boot coordinator (:0, scraped from stdout)"
COUT="$BINDIR/coord.out"
# -hedge-min is cranked up so slow-CI latency can't fire hedges and
# double-simulate specs: this smoke asserts exact simulation counts.
"$BINDIR/simd" -coordinator -peers "$PEERS" -addr 127.0.0.1:0 -replicas 3 \
  -hedge-min 30s -hedge-max 30s >"$COUT" 2>"$BINDIR/coord.log" &
PIDS+=($!)
for _ in $(seq 1 100); do
  grep -q 'listening on' "$COUT" 2>/dev/null && break
  sleep 0.1
done
COORD="http://$(awk '/listening on/ {print $NF; exit}' "$COUT")"

for url in "$W0" "$W1" "$W2" "$COORD"; do
  for _ in $(seq 1 50); do
    curl -fsS "$url/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "$url/healthz" >/dev/null
done

echo "==> zipf load through the coordinator"
"$BINDIR/simdload" -url "$COORD" -n 120 -c 16 -tenants 4 -specs 8 -budget 3000 -json "$LOAD_JSON"

echo "==> load summary passes the checkbench gate"
"$BINDIR/checkbench" -load -min-rps 1 "$LOAD_JSON"

echo "==> cache hits dominate (8 distinct specs, 120 requests)"
# Concurrent duplicates that coalesce onto an in-flight job report
# "miss" too, so the floor is loose; the exact dedup invariant is the
# fleet-wide simulation count below.
HITS=$(jq .cache_hits "$LOAD_JSON")
[ "$HITS" -ge 60 ] || { echo "only $HITS cache hits"; cat "$LOAD_JSON"; exit 1; }

echo "==> sharding: fleet-wide simulations == distinct specs"
FLEET=$(curl -fsS "$COORD/v1/fleet")
SIMS=$(echo "$FLEET" | jq .totals.simulations)
[ "$SIMS" -eq 8 ] || { echo "fleet simulated $SIMS times for 8 specs"; echo "$FLEET" | jq .; exit 1; }

echo "==> peer cache fill: every worker serves shard 0's key without re-simulating"
# cmd/simdload derives spec seeds as loadgen_seed*1000003 + i; spec 0 of
# the default seed is therefore reproducible here.
SPEC0='{"scheme":"rrob","mixes":["Mix 1"],"budget":3000,"seed":1000003}'
for url in "$W0" "$W1" "$W2"; do
  R=$(curl -fsS -X POST "$url/v1/runs?wait=1" -d "$SPEC0")
  echo "$R" | jq -e '.cache == "hit"' >/dev/null \
    || { echo "direct submit to $url was not served from cache: $R"; exit 1; }
done
SIMS=$(curl -fsS "$COORD/v1/fleet" | jq .totals.simulations)
[ "$SIMS" -eq 8 ] || { echo "peer fill re-simulated: fleet total now $SIMS"; exit 1; }
FILLS=$(curl -fsS "$COORD/v1/fleet" | jq '[.nodes[].stats.PeerFillHits] | add')
[ "$FILLS" -ge 1 ] || { echo "no peer fill recorded"; exit 1; }

echo "==> membership: add a 4th worker mid-sweep, handoff rebalances"
W3="http://127.0.0.1:$((PORT_BASE + 3))"
"$BINDIR/simd" -addr "127.0.0.1:$((PORT_BASE + 3))" -cache-dir "$CACHE_ROOT/w3" \
  -workers 2 -peers "$PEERS,$W3" >"$BINDIR/worker3.log" 2>&1 &
PIDS+=($!)
for _ in $(seq 1 50); do
  curl -fsS "$W3/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$W3/healthz" >/dev/null
# The add lands while this sweep is in flight: requests must keep
# succeeding across the ring change.
LOAD2_JSON="$BINDIR/load2.json"
"$BINDIR/simdload" -url "$COORD" -n 120 -c 16 -tenants 4 -specs 8 -budget 3000 -json "$LOAD2_JSON" &
SWEEP2=$!
R=$(curl -fsS -X POST "$COORD/v1/members" -d "{\"action\":\"add\",\"node\":\"$W3\"}")
echo "$R" | jq -e '.changed == true and .handoff == true' >/dev/null \
  || { echo "member add did not change the ring: $R"; exit 1; }
wait "$SWEEP2"
"$BINDIR/checkbench" -load -min-rps 1 "$LOAD2_JSON"
echo "==> handoff pass runs to completion"
for _ in $(seq 1 100); do
  METRICS=$(curl -fsS "$COORD/metrics")
  RUNS=$(echo "$METRICS" | awk '/^simd_cluster_handoff_runs_total/ {print $2}')
  ACTIVE=$(echo "$METRICS" | awk '/^simd_cluster_handoff_active/ {print $2}')
  [ "${RUNS:-0}" -ge 1 ] && [ "${ACTIVE:-1}" -eq 0 ] && break
  sleep 0.2
done
[ "${RUNS:-0}" -ge 1 ] && [ "${ACTIVE:-1}" -eq 0 ] \
  || { echo "handoff never completed (runs=$RUNS active=$ACTIVE)"; exit 1; }
N_MEMBERS=$(curl -fsS "$COORD/v1/members" | jq '.members | length')
[ "$N_MEMBERS" -eq 4 ] || { echo "coordinator reports $N_MEMBERS members, want 4"; exit 1; }

echo "==> chaos: SIGKILL an old primary, fleet keeps answering"
kill -9 "$WPID0"
for seed in 99 101 102 103; do
  R=$(curl -fsS -X POST "$COORD/v1/runs?wait=1" \
    -d "{\"scheme\":\"rrob\",\"mixes\":[\"Mix 2\"],\"budget\":3000,\"seed\":$seed}")
  echo "$R" | jq -e '.status == "done"' >/dev/null \
    || { echo "post-kill submission failed: $R"; exit 1; }
done
# The health prober needs a cycle or two to notice the corpse.
for _ in $(seq 1 100); do
  ALIVE=$(curl -fsS "$COORD/metrics" | awk '/^simd_cluster_nodes_alive/ {print $2}')
  [ "${ALIVE:-4}" -le 3 ] && break
  sleep 0.2
done
[ "${ALIVE:-4}" -le 3 ] || { echo "dead node still counted alive ($ALIVE)"; exit 1; }

echo "==> hit ratio survives the membership change + primary death"
# Replication (R=2) plus handoff mean every key the dead worker held is
# still served from a live replica: a repeat of the original sweep must
# hit the cache at least as often as the first pass did.
RATE1=$(jq .cache_hit_rate "$LOAD_JSON")
LOAD3_JSON="$BINDIR/load3.json"
"$BINDIR/simdload" -url "$COORD" -n 120 -c 16 -tenants 4 -specs 8 -budget 3000 -json "$LOAD3_JSON"
"$BINDIR/checkbench" -load -min-rps 1 -min-hit-rate "$RATE1" "$LOAD3_JSON"

echo "OK"
