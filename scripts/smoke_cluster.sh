#!/usr/bin/env bash
# Smoke test for the simd cluster, run by CI and usable locally:
#   ./scripts/smoke_cluster.sh
# Boots three workers plus a coordinator over them, drives a Zipf-shaped
# load with cmd/simdload, and asserts:
#   - every request succeeds and repeats hit the content-addressed cache
#   - exactly one worker simulated each distinct spec (sharding works)
#   - a worker asked directly for another shard's key answers from peer
#     cache fill without re-simulating
#   - a worker killed with SIGKILL is routed around: the fleet keeps
#     answering and the coordinator marks the node dead
#   - the load summary passes the checkbench -load gate
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_BASE="${CLUSTER_PORT_BASE:-18972}"
BINDIR="$(mktemp -d)"
CACHE_ROOT="$(mktemp -d)"
LOAD_JSON="$BINDIR/load.json"
go build -o "$BINDIR/simd" ./cmd/simd
go build -o "$BINDIR/simdload" ./cmd/simdload
go build -o "$BINDIR/checkbench" ./cmd/checkbench

W0="http://127.0.0.1:$PORT_BASE"
W1="http://127.0.0.1:$((PORT_BASE + 1))"
W2="http://127.0.0.1:$((PORT_BASE + 2))"
PEERS="$W0,$W1,$W2"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "==> boot 3 workers ($PEERS)"
for i in 0 1 2; do
  "$BINDIR/simd" -addr "127.0.0.1:$((PORT_BASE + i))" -cache-dir "$CACHE_ROOT/w$i" \
    -workers 2 -peers "$PEERS" >"$BINDIR/worker$i.log" 2>&1 &
  PIDS+=($!)
  eval "WPID$i=$!"
done

echo "==> boot coordinator (:0, scraped from stdout)"
COUT="$BINDIR/coord.out"
# -hedge-min is cranked up so slow-CI latency can't fire hedges and
# double-simulate specs: this smoke asserts exact simulation counts.
"$BINDIR/simd" -coordinator -peers "$PEERS" -addr 127.0.0.1:0 -replicas 3 \
  -hedge-min 30s -hedge-max 30s >"$COUT" 2>"$BINDIR/coord.log" &
PIDS+=($!)
for _ in $(seq 1 100); do
  grep -q 'listening on' "$COUT" 2>/dev/null && break
  sleep 0.1
done
COORD="http://$(awk '/listening on/ {print $NF; exit}' "$COUT")"

for url in "$W0" "$W1" "$W2" "$COORD"; do
  for _ in $(seq 1 50); do
    curl -fsS "$url/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fsS "$url/healthz" >/dev/null
done

echo "==> zipf load through the coordinator"
"$BINDIR/simdload" -url "$COORD" -n 120 -c 16 -tenants 4 -specs 8 -budget 3000 -json "$LOAD_JSON"

echo "==> load summary passes the checkbench gate"
"$BINDIR/checkbench" -load -min-rps 1 "$LOAD_JSON"

echo "==> cache hits dominate (8 distinct specs, 120 requests)"
# Concurrent duplicates that coalesce onto an in-flight job report
# "miss" too, so the floor is loose; the exact dedup invariant is the
# fleet-wide simulation count below.
HITS=$(jq .cache_hits "$LOAD_JSON")
[ "$HITS" -ge 60 ] || { echo "only $HITS cache hits"; cat "$LOAD_JSON"; exit 1; }

echo "==> sharding: fleet-wide simulations == distinct specs"
FLEET=$(curl -fsS "$COORD/v1/fleet")
SIMS=$(echo "$FLEET" | jq .totals.simulations)
[ "$SIMS" -eq 8 ] || { echo "fleet simulated $SIMS times for 8 specs"; echo "$FLEET" | jq .; exit 1; }

echo "==> peer cache fill: every worker serves shard 0's key without re-simulating"
# cmd/simdload derives spec seeds as loadgen_seed*1000003 + i; spec 0 of
# the default seed is therefore reproducible here.
SPEC0='{"scheme":"rrob","mixes":["Mix 1"],"budget":3000,"seed":1000003}'
for url in "$W0" "$W1" "$W2"; do
  R=$(curl -fsS -X POST "$url/v1/runs?wait=1" -d "$SPEC0")
  echo "$R" | jq -e '.cache == "hit"' >/dev/null \
    || { echo "direct submit to $url was not served from cache: $R"; exit 1; }
done
SIMS=$(curl -fsS "$COORD/v1/fleet" | jq .totals.simulations)
[ "$SIMS" -eq 8 ] || { echo "peer fill re-simulated: fleet total now $SIMS"; exit 1; }
FILLS=$(curl -fsS "$COORD/v1/fleet" | jq '[.nodes[].stats.PeerFillHits] | add')
[ "$FILLS" -ge 1 ] || { echo "no peer fill recorded"; exit 1; }

echo "==> chaos: SIGKILL one worker, fleet keeps answering"
kill -9 "$WPID0"
for seed in 99 101 102 103; do
  R=$(curl -fsS -X POST "$COORD/v1/runs?wait=1" \
    -d "{\"scheme\":\"rrob\",\"mixes\":[\"Mix 2\"],\"budget\":3000,\"seed\":$seed}")
  echo "$R" | jq -e '.status == "done"' >/dev/null \
    || { echo "post-kill submission failed: $R"; exit 1; }
done
METRICS=$(curl -fsS "$COORD/metrics")
ALIVE=$(echo "$METRICS" | awk '/^simd_cluster_nodes_alive/ {print $2}')
[ "$ALIVE" -le 2 ] || { echo "dead node still counted alive"; echo "$METRICS"; exit 1; }

echo "OK"
