// Command simd is the simulation-as-a-service daemon: an HTTP front end
// over internal/server's job queue, worker pool and content-addressed
// result cache. Runs are deterministic (fixed seed + config → identical
// metrics), so identical requests are served from the cache or coalesced
// onto one in-flight simulation.
//
//	simd -addr :8080 -cache-dir results/cache
//
//	# submit and wait
//	curl -s -X POST 'localhost:8080/v1/runs?wait=1' \
//	     -d '{"scheme":"rrob","mixes":["Mix 1"],"budget":50000}'
//
// Passing -addr :0 binds a free port; the concrete address is printed
// on stdout ("simd listening on host:port") so scripts and tests can
// scrape it.
//
// With -peers the node joins a fleet: a local cache miss first asks the
// key's ring owners over GET /v1/cache/{key} before simulating, and a
// completed simulation is replicated to the key's other ring owners
// (-replicas total copies) so one node death loses no result. The
// coordinator pushes membership updates to POST /v1/members, so the
// worker's ring follows the fleet as it grows and shrinks.
//
// With -coordinator the process serves no simulations itself; it routes
// each submission to its shard owner over a consistent-hash ring of
// -peers, hedges stragglers onto the next replica, retries 429/503 on
// other replicas, enforces per-tenant quotas, and aggregates fleet
// state at /v1/fleet. Membership is dynamic: POST /v1/members adds or
// removes workers at runtime, and SIGHUP re-reads -peer-file; either
// path rebalances cached results onto the new ring in the background.
//
// SIGINT/SIGTERM drains gracefully: submissions get 503, queued and
// running jobs finish (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (\":0\" picks a free port, printed on stdout)")
		cacheDir     = flag.String("cache-dir", "results/cache", "on-disk result cache root")
		cacheMem     = flag.Int64("cache-mem", 64<<20, "in-memory cache byte budget")
		queueSize    = flag.Int("queue", 64, "job queue capacity (full = HTTP 429)")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		simWorkers   = flag.Int("sim-workers", 0, "goroutines per job's sweep (0 = all cores)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job deadline")
		retries      = flag.Int("retries", 2, "retry budget for transient failures")
		maxBudget    = flag.Uint64("max-budget", 5_000_000, "largest accepted per-thread instruction budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain limit on shutdown")

		peers         = flag.String("peers", "", "comma-separated fleet base URLs (workers: peer cache fill + replication; coordinator: the ring)")
		peerFile      = flag.String("peer-file", "", "coordinator: file of fleet base URLs (one per line); SIGHUP re-reads it and rebalances")
		selfURL       = flag.String("self-url", "", "this worker's advertised base URL within -peers (default http://<bound addr>)")
		coordinator   = flag.Bool("coordinator", false, "run as the fleet coordinator instead of a worker")
		vnodes        = flag.Int("vnodes", 64, "virtual nodes per ring member")
		replicas      = flag.Int("replicas", 0, "coordinator: distinct nodes a submission may try (default 3); worker: total copies of each result across the fleet (default 2)")
		writeReplicas = flag.Int("write-replicas", 2, "coordinator: copies each result should have across the fleet (handoff target placement)")
		hedgeQ        = flag.Float64("hedge-quantile", 0.95, "latency percentile after which a backup request is hedged")
		hedgeMin      = flag.Duration("hedge-min", 100*time.Millisecond, "hedge delay floor (also the cold-start delay)")
		hedgeMax      = flag.Duration("hedge-max", 5*time.Second, "hedge delay ceiling")
		quotaRate     = flag.Float64("quota-rate", 0, "per-tenant submissions/sec (0 disables quotas)")
		quotaBurst    = flag.Float64("quota-burst", 0, "per-tenant burst (default 2x rate)")
		maxInflight   = flag.Int("max-inflight", 128, "concurrent forwards; excess waits in weighted-fair order")
	)
	flag.Parse()
	log.SetPrefix("simd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	peerList := splitPeers(*peers)
	if *coordinator {
		if len(peerList) == 0 && *peerFile != "" {
			var err error
			if peerList, err = readPeerFile(*peerFile); err != nil {
				fatal(err)
			}
		}
		runCoordinator(*addr, peerList, *peerFile, cluster.CoordinatorConfig{
			Peers:         peerList,
			VNodes:        *vnodes,
			Replicas:      *replicas,
			WriteReplicas: *writeReplicas,
			HedgeQuantile: *hedgeQ,
			HedgeAfterMin: *hedgeMin,
			HedgeAfterMax: *hedgeMax,
			QuotaRate:     *quotaRate,
			QuotaBurst:    *quotaBurst,
			MaxInflight:   *maxInflight,
			MaxBudget:     *maxBudget,
			Logf:          log.Printf,
		}, *drainTimeout)
		return
	}

	st, err := store.New(*cacheDir, *cacheMem)
	if err != nil {
		fatal(err)
	}
	cfg := server.Config{
		Store:      st,
		QueueSize:  *queueSize,
		Workers:    *workers,
		SimWorkers: *simWorkers,
		JobTimeout: *jobTimeout,
		Retries:    *retries,
		MaxBudget:  *maxBudget,
		Logf:       log.Printf,
	}
	// Peer cache fill and replication are wired late: with -addr :0 the
	// self URL is only known after binding, and both need it to skip
	// this node. The ring itself exists up front so the membership
	// endpoint can serve from the first request.
	var (
		ring       *cluster.Ring
		filler     *cluster.PeerFiller
		replicator *cluster.Replicator
	)
	if len(peerList) > 0 {
		var err error
		if ring, err = cluster.NewRing(peerList, *vnodes); err != nil {
			fatal(err)
		}
		cfg.PeerFill = func(ctx context.Context, key string) ([]byte, bool) {
			if filler == nil {
				return nil, false
			}
			return filler.Fill(ctx, key)
		}
		cfg.Replicate = func(ctx context.Context, key string, data []byte) (int, int) {
			if replicator == nil {
				return 0, 0
			}
			return replicator.Replicate(ctx, key, data)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}

	handler := srv.Handler()
	if ring != nil {
		// The coordinator pushes membership changes here; fills and
		// replica writes follow the updated ring immediately.
		handler = cluster.WorkerMux(handler, ring, log.Printf)
	}
	httpSrv, bound, errCh, err := server.StartHTTP(*addr, handler)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simd listening on %s\n", bound)
	log.Printf("listening on %s (cache %s, queue %d, %d workers)", bound, *cacheDir, *queueSize, *workers)

	if ring != nil {
		self := *selfURL
		if self == "" {
			self = "http://" + bound
		}
		filler = cluster.NewPeerFiller(self, ring, 0, 0, nil)
		replicator = cluster.NewReplicator(self, ring, *replicas, 0, nil)
		log.Printf("fleet member %s (%d peers, peer cache fill + replication on)", self, len(peerList))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		fatal(err)
	}
	stop()

	log.Printf("draining (limit %s)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete, in-flight jobs cancelled: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}

func runCoordinator(addr string, peers []string, peerFile string, cfg cluster.CoordinatorConfig, drainTimeout time.Duration) {
	if len(peers) == 0 {
		fatal(fmt.Errorf("-coordinator requires -peers or -peer-file"))
	}
	c, err := cluster.NewCoordinator(cfg)
	if err != nil {
		fatal(err)
	}
	httpSrv, bound, errCh, err := server.StartHTTP(addr, c.Handler())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simd listening on %s\n", bound)
	nodes, shares := c.Ring().Ownership(4096)
	for i, n := range nodes {
		log.Printf("coordinator: shard %s owns %.1f%% of the keyspace", n, shares[i]*100)
	}
	log.Printf("coordinator listening on %s (%d peers)", bound, len(peers))

	// SIGHUP re-reads -peer-file and applies it as the authoritative
	// member list: workers are synced, and cached results rebalance onto
	// the new ring in the background.
	if peerFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				nodes, err := readPeerFile(peerFile)
				if err != nil {
					log.Printf("coordinator: SIGHUP reload: %v", err)
					continue
				}
				reply, err := c.ApplyMemberChange(cluster.MemberChange{Action: "set", Nodes: nodes})
				if err != nil {
					log.Printf("coordinator: SIGHUP reload: %v", err)
					continue
				}
				log.Printf("coordinator: SIGHUP reload: +%v -%v (%d members, handoff=%v)",
					reply.Added, reply.Removed, len(reply.Members), reply.Handoff)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		fatal(err)
	}
	stop()

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	c.Close()
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// readPeerFile parses a peer file: one base URL per line, blank lines
// and #-comments ignored.
func readPeerFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("peer file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("peer file %s: no peers", path)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}
