// Command simd is the simulation-as-a-service daemon: an HTTP front end
// over internal/server's job queue, worker pool and content-addressed
// result cache. Runs are deterministic (fixed seed + config → identical
// metrics), so identical requests are served from the cache or coalesced
// onto one in-flight simulation.
//
//	simd -addr :8080 -cache-dir results/cache
//
//	# submit and wait
//	curl -s -X POST 'localhost:8080/v1/runs?wait=1' \
//	     -d '{"scheme":"rrob","mixes":["Mix 1"],"budget":50000}'
//
// SIGINT/SIGTERM drains gracefully: submissions get 503, queued and
// running jobs finish (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		cacheDir     = flag.String("cache-dir", "results/cache", "on-disk result cache root")
		cacheMem     = flag.Int64("cache-mem", 64<<20, "in-memory cache byte budget")
		queueSize    = flag.Int("queue", 64, "job queue capacity (full = HTTP 429)")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		simWorkers   = flag.Int("sim-workers", 0, "goroutines per job's sweep (0 = all cores)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job deadline")
		retries      = flag.Int("retries", 2, "retry budget for transient failures")
		maxBudget    = flag.Uint64("max-budget", 5_000_000, "largest accepted per-thread instruction budget")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain limit on shutdown")
	)
	flag.Parse()
	log.SetPrefix("simd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	st, err := store.New(*cacheDir, *cacheMem)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		Store:      st,
		QueueSize:  *queueSize,
		Workers:    *workers,
		SimWorkers: *simWorkers,
		JobTimeout: *jobTimeout,
		Retries:    *retries,
		MaxBudget:  *maxBudget,
		Logf:       log.Printf,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (cache %s, queue %d, %d workers)",
			*addr, *cacheDir, *queueSize, *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		fatal(err)
	}
	stop()

	log.Printf("draining (limit %s)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete, in-flight jobs cancelled: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}
