// Command simdload drives synthetic load at a simd worker or cluster
// coordinator: -n submissions across -c concurrent clients, with
// tenants and run specs drawn from Zipf distributions so a few hot
// tenants and a few hot specs dominate — the shape that exercises
// per-tenant quotas, weighted-fair queuing and the content-addressed
// cache at once.
//
//	simdload -url http://localhost:8080 -n 2000 -c 64 -tenants 8
//
// It reports p50/p95/p99 latency, throughput, and the cache-hit ratio,
// and with -json writes a report.LoadSummary that cmd/checkbench
// -load can gate in CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/report"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "simd worker or coordinator base URL")
		n        = flag.Int("n", 2000, "total submissions")
		conc     = flag.Int("c", 64, "concurrent clients")
		tenants  = flag.Int("tenants", 8, "distinct tenants")
		specs    = flag.Int("specs", 32, "distinct run specs (smaller = hotter cache)")
		zipfS    = flag.Float64("zipf-s", 1.2, "Zipf skew for the tenant and spec draws (>1)")
		budget   = flag.Uint64("budget", 5_000, "per-thread instruction budget of generated specs")
		scheme   = flag.String("scheme", "rrob", "scheme of generated specs")
		seed     = flag.Uint64("seed", 1, "loadgen RNG seed (spec seeds derive from it)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request timeout")
		jsonPath = flag.String("json", "", "write a report.LoadSummary here (\"-\" = stdout)")
	)
	flag.Parse()

	if *n <= 0 || *conc <= 0 || *tenants <= 0 || *specs <= 0 {
		fmt.Fprintln(os.Stderr, "simdload: -n, -c, -tenants and -specs must be positive")
		os.Exit(2)
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "simdload: -zipf-s must be > 1")
		os.Exit(2)
	}

	// Pre-draw every request's (tenant, spec) pair from one seeded RNG:
	// the workload is identical run-to-run regardless of scheduling.
	rng := rand.New(rand.NewSource(int64(*seed)))
	tenantZipf := rand.NewZipf(rng, *zipfS, 1, uint64(*tenants-1))
	specZipf := rand.NewZipf(rng, *zipfS, 1, uint64(*specs-1))
	type draw struct{ tenant, spec int }
	draws := make([]draw, *n)
	for i := range draws {
		draws[i] = draw{tenant: int(tenantZipf.Uint64()), spec: int(specZipf.Uint64())}
	}

	bodies := make([][]byte, *specs)
	for i := range bodies {
		b, err := json.Marshal(map[string]any{
			"scheme": *scheme,
			"mixes":  []string{"Mix 1"},
			"budget": *budget,
			"seed":   *seed*1_000_003 + uint64(i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "simdload:", err)
			os.Exit(1)
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: *timeout}
	type outcome struct {
		latency time.Duration
		status  int
		cache   string
		hedged  bool
		err     bool
	}
	outcomes := make([]outcome, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d := draws[i]
				req, err := http.NewRequest(http.MethodPost, *url+"/v1/runs?wait=1", bytes.NewReader(bodies[d.spec]))
				if err != nil {
					outcomes[i] = outcome{err: true}
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Tenant", fmt.Sprintf("t%d", d.tenant))
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					outcomes[i] = outcome{latency: time.Since(t0), err: true}
					continue
				}
				var env struct {
					Cache string `json:"cache"`
				}
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
				resp.Body.Close()
				_ = json.Unmarshal(body, &env)
				outcomes[i] = outcome{
					latency: time.Since(t0),
					status:  resp.StatusCode,
					cache:   env.Cache,
					hedged:  resp.Header.Get("X-Simd-Hedged") != "",
				}
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	sum := report.LoadSummary{
		Target:         *url,
		Requests:       *n,
		Concurrency:    *conc,
		Tenants:        *tenants,
		DurationSec:    elapsed.Seconds(),
		TenantRequests: make([]int, *tenants),
	}
	var latencies []time.Duration
	var totalLatency time.Duration
	for i, o := range outcomes {
		sum.TenantRequests[draws[i].tenant]++
		switch {
		case o.err:
			sum.Errors++
			continue
		case o.status == http.StatusTooManyRequests:
			sum.Rejected++
		case o.status == http.StatusOK:
			sum.OK++
		default:
			sum.Errors++
		}
		latencies = append(latencies, o.latency)
		totalLatency += o.latency
		if o.status == http.StatusOK {
			if o.cache == "hit" {
				sum.CacheHits++
			} else {
				sum.CacheMiss++
			}
			if o.hedged {
				sum.Hedged++
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	quantile := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return ms(latencies[idx])
	}
	sum.P50Ms, sum.P95Ms, sum.P99Ms = quantile(0.50), quantile(0.95), quantile(0.99)
	if len(latencies) > 0 {
		sum.MaxMs = ms(latencies[len(latencies)-1])
		sum.MeanMs = ms(totalLatency / time.Duration(len(latencies)))
	}
	if elapsed > 0 {
		sum.Throughput = float64(*n) / elapsed.Seconds()
	}
	if done := sum.CacheHits + sum.CacheMiss; done > 0 {
		sum.CacheHitRate = float64(sum.CacheHits) / float64(done)
	}

	fmt.Printf("simdload: %d reqs in %.2fs (%.1f rps) against %s\n", *n, elapsed.Seconds(), sum.Throughput, *url)
	fmt.Printf("  ok %d  rejected(429) %d  errors %d  hedged %d\n", sum.OK, sum.Rejected, sum.Errors, sum.Hedged)
	fmt.Printf("  latency ms  p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n", sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs)
	fmt.Printf("  cache  %d hits / %d misses (%.1f%% hit rate)\n", sum.CacheHits, sum.CacheMiss, sum.CacheHitRate*100)

	if *jsonPath != "" {
		out, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simdload:", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simdload:", err)
			os.Exit(1)
		}
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}
