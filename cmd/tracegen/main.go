// Command tracegen inspects the synthetic workloads: it prints a
// benchmark's static program shape, generates a trace prefix, and reports
// its operation mix, branch behaviour, dependence structure and working
// set — the knobs DESIGN.md calibrates against SPEC-2000 characteristics.
//
//	tracegen -bench art -n 100000
//	tracegen -bench art -n 1000000 -o art.trace   # record a binary trace
//	tracegen -list
//	tracegen -bench mcf -dump 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark to inspect")
		n     = flag.Int("n", 100_000, "instructions to generate for statistics")
		dump  = flag.Int("dump", 0, "also print the first N dynamic instructions")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "record the generated trace to a binary file")
		list  = flag.Bool("list", false, "list all benchmarks with their classes")
	)
	flag.Parse()

	if *list || *bench == "" {
		fmt.Printf("%-10s %-5s %6s %6s %6s %6s %10s\n",
			"benchmark", "class", "load%", "store%", "br%", "chase%", "workingset")
		for _, name := range workload.Names() {
			p, _ := workload.ProfileFor(name)
			fmt.Printf("%-10s %-5s %6.1f %6.1f %6.1f %6.1f %9dK\n",
				p.Name, p.Class, 100*p.LoadFrac, 100*p.StoreFrac, 100*p.BranchFrac,
				100*p.ChaseFrac, p.WorkingSet/1024)
		}
		return
	}

	prof, ok := workload.ProfileFor(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	gen, err := workload.NewGenerator(prof, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: class=%s static program=%d instructions\n", prof.Name, prof.Class, gen.ProgramLen())

	if *dump > 0 {
		var ti isa.TraceInst
		for i := 0; i < *dump; i++ {
			gen.Next(&ti)
			fmt.Printf("%4d pc=%#x %-7v dest=%-3d src=%d,%d", i, ti.PC, ti.Op, ti.Dest, ti.Src1, ti.Src2)
			if ti.Op.IsMem() {
				fmt.Printf(" addr=%#x", ti.Addr)
			}
			if ti.Op == isa.OpBranch {
				fmt.Printf(" taken=%v", ti.Taken)
			}
			fmt.Println()
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		var ti isa.TraceInst
		for i := 0; i < *n; i++ {
			gen.Next(&ti)
			if err := w.Write(&ti); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", w.Count(), *out)
		return
	}

	st := workload.Measure(gen, *n)
	fmt.Printf("measured over %d instructions:\n", st.Total)
	for op := isa.OpClass(0); op < isa.NumOpClasses; op++ {
		if st.PerOp[op] == 0 {
			continue
		}
		fmt.Printf("  %-8v %8d (%5.2f%%)\n", op, st.PerOp[op], 100*float64(st.PerOp[op])/float64(st.Total))
	}
	if st.Branches > 0 {
		fmt.Printf("  branches taken: %.1f%%\n", 100*float64(st.Taken)/float64(st.Branches))
	}
}
