package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
)

func row(scheme, mix string, cps float64) experiments.BenchRow {
	return experiments.BenchRow{
		Scheme:       scheme,
		Mix:          mix,
		Cycles:       1000,
		Instructions: 500,
		CyclesPerSec: cps,
	}
}

func mkReport(rows ...experiments.BenchRow) experiments.BenchReport {
	return experiments.BenchReport{Budget: 50_000, Seed: 1, Rows: rows}
}

func TestValidate(t *testing.T) {
	if errs := validate(mkReport(row("Baseline_32", "Mix 1", 1e6))); len(errs) != 0 {
		t.Errorf("valid report rejected: %v", errs)
	}
	if errs := validate(mkReport()); len(errs) == 0 {
		t.Error("empty report accepted")
	}
	bad := mkReport(row("Baseline_32", "Mix 1", 1e6))
	bad.Rows[0].Cycles = 0
	if errs := validate(bad); len(errs) == 0 {
		t.Error("zero-cycle row accepted")
	}
	unlabeled := mkReport(row("", "Mix 1", 1e6))
	if errs := validate(unlabeled); len(errs) == 0 {
		t.Error("unlabeled row accepted")
	}
}

func TestCompare(t *testing.T) {
	base := mkReport(
		row("Baseline_32", "Mix 1", 1e6),
		row("RROB_16", "Mix 1", 2e6),
	)

	// Identical, improved, and within-tolerance reports all pass.
	for _, fresh := range []experiments.BenchReport{
		base,
		mkReport(row("Baseline_32", "Mix 1", 3e6), row("RROB_16", "Mix 1", 9e6)),
		mkReport(row("Baseline_32", "Mix 1", 0.85e6), row("RROB_16", "Mix 1", 1.7e6)),
	} {
		if errs := compare(base, fresh, 0.20); len(errs) != 0 {
			t.Errorf("in-tolerance report rejected: %v", errs)
		}
	}

	// A >20% drop on any row fails, naming the row.
	slow := mkReport(row("Baseline_32", "Mix 1", 0.5e6), row("RROB_16", "Mix 1", 2e6))
	errs := compare(base, slow, 0.20)
	if len(errs) != 1 {
		t.Fatalf("want 1 regression, got %v", errs)
	}
	if !strings.Contains(errs[0], "Baseline_32") || !strings.Contains(errs[0], "regressed") {
		t.Errorf("regression message does not name the row: %q", errs[0])
	}

	// A baseline row missing from the fresh report fails.
	errs = compare(base, mkReport(row("Baseline_32", "Mix 1", 1e6)), 0.20)
	if len(errs) != 1 || !strings.Contains(errs[0], "missing") {
		t.Errorf("missing row not reported: %v", errs)
	}

	// Extra fresh rows are fine; a degenerate baseline row is skipped.
	extra := mkReport(row("Baseline_32", "Mix 1", 1e6), row("RROB_16", "Mix 1", 2e6), row("PROB_5", "Mix 10", 1e6))
	if errs := compare(base, extra, 0.20); len(errs) != 0 {
		t.Errorf("extra rows rejected: %v", errs)
	}
	degenerate := mkReport(row("Baseline_32", "Mix 1", 0), row("RROB_16", "Mix 1", 2e6))
	if errs := compare(degenerate, mkReport(row("Baseline_32", "Mix 1", 1), row("RROB_16", "Mix 1", 2e6)), 0.20); len(errs) != 0 {
		t.Errorf("degenerate baseline row not skipped: %v", errs)
	}
}

func loadSum(n, ok, rejected, errs int, rps, p99 float64) report.LoadSummary {
	return report.LoadSummary{Requests: n, OK: ok, Rejected: rejected, Errors: errs, Throughput: rps, P99Ms: p99}
}

func TestLoadErrors(t *testing.T) {
	if errs := loadErrors(loadSum(100, 98, 2, 0, 50, 120), 0, 0, 0); len(errs) != 0 {
		t.Errorf("healthy summary rejected: %v", errs)
	}
	if errs := loadErrors(loadSum(0, 0, 0, 0, 0, 0), 0, 0, 0); len(errs) == 0 {
		t.Error("empty summary accepted")
	}
	if errs := loadErrors(loadSum(100, 90, 0, 10, 50, 120), 0, 0, 0); len(errs) == 0 {
		t.Error("client errors accepted")
	}
	if errs := loadErrors(loadSum(100, 90, 2, 0, 50, 120), 0, 0, 0); len(errs) == 0 {
		t.Error("broken accounting accepted")
	}
	if errs := loadErrors(loadSum(100, 98, 2, 0, 10, 120), 50, 0, 0); len(errs) == 0 {
		t.Error("throughput below the floor accepted")
	}
	if errs := loadErrors(loadSum(100, 98, 2, 0, 50, 5000), 0, 2000, 0); len(errs) == 0 {
		t.Error("p99 above the ceiling accepted")
	}
	cold := loadSum(100, 98, 2, 0, 50, 120)
	cold.CacheHitRate = 0.30
	if errs := loadErrors(cold, 0, 0, 0.50); len(errs) == 0 {
		t.Error("cache-hit rate below the floor accepted")
	}
	warm := cold
	warm.CacheHitRate = 0.80
	if errs := loadErrors(warm, 0, 0, 0.50); len(errs) != 0 {
		t.Errorf("cache-hit rate above the floor rejected: %v", errs)
	}
	// Zero floors disable the perf gates.
	if errs := loadErrors(loadSum(100, 100, 0, 0, 0.01, 9e9), 0, 0, 0); len(errs) != 0 {
		t.Errorf("ungated summary rejected: %v", errs)
	}
}
