// Command checkbench validates a BENCH_results.json produced by
// cmd/bench before CI uploads it: the report must parse, contain at
// least one row, and every row must describe a run that actually
// happened (positive cycles and committed instructions). An empty or
// degenerate report fails the build instead of silently shipping a
// useless artifact.
//
// With -baseline it additionally guards simulator throughput: every
// (scheme, mix) row of the baseline report must still be present in the
// fresh report, and no row's cycles_per_sec may fall more than
// -max-regress (default 20%) below the baseline's. A hot-path change
// that quietly slows the simulator fails the build with the offending
// rows named.
//
//	checkbench BENCH_results.json
//	checkbench -baseline BENCH_results.json -max-regress 0.20 fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	baseline := flag.String("baseline", "", "committed bench report to compare throughput against")
	maxRegress := flag.Float64("max-regress", 0.20, "max fractional cycles_per_sec drop vs -baseline before failing")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: checkbench [-baseline committed.json] [-max-regress 0.20] <BENCH_results.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	rep := load(path)
	if errs := validate(rep); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %s\n", path, e)
		}
		os.Exit(1)
	}
	fmt.Printf("checkbench: %s ok (%d rows, budget %d, %s)\n",
		path, len(rep.Rows), rep.Budget, rep.GoVersion)
	if *baseline == "" {
		return
	}
	base := load(*baseline)
	if errs := compare(base, rep, *maxRegress); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "checkbench: %s vs %s: %s\n", path, *baseline, e)
		}
		os.Exit(1)
	}
	fmt.Printf("checkbench: %s within %.0f%% of %s on every (scheme, mix) row\n",
		path, *maxRegress*100, *baseline)
}

func load(path string) experiments.BenchReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal("%s: not a bench report: %v", path, err)
	}
	return rep
}

// validate checks a report is structurally sound: non-empty, with a
// budget, and every row recording actual simulated work.
func validate(rep experiments.BenchReport) []string {
	var errs []string
	if len(rep.Rows) == 0 {
		errs = append(errs, "report has no rows")
	}
	if rep.Budget == 0 {
		errs = append(errs, "report has zero budget")
	}
	for i, r := range rep.Rows {
		if r.Scheme == "" || r.Mix == "" {
			errs = append(errs, fmt.Sprintf("row %d is missing its scheme or mix label", i))
			continue
		}
		if r.Cycles <= 0 || r.Instructions == 0 {
			errs = append(errs, fmt.Sprintf("row %d (%s, %s) records no simulated work (cycles=%d, instructions=%d)",
				i, r.Scheme, r.Mix, r.Cycles, r.Instructions))
		}
	}
	return errs
}

// compare checks fresh against base row by row, keyed on (scheme, mix):
// every baseline row must still exist, and its cycles_per_sec must not
// have dropped by more than maxRegress. Rows fresh adds beyond the
// baseline pass silently (they have nothing to regress against), as do
// throughput improvements.
func compare(base, fresh experiments.BenchReport, maxRegress float64) []string {
	type key struct{ scheme, mix string }
	got := make(map[key]experiments.BenchRow, len(fresh.Rows))
	for _, r := range fresh.Rows {
		got[key{r.Scheme, r.Mix}] = r
	}
	var errs []string
	for _, b := range base.Rows {
		r, ok := got[key{b.Scheme, b.Mix}]
		if !ok {
			errs = append(errs, fmt.Sprintf("(%s, %s) present in baseline but missing from fresh report", b.Scheme, b.Mix))
			continue
		}
		if b.CyclesPerSec <= 0 {
			continue // degenerate baseline row; validate catches it on its own run
		}
		drop := 1 - r.CyclesPerSec/b.CyclesPerSec
		if drop > maxRegress {
			errs = append(errs, fmt.Sprintf("(%s, %s) cycles_per_sec regressed %.1f%% (%.0f -> %.0f, limit %.0f%%)",
				b.Scheme, b.Mix, drop*100, b.CyclesPerSec, r.CyclesPerSec, maxRegress*100))
		}
	}
	return errs
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkbench: "+format+"\n", args...)
	os.Exit(1)
}
