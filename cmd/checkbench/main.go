// Command checkbench validates a BENCH_results.json produced by
// cmd/bench before CI uploads it: the report must parse, contain at
// least one row, and every row must describe a run that actually
// happened (positive cycles and committed instructions). An empty or
// degenerate report fails the build instead of silently shipping a
// useless artifact.
//
// With -baseline it additionally guards simulator throughput: every
// (scheme, mix) row of the baseline report must still be present in the
// fresh report, and no row's cycles_per_sec may fall more than
// -max-regress (default 20%) below the baseline's. A hot-path change
// that quietly slows the simulator fails the build with the offending
// rows named.
//
// With -load the argument is instead a report.LoadSummary produced by
// cmd/simdload -json: the run must have completed without client
// errors, served every accepted request, and (optionally) clear
// -min-rps / -max-p99 / -min-hit-rate floors — wiring cluster latency
// and cache effectiveness into the same CI gate as simulator
// throughput.
//
//	checkbench BENCH_results.json
//	checkbench -baseline BENCH_results.json -max-regress 0.20 fresh.json
//	checkbench -load -min-rps 50 -max-p99 2000 -min-hit-rate 0.5 load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	baseline := flag.String("baseline", "", "committed bench report to compare throughput against")
	maxRegress := flag.Float64("max-regress", 0.20, "max fractional cycles_per_sec drop vs -baseline before failing")
	loadMode := flag.Bool("load", false, "treat the argument as a cmd/simdload summary instead of a bench report")
	minRPS := flag.Float64("min-rps", 0, "with -load: minimum accepted throughput (0 = no floor)")
	maxP99 := flag.Float64("max-p99", 0, "with -load: maximum accepted p99 latency in ms (0 = no ceiling)")
	minHitRate := flag.Float64("min-hit-rate", 0, "with -load: minimum accepted cache-hit rate in [0,1] (0 = no floor)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: checkbench [-baseline committed.json] [-max-regress 0.20] <BENCH_results.json>")
		fmt.Fprintln(os.Stderr, "       checkbench -load [-min-rps N] [-max-p99 MS] [-min-hit-rate F] <load.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *loadMode {
		checkLoad(path, *minRPS, *maxP99, *minHitRate)
		return
	}
	rep := load(path)
	if errs := validate(rep); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %s\n", path, e)
		}
		os.Exit(1)
	}
	fmt.Printf("checkbench: %s ok (%d rows, budget %d, %s)\n",
		path, len(rep.Rows), rep.Budget, rep.GoVersion)
	if *baseline == "" {
		return
	}
	base := load(*baseline)
	if errs := compare(base, rep, *maxRegress); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "checkbench: %s vs %s: %s\n", path, *baseline, e)
		}
		os.Exit(1)
	}
	fmt.Printf("checkbench: %s within %.0f%% of %s on every (scheme, mix) row\n",
		path, *maxRegress*100, *baseline)
}

// checkLoad gates a cmd/simdload summary: structurally sound, no
// client-visible errors, and inside the optional rps/p99/hit-rate
// envelope.
func checkLoad(path string, minRPS, maxP99, minHitRate float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var sum report.LoadSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		fatal("%s: not a load summary: %v", path, err)
	}
	if errs := loadErrors(sum, minRPS, maxP99, minHitRate); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "checkbench: %s: %s\n", path, e)
		}
		os.Exit(1)
	}
	fmt.Printf("checkbench: %s ok (%d reqs, %.1f rps, p99 %.1fms, %.0f%% cache hits)\n",
		path, sum.Requests, sum.Throughput, sum.P99Ms, sum.CacheHitRate*100)
}

// loadErrors is checkLoad's gate: structural soundness plus the
// optional throughput floor, p99 ceiling, and cache-hit-rate floor.
func loadErrors(sum report.LoadSummary, minRPS, maxP99, minHitRate float64) []string {
	var errs []string
	if sum.Requests <= 0 {
		errs = append(errs, "summary records no requests")
	}
	if sum.OK+sum.Rejected+sum.Errors != sum.Requests {
		errs = append(errs, fmt.Sprintf("request accounting is broken: ok %d + rejected %d + errors %d != %d",
			sum.OK, sum.Rejected, sum.Errors, sum.Requests))
	}
	if sum.Errors > 0 {
		errs = append(errs, fmt.Sprintf("%d requests errored", sum.Errors))
	}
	if sum.OK == 0 && sum.Requests > 0 {
		errs = append(errs, "no request succeeded")
	}
	if minRPS > 0 && sum.Throughput < minRPS {
		errs = append(errs, fmt.Sprintf("throughput %.1f rps below the %.1f floor", sum.Throughput, minRPS))
	}
	if maxP99 > 0 && sum.P99Ms > maxP99 {
		errs = append(errs, fmt.Sprintf("p99 %.1fms above the %.1fms ceiling", sum.P99Ms, maxP99))
	}
	if minHitRate > 0 && sum.CacheHitRate < minHitRate {
		errs = append(errs, fmt.Sprintf("cache-hit rate %.0f%% below the %.0f%% floor", sum.CacheHitRate*100, minHitRate*100))
	}
	return errs
}

func load(path string) experiments.BenchReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal("%s: not a bench report: %v", path, err)
	}
	return rep
}

// validate checks a report is structurally sound: non-empty, with a
// budget, and every row recording actual simulated work.
func validate(rep experiments.BenchReport) []string {
	var errs []string
	if len(rep.Rows) == 0 {
		errs = append(errs, "report has no rows")
	}
	if rep.Budget == 0 {
		errs = append(errs, "report has zero budget")
	}
	for i, r := range rep.Rows {
		if r.Scheme == "" || r.Mix == "" {
			errs = append(errs, fmt.Sprintf("row %d is missing its scheme or mix label", i))
			continue
		}
		if r.Cycles <= 0 || r.Instructions == 0 {
			errs = append(errs, fmt.Sprintf("row %d (%s, %s) records no simulated work (cycles=%d, instructions=%d)",
				i, r.Scheme, r.Mix, r.Cycles, r.Instructions))
		}
	}
	return errs
}

// compare checks fresh against base row by row, keyed on (scheme, mix):
// every baseline row must still exist, and its cycles_per_sec must not
// have dropped by more than maxRegress. Rows fresh adds beyond the
// baseline pass silently (they have nothing to regress against), as do
// throughput improvements.
func compare(base, fresh experiments.BenchReport, maxRegress float64) []string {
	type key struct{ scheme, mix string }
	got := make(map[key]experiments.BenchRow, len(fresh.Rows))
	for _, r := range fresh.Rows {
		got[key{r.Scheme, r.Mix}] = r
	}
	var errs []string
	for _, b := range base.Rows {
		r, ok := got[key{b.Scheme, b.Mix}]
		if !ok {
			errs = append(errs, fmt.Sprintf("(%s, %s) present in baseline but missing from fresh report", b.Scheme, b.Mix))
			continue
		}
		if b.CyclesPerSec <= 0 {
			continue // degenerate baseline row; validate catches it on its own run
		}
		drop := 1 - r.CyclesPerSec/b.CyclesPerSec
		if drop > maxRegress {
			errs = append(errs, fmt.Sprintf("(%s, %s) cycles_per_sec regressed %.1f%% (%.0f -> %.0f, limit %.0f%%)",
				b.Scheme, b.Mix, drop*100, b.CyclesPerSec, r.CyclesPerSec, maxRegress*100))
		}
	}
	return errs
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkbench: "+format+"\n", args...)
	os.Exit(1)
}
