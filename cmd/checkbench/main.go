// Command checkbench validates a BENCH_results.json produced by
// cmd/bench before CI uploads it: the report must parse, contain at
// least one row, and every row must describe a run that actually
// happened (positive cycles and committed instructions). An empty or
// degenerate report fails the build instead of silently shipping a
// useless artifact.
//
//	checkbench BENCH_results.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkbench <BENCH_results.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal("%s: not a bench report: %v", path, err)
	}
	if len(rep.Rows) == 0 {
		fatal("%s: report has no rows", path)
	}
	if rep.Budget == 0 {
		fatal("%s: report has zero budget", path)
	}
	for i, r := range rep.Rows {
		if r.Scheme == "" || r.Mix == "" {
			fatal("%s: row %d is missing its scheme or mix label", path, i)
		}
		if r.Cycles <= 0 || r.Instructions == 0 {
			fatal("%s: row %d (%s, %s) records no simulated work (cycles=%d, instructions=%d)",
				path, i, r.Scheme, r.Mix, r.Cycles, r.Instructions)
		}
	}
	fmt.Printf("checkbench: %s ok (%d rows, budget %d, %s)\n",
		path, len(rep.Rows), rep.Budget, rep.GoVersion)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkbench: "+format+"\n", args...)
	os.Exit(1)
}
