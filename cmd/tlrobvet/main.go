// Command tlrobvet is the repository's static-analysis gate: it runs
// the stock `go vet` suite plus the seven custom analyzers that
// enforce the simulator's and the serving fleet's load-bearing
// invariants —
//
//	allocfree     //tlrob:allocfree regions contain no heap-allocating
//	              constructs (the static half of the malloc-count tests)
//	determinism   no wall clock or math/rand in sim-core packages; no
//	              unsorted map iteration feeding output (cache keys and
//	              golden files depend on bit-identical runs)
//	exhaustcause  switches over telemetry.Cause / rob.Scheme cover every
//	              member or panic, so active+stalls==cycles survives
//	              enum growth
//	ctxflow       context.Context is the first parameter and never a
//	              struct field
//	lockguard     no sync.Mutex/RWMutex held across blocking operations,
//	              returned while held, or re-locked (CFG must-analysis)
//	golifecycle   every go statement in cluster/server/store is
//	              lifecycle-tracked: WaitGroup.Add before the spawn or a
//	              stop-channel/ctx.Done() receive in the body
//	bodyclose     every *http.Response from Client.Do/Get/Post reaches
//	              Body.Close on all non-error paths (CFG may-analysis)
//
// Usage:
//
//	go run ./cmd/tlrobvet [-novet] [-list] [-json] [-out file] [-v] [packages]
//
// Packages default to ./... relative to the current directory. All
// packages are loaded once, via a single `go list -export -deps -json`
// pass shared by every analyzer; -v prints each analyzer's wall time
// to stderr. -json replaces the text output on stdout with NDJSON
// records {"file","line","analyzer","message"}; -out writes the same
// NDJSON to a file while keeping text on stdout, which is how CI both
// annotates the diff (problem matcher over the text) and archives the
// findings (artifact from the file).
//
// The exit status is non-zero if go vet fails or any analyzer reports
// a diagnostic. Suppress a finding with //tlrob:allow(reason) on the
// flagged line or the line above; see docs/ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/bodyclose"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/exhaustcause"
	"repro/internal/analysis/golifecycle"
	"repro/internal/analysis/lockguard"
)

var analyzers = []*analysis.Analyzer{
	allocfree.Analyzer,
	bodyclose.Analyzer,
	ctxflow.Analyzer,
	determinism.Analyzer,
	exhaustcause.Analyzer,
	golifecycle.Analyzer,
	lockguard.Analyzer,
}

// ndjsonRecord is one diagnostic in machine-readable form.
type ndjsonRecord struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	novet := flag.Bool("novet", false, "skip the stock go vet passes")
	list := flag.Bool("list", false, "list the custom analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as NDJSON on stdout instead of text")
	outFile := flag.String("out", "", "additionally write NDJSON diagnostics to this file")
	verbose := flag.Bool("v", false, "print per-analyzer wall time to stderr")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, timings, err := analysis.RunTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "tlrobvet: %-14s %8.1fms\n", tm.Analyzer, float64(tm.Elapsed.Microseconds())/1000)
		}
	}

	cwd, _ := os.Getwd()
	records := make([]ndjsonRecord, 0, len(diags))
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
				d.Pos.Filename = rel
			}
		}
		records = append(records, ndjsonRecord{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
		if *asJSON {
			continue // NDJSON replaces the text lines below
		}
		fmt.Println(d)
	}
	if *asJSON {
		if err := writeNDJSON(os.Stdout, records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err == nil {
			err = writeNDJSON(f, records)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlrobvet: writing %s: %v\n", *outFile, err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tlrobvet: %d finding(s)\n", len(diags))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func writeNDJSON(w io.Writer, records []ndjsonRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
