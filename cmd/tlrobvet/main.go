// Command tlrobvet is the repository's static-analysis gate: it runs
// the stock `go vet` suite plus the four custom analyzers that enforce
// the simulator's load-bearing invariants —
//
//	allocfree     //tlrob:allocfree regions contain no heap-allocating
//	              constructs (the static half of the malloc-count tests)
//	determinism   no wall clock or math/rand in sim-core packages; no
//	              unsorted map iteration feeding output (cache keys and
//	              golden files depend on bit-identical runs)
//	exhaustcause  switches over telemetry.Cause / rob.Scheme cover every
//	              member or panic, so active+stalls==cycles survives
//	              enum growth
//	ctxflow       context.Context is the first parameter and never a
//	              struct field
//
// Usage:
//
//	go run ./cmd/tlrobvet [-novet] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit status is non-zero if go vet fails or any analyzer reports a
// diagnostic. Suppress a finding with //tlrob:allow(reason) on the
// flagged line or the line above; see docs/ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/exhaustcause"
)

var analyzers = []*analysis.Analyzer{
	allocfree.Analyzer,
	ctxflow.Analyzer,
	determinism.Analyzer,
	exhaustcause.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the stock go vet passes")
	list := flag.Bool("list", false, "list the custom analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tlrobvet: %d finding(s)\n", len(diags))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
