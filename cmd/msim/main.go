// Command msim runs one simulation of the two-level-ROB SMT machine and
// prints per-thread IPCs, the fair-throughput metric and key substrate
// statistics.
//
// Examples:
//
//	msim -mix "Mix 1" -scheme reactive -threshold 16
//	msim -benches art,mgrid,apsi,parser -scheme baseline -l1rob 128
//	msim -single art
//	msim -traces a.trace,b.trace -scheme reactive    # recorded traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/policy"
	"repro/internal/rob"
)

func parseScheme(s string) (rob.Scheme, error) {
	switch s {
	case "baseline":
		return tlrob.Baseline, nil
	case "reactive", "r-rob":
		return tlrob.Reactive, nil
	case "relaxed", "relaxed-reactive":
		return tlrob.RelaxedReactive, nil
	case "cdr", "count-delayed":
		return tlrob.CountDelayed, nil
	case "predictive", "p-rob":
		return tlrob.Predictive, nil
	case "shared", "shared-single":
		return tlrob.SharedSingle, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func main() {
	var (
		mixName   = flag.String("mix", "", "Table-2 mix to run (e.g. \"Mix 1\")")
		benches   = flag.String("benches", "", "comma-separated benchmark list (alternative to -mix)")
		single    = flag.String("single", "", "run one benchmark single-threaded")
		traces    = flag.String("traces", "", "comma-separated binary trace files, one per thread")
		scheme    = flag.String("scheme", "baseline", "baseline | reactive | relaxed | cdr | predictive")
		threshold = flag.Int("threshold", 16, "DoD threshold")
		l1rob     = flag.Int("l1rob", 32, "per-thread first-level ROB entries")
		l2rob     = flag.Int("l2rob", 384, "shared second-level ROB entries")
		polName   = flag.String("policy", "dcra", "fetch policy: icount | dcra | stall | flush | mlp")
		budget    = flag.Uint64("budget", 200_000, "per-thread instruction budget")
		seed      = flag.Uint64("seed", 1, "workload seed")
		early     = flag.Bool("early", false, "enable early register deallocation [24]")
		asJSON    = flag.Bool("json", false, "emit the result as JSON on stdout")
		verbose   = flag.Bool("v", false, "print substrate statistics")
	)
	flag.Parse()

	sch, err := parseScheme(*scheme)
	fatal(err)
	pol, err := policy.ParseKind(*polName)
	fatal(err)

	opt := tlrob.Options{
		EarlyRegRelease: *early,
		Scheme:          sch,
		DoDThreshold:    *threshold,
		L1ROB:           *l1rob,
		L2ROB:           *l2rob,
		Policy:          pol,
		Budget:          *budget,
		Seed:            *seed,
	}
	if sch == tlrob.Baseline || sch == tlrob.SharedSingle {
		opt.L2ROB = 0
		opt.DoDThreshold = 0
	}

	switch {
	case *traces != "":
		files := strings.Split(*traces, ",")
		r, err := tlrob.RunTraceFiles(files, opt)
		fatal(err)
		fmt.Printf("traces  scheme=%s policy=%s cycles=%d\n", r.Scheme, *polName, r.Cycles)
		for _, t := range r.Threads {
			fmt.Printf("  %-16s committed=%-9d IPC=%.4f\n", t.Benchmark, t.Committed, t.IPC)
		}
		fmt.Printf("  throughput=%.4f  DoD-mean=%.2f\n", r.Throughput, r.DoDMean)
		if *verbose {
			printRaw(rawPrinter{r.Raw.Cycles, r.Raw})
		}
	case *single != "":
		r, err := tlrob.RunSingle(*single, opt)
		fatal(err)
		if *asJSON {
			emitJSON(r)
			return
		}
		fmt.Printf("%-10s cycles=%-10d IPC=%.4f\n", r.Benchmark, r.Cycles, r.IPC)
		if *verbose {
			printRaw(rawPrinter{r.Raw.Cycles, r.Raw})
		}
	case *mixName != "" || *benches != "":
		var names []string
		var label string
		if *mixName != "" {
			m, err := tlrob.MixByName(*mixName)
			fatal(err)
			names = m.Benchmarks[:]
			label = m.Name
		} else {
			names = strings.Split(*benches, ",")
			label = *benches
		}
		r, err := tlrob.RunBenchmarks(label, names, opt, nil)
		fatal(err)
		if *asJSON {
			emitJSON(r)
			return
		}
		fmt.Printf("%s  scheme=%s policy=%s cycles=%d\n", r.Mix, r.Scheme, *polName, r.Cycles)
		for _, t := range r.Threads {
			fmt.Printf("  %-10s committed=%-9d IPC=%.4f  weighted=%.4f\n",
				t.Benchmark, t.Committed, t.IPC, t.WeightedIPC)
		}
		fmt.Printf("  throughput=%.4f  fair-throughput=%.4f  DoD-mean=%.2f\n",
			r.Throughput, r.FairThroughput, r.DoDMean)
		if *verbose {
			printRaw(rawPrinter{r.Raw.Cycles, r.Raw})
		}
	default:
		fmt.Fprintln(os.Stderr, "msim: one of -mix, -benches or -single is required")
		flag.Usage()
		os.Exit(2)
	}
}

type rawPrinter struct {
	cycles int64
	r      tlrob.RawResult
}

func printRaw(p rawPrinter) {
	r := p.r
	for t := range r.Loads {
		fmt.Printf("  t%d loads=%-8d l1m=%-8d l2m=%-8d avgLat=%.1f\n",
			t, r.Loads[t], r.LoadL1Miss[t], r.LoadL2Miss[t],
			float64(r.LoadLatencySum[t])/float64(max(r.Loads[t], 1)))
	}
	fmt.Printf("  branches: lookups=%d mispred=%d (%.2f%%)\n",
		r.Branch.Lookups, r.Branch.Mispreds, pct(r.Branch.Mispreds, r.Branch.Lookups))
	fmt.Printf("  L1D: acc=%d miss=%d (%.2f%%)  L2: acc=%d miss=%d (%.2f%%)\n",
		r.L1D.Accesses, r.L1D.Misses, pct(r.L1D.Misses, r.L1D.Accesses),
		r.L2.Accesses, r.L2.Misses, pct(r.L2.Misses, r.L2.Accesses))
	fmt.Printf("  L2-miss loads=%d mshr-merges=%d mshr-stalls=%d\n",
		r.HierStats.L2MissLoads, r.HierStats.MSHRMerges, r.HierStats.MSHRStalls)
	if p.cycles > 0 {
		fmt.Printf("  IQ mean occupancy=%.1f/64\n", float64(r.IQStats.OccupancySum)/float64(r.IQStats.Cycles))
	}
	fmt.Printf("  ROB mgr: misses=%d alloc=%d release=%d deniedDoD=%d deniedBusy=%d ownedCycles=%d\n",
		r.ROBStats.MissesObserved, r.ROBStats.Allocations, r.ROBStats.Releases,
		r.ROBStats.DeniedDoD, r.ROBStats.DeniedBusy, r.ROBStats.OwnedCycles)
	fmt.Printf("  squashed=%d wrong-path=%d flushes=%d lsq-fwd=%d early-released=%d\n",
		r.SquashedUops, r.WrongPathDispatched, r.FlushSquashes, r.LSQStats.Forwarded,
		r.EarlyRegReleases)
	if r.DoDPred != nil {
		fmt.Printf("  DoD predictor: lookups=%d untrained=%d correct=%d wrong=%d\n",
			r.DoDPred.Lookups, r.DoDPred.Untrained, r.DoDPred.Correct, r.DoDPred.Wrong)
	}
	if r.DoDHist.Total() > 0 {
		fmt.Printf("  DoD@service: n=%d mean=%.2f hist[0..31]=", r.DoDHist.Total(), r.DoDHist.Mean())
		for i := 0; i < 32 && i < len(r.DoDHist.Counts); i++ {
			fmt.Printf("%d ", r.DoDHist.Counts[i])
		}
		fmt.Println()
	}
}

// emitJSON writes any result as indented JSON for downstream tooling.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "msim:", err)
		os.Exit(1)
	}
}
