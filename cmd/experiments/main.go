// Command experiments regenerates the paper's evaluation: every figure
// (1–7) and the two configuration tables. By default it runs everything;
// individual artifacts can be selected with flags.
//
//	experiments -budget 200000            # full evaluation
//	experiments -fig2 -budget 100000      # just the headline comparison
//	experiments -table2 -list-config      # configuration summaries only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		budget  = flag.Uint64("budget", 200_000, "instructions per thread per run")
		seed    = flag.Uint64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = all cores)")

		listCfg = flag.Bool("list-config", false, "print the Table-1 machine configuration")
		table2  = flag.Bool("table2", false, "print the Table-2 mixes")
		fig1    = flag.Bool("fig1", false, "Figure 1: baseline DoD histogram")
		fig2    = flag.Bool("fig2", false, "Figure 2: FT with 2-Level R-ROB16")
		fig3    = flag.Bool("fig3", false, "Figure 3: DoD histogram with R-ROB16")
		fig4    = flag.Bool("fig4", false, "Figure 4: FT with Relaxed R-ROB15")
		fig5    = flag.Bool("fig5", false, "Figure 5: FT with CDR-ROB15")
		fig6    = flag.Bool("fig6", false, "Figure 6: FT with P-ROB3/P-ROB5")
		fig7    = flag.Bool("fig7", false, "Figure 7: DoD histogram with P-ROB5")
		sweeps  = flag.Bool("sweeps", false, "parameter sweeps (DoD thresholds, L2 size, CDR delay)")
	)
	flag.Parse()

	all := !(*listCfg || *table2 || *fig1 || *fig2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *sweeps)

	out := os.Stdout
	if *listCfg || all {
		experiments.WriteTable1(out)
		fmt.Fprintln(out)
	}
	if *table2 || all {
		experiments.WriteTable2(out)
		fmt.Fprintln(out)
	}

	r := experiments.NewRunner(experiments.Params{Budget: *budget, Seed: *seed, Workers: *workers})

	runFT := func(title string, specs ...experiments.SchemeSpec) []experiments.SchemeSeries {
		series, err := r.FTComparison(specs...)
		fatal(err)
		experiments.WriteFTTable(out, title, series)
		fmt.Fprintln(out)
		return series
	}

	var base []experiments.SchemeSeries
	if *fig1 || all {
		rows, err := r.DoDHistogram(experiments.Baseline32())
		fatal(err)
		experiments.WriteDoDHistogram(out, experiments.Fig1, rows)
		fmt.Fprintln(out)
	}
	if *fig2 || all {
		base = runFT(experiments.Fig2,
			experiments.Baseline32(), experiments.Baseline128(), experiments.RROB(16))
	}
	if *fig3 || all {
		rows, err := r.DoDHistogram(experiments.RROB(16))
		fatal(err)
		experiments.WriteDoDHistogram(out, experiments.Fig3, rows)
		if len(base) == 3 {
			var mean float64
			for _, row := range rows {
				mean += row.DoDMean
			}
			mean /= float64(len(rows))
			fmt.Fprintf(out, "dependent growth vs Baseline_32: %+.1f%% (paper: +56%%)\n",
				100*(mean/base[0].AvgDoD-1))
		}
		fmt.Fprintln(out)
	}
	if *fig4 || all {
		runFT(experiments.Fig4,
			experiments.Baseline32(), experiments.Baseline128(), experiments.RelaxedRROB(15))
	}
	if *fig5 || all {
		runFT(experiments.Fig5,
			experiments.Baseline32(), experiments.Baseline128(), experiments.CDRROB(15))
	}
	if *fig6 || all {
		runFT(experiments.Fig6,
			experiments.Baseline32(), experiments.PROB(3), experiments.PROB(5))
	}
	if *fig7 || all {
		rows, err := r.DoDHistogram(experiments.PROB(5))
		fatal(err)
		experiments.WriteDoDHistogram(out, experiments.Fig7, rows)
		if len(base) == 3 {
			var mean float64
			for _, row := range rows {
				mean += row.DoDMean
			}
			mean /= float64(len(rows))
			fmt.Fprintf(out, "dependent growth vs Baseline_32: %+.1f%% (paper: +120%%)\n",
				100*(mean/base[0].AvgDoD-1))
		}
		fmt.Fprintln(out)
	}
	if *sweeps {
		pts, err := r.SweepDoDThreshold([]int{1, 2, 4, 8, 16, 24, 31})
		fatal(err)
		experiments.WriteSweep(out, "Sweep: reactive DoD threshold (paper best: 16)", pts)
		pts, err = r.SweepPredictiveThreshold([]int{1, 3, 5, 8, 16})
		fatal(err)
		experiments.WriteSweep(out, "Sweep: predictive DoD threshold (paper best: 3-5)", pts)
		pts, err = r.SweepSecondLevelSize([]int{96, 192, 384, 768})
		fatal(err)
		experiments.WriteSweep(out, "Sweep: second-level ROB size (paper: 384)", pts)
		pts, err = r.SweepCountDelay([]int{8, 16, 32, 64})
		fatal(err)
		experiments.WriteSweep(out, "Sweep: CDR snapshot delay (paper: 32)", pts)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
