// Command experiments regenerates the paper's evaluation: every figure
// (1–7) and the two configuration tables. By default it runs everything;
// individual artifacts can be selected with flags. Ctrl-C cancels the
// sweep (in-flight runs finish, the rest are abandoned).
//
//	experiments -budget 200000            # full evaluation
//	experiments -fig2 -budget 100000      # just the headline comparison
//	experiments -fig2 -json               # machine-readable output
//	experiments -table2 -list-config      # configuration summaries only
//	experiments -stalls                   # per-scheme stall attribution
//	experiments -trace out.json -trace-scheme rrob -trace-mix "Mix 1"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		budget  = flag.Uint64("budget", 200_000, "instructions per thread per run")
		seed    = flag.Uint64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
		asJSON  = flag.Bool("json", false, "emit the shared machine-readable schema (internal/report) instead of tables")

		listCfg = flag.Bool("list-config", false, "print the Table-1 machine configuration")
		table2  = flag.Bool("table2", false, "print the Table-2 mixes")
		fig1    = flag.Bool("fig1", false, "Figure 1: baseline DoD histogram")
		fig2    = flag.Bool("fig2", false, "Figure 2: FT with 2-Level R-ROB16")
		fig3    = flag.Bool("fig3", false, "Figure 3: DoD histogram with R-ROB16")
		fig4    = flag.Bool("fig4", false, "Figure 4: FT with Relaxed R-ROB15")
		fig5    = flag.Bool("fig5", false, "Figure 5: FT with CDR-ROB15")
		fig6    = flag.Bool("fig6", false, "Figure 6: FT with P-ROB3/P-ROB5")
		fig7    = flag.Bool("fig7", false, "Figure 7: DoD histogram with P-ROB5")
		sweeps  = flag.Bool("sweeps", false, "parameter sweeps (DoD thresholds, L2 size, CDR delay)")

		stalls      = flag.Bool("stalls", false, "stall-attribution breakdown per scheme over all mixes (telemetry)")
		trace       = flag.String("trace", "", "write a Chrome/Perfetto trace of one instrumented mix run to this file")
		traceScheme = flag.String("trace-scheme", "rrob", "scheme for -trace (baseline, baseline128, rrob, relaxed, cdr, prob, shared)")
		traceMix    = flag.String("trace-mix", "Mix 1", "Table-2 mix name for -trace")
		sampleIvl   = flag.Int("sample-interval", 0, "telemetry occupancy sampling interval in cycles (0 = default)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	all := !(*listCfg || *table2 || *fig1 || *fig2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *sweeps ||
		*stalls || *trace != "")

	out := os.Stdout
	doc := report.NewDocument(*budget, *seed)
	if !*asJSON {
		if *listCfg || all {
			experiments.WriteTable1(out)
			fmt.Fprintln(out)
		}
		if *table2 || all {
			experiments.WriteTable2(out)
			fmt.Fprintln(out)
		}
	}

	r := experiments.NewRunner(experiments.Params{Budget: *budget, Seed: *seed, Workers: *workers})

	runFT := func(title string, specs ...experiments.SchemeSpec) []experiments.SchemeSeries {
		series, err := r.FTComparison(ctx, specs...)
		fatal(err)
		if *asJSON {
			doc.AddFigure(title, series, false)
		} else {
			experiments.WriteFTTable(out, title, series)
			fmt.Fprintln(out)
		}
		return series
	}
	runHist := func(title string, spec experiments.SchemeSpec) []experiments.MixRow {
		s, err := r.RunScheme(ctx, spec)
		fatal(err)
		if *asJSON {
			doc.AddFigure(title, []experiments.SchemeSeries{s}, true)
		} else {
			experiments.WriteDoDHistogram(out, title, s.Rows)
		}
		return s.Rows
	}

	var base []experiments.SchemeSeries
	if *fig1 || all {
		runHist(experiments.Fig1, experiments.Baseline32())
		if !*asJSON {
			fmt.Fprintln(out)
		}
	}
	if *fig2 || all {
		base = runFT(experiments.Fig2,
			experiments.Baseline32(), experiments.Baseline128(), experiments.RROB(16))
	}
	if *fig3 || all {
		rows := runHist(experiments.Fig3, experiments.RROB(16))
		if !*asJSON {
			writeGrowth(out, rows, base, "+56%")
			fmt.Fprintln(out)
		}
	}
	if *fig4 || all {
		runFT(experiments.Fig4,
			experiments.Baseline32(), experiments.Baseline128(), experiments.RelaxedRROB(15))
	}
	if *fig5 || all {
		runFT(experiments.Fig5,
			experiments.Baseline32(), experiments.Baseline128(), experiments.CDRROB(15))
	}
	if *fig6 || all {
		runFT(experiments.Fig6,
			experiments.Baseline32(), experiments.PROB(3), experiments.PROB(5))
	}
	if *fig7 || all {
		rows := runHist(experiments.Fig7, experiments.PROB(5))
		if !*asJSON {
			writeGrowth(out, rows, base, "+120%")
			fmt.Fprintln(out)
		}
	}
	if *stalls {
		// A separate telemetry-enabled runner: the figure sweeps above
		// stay uninstrumented.
		rt := experiments.NewRunner(experiments.Params{
			Budget: *budget, Seed: *seed, Workers: *workers, Telemetry: true,
		})
		for _, spec := range []experiments.SchemeSpec{
			experiments.Baseline32(), experiments.Baseline128(),
			experiments.RROB(16), experiments.PROB(5),
		} {
			s, err := rt.RunScheme(ctx, spec)
			fatal(err)
			if *asJSON {
				doc.AddFigure("Stall attribution: "+spec.Label, []experiments.SchemeSeries{s}, false)
			} else {
				fatal(experiments.WriteStallTable(out, s))
				fmt.Fprintln(out)
			}
		}
	}
	if *trace != "" {
		fatal(writeTrace(*trace, *traceScheme, *traceMix, *budget, *seed, *sampleIvl))
	}
	if *sweeps {
		runSweep := func(title string, pts []experiments.SweepPoint, err error) {
			fatal(err)
			if *asJSON {
				doc.AddSweep(title, pts)
			} else {
				experiments.WriteSweep(out, title, pts)
			}
		}
		pts, err := r.SweepDoDThreshold(ctx, []int{1, 2, 4, 8, 16, 24, 31})
		runSweep("Sweep: reactive DoD threshold (paper best: 16)", pts, err)
		pts, err = r.SweepPredictiveThreshold(ctx, []int{1, 3, 5, 8, 16})
		runSweep("Sweep: predictive DoD threshold (paper best: 3-5)", pts, err)
		pts, err = r.SweepSecondLevelSize(ctx, []int{96, 192, 384, 768})
		runSweep("Sweep: second-level ROB size (paper: 384)", pts, err)
		pts, err = r.SweepCountDelay(ctx, []int{8, 16, 32, 64})
		runSweep("Sweep: CDR snapshot delay (paper: 32)", pts, err)
	}
	if *asJSON {
		fatal(doc.WriteJSON(out))
	}
}

// writeTrace runs one instrumented mix and exports its telemetry as a
// Chrome Trace Format file loadable in Perfetto or chrome://tracing.
func writeTrace(path, schemeName, mixName string, budget, seed uint64, sampleIvl int) error {
	spec, err := experiments.SchemeByName(schemeName, 0)
	if err != nil {
		return err
	}
	mix, ok := workload.MixByName(mixName)
	if !ok {
		return fmt.Errorf("unknown mix %q (see -table2 for names)", mixName)
	}
	opt := spec.Opt
	opt.Budget = budget
	opt.Seed = seed
	opt.Telemetry = true
	opt.TelemetrySampleInterval = sampleIvl
	res, err := tlrob.RunMix(mix, opt, nil)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Raw.Telemetry.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s (%s, %s, %d cycles, %d samples, %d grants)\n",
		path, spec.Label, mix.Name, res.Cycles,
		res.Raw.Telemetry.SampleCount(), res.Telemetry.Grants.Count)
	return nil
}

// writeGrowth prints the dependent-growth line under Figures 3 and 7 when
// the Figure-2 baseline is available for comparison.
func writeGrowth(out *os.File, rows []experiments.MixRow, base []experiments.SchemeSeries, paper string) {
	if len(base) != 3 {
		return
	}
	var mean float64
	for _, row := range rows {
		mean += row.DoDMean
	}
	mean /= float64(len(rows))
	fmt.Fprintf(out, "dependent growth vs Baseline_32: %+.1f%% (paper: %s)\n",
		100*(mean/base[0].AvgDoD-1), paper)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
