// Command bench measures simulator performance — wall-clock cycles per
// second, nanoseconds per committed instruction and heap allocations per
// run — for every evaluated scheme over the memory-bound Table-2 mixes,
// and writes the machine-readable report consumed by CI.
//
//	bench -budget 50000 -seed 1 -out BENCH_results.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		budget = flag.Uint64("budget", 50_000, "instructions per thread per run")
		seed   = flag.Uint64("seed", 1, "workload seed")
		out    = flag.String("out", "BENCH_results.json", "report path")
		naive  = flag.Bool("naive", false, "force the cycle-by-cycle reference engine (for before/after engine comparisons)")
	)
	flag.Parse()

	p := experiments.DefaultBenchParams()
	p.Budget = *budget
	p.Seed = *seed
	p.Naive = *naive

	rep, err := experiments.RunBench(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("%-22s %-7s %12s %14s %12s %10s\n",
		"scheme", "mix", "cycles", "cycles/sec", "ns/instr", "allocs/op")
	for _, r := range rep.Rows {
		fmt.Printf("%-22s %-7s %12d %14.0f %12.1f %10.0f\n",
			r.Scheme, r.Mix, r.Cycles, r.CyclesPerSec, r.NanosPerInstruction, r.AllocsPerOp)
	}
	fmt.Println("wrote", *out)
}
