package tlrob

// The benchmark harness regenerates every figure of the paper's evaluation
// (one benchmark per figure, plus ablations for the design knobs called
// out in DESIGN.md §6). Each b.N iteration performs one full sweep of the
// eleven Table-2 mixes under the figure's configurations and reports the
// headline quantity as a custom metric, e.g.:
//
//	go test -bench=Fig2 -benchmem
//
// reports fairthroughput/op for each configuration and the speedup over
// Baseline_32 — the shape to compare against the paper's bars. Budgets are
// small (simulation is expensive); cmd/experiments runs the bigger sweeps.

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

const benchBudget = 20_000

// sweepFT runs one scheme over all 11 mixes and returns the average fair
// throughput (the paper's "Average" bar).
func sweepFT(b *testing.B, opt Options, singles map[string]float64) float64 {
	b.Helper()
	total := 0.0
	for _, mix := range workload.Mixes {
		res, err := RunMix(mix, opt, singles)
		if err != nil {
			b.Fatal(err)
		}
		total += res.FairThroughput
	}
	return total / float64(len(workload.Mixes))
}

// sweepDoD runs one scheme over all mixes and returns the mean service-time
// dependent count (the quantity of Figures 1/3/7).
func sweepDoD(b *testing.B, opt Options, singles map[string]float64) float64 {
	b.Helper()
	total := 0.0
	for _, mix := range workload.Mixes {
		res, err := RunMix(mix, opt, singles)
		if err != nil {
			b.Fatal(err)
		}
		total += res.DoDMean
	}
	return total / float64(len(workload.Mixes))
}

func benchSingles(b *testing.B) map[string]float64 {
	b.Helper()
	names := map[string]bool{}
	for _, m := range workload.Mixes {
		for _, n := range m.Benchmarks {
			names[n] = true
		}
	}
	var list []string
	for n := range names {
		list = append(list, n)
	}
	singles, err := SingleIPCs(list, Options{Budget: benchBudget})
	if err != nil {
		b.Fatal(err)
	}
	return singles
}

func benchFT(b *testing.B, opts map[string]Options) {
	singles := benchSingles(b)
	for name, opt := range opts {
		opt.Budget = benchBudget
		b.Run(name, func(b *testing.B) {
			var ft float64
			for i := 0; i < b.N; i++ {
				ft = sweepFT(b, opt, singles)
			}
			b.ReportMetric(ft, "fairthroughput")
		})
	}
}

func benchDoD(b *testing.B, opts map[string]Options) {
	singles := benchSingles(b)
	for name, opt := range opts {
		opt.Budget = benchBudget
		b.Run(name, func(b *testing.B) {
			var dod float64
			for i := 0; i < b.N; i++ {
				dod = sweepDoD(b, opt, singles)
			}
			b.ReportMetric(dod, "mean-dependents")
		})
	}
}

// BenchmarkFig1DoDHistogram regenerates Figure 1: the distribution of
// load dependents at miss-service time on the Baseline_32 machine.
func BenchmarkFig1DoDHistogram(b *testing.B) {
	benchDoD(b, map[string]Options{
		"Baseline32": {Scheme: Baseline, L1ROB: 32},
	})
}

// BenchmarkFig2ReactiveROB regenerates Figure 2: Baseline_32 vs
// Baseline_128 vs 2-Level R-ROB16 fair throughput.
func BenchmarkFig2ReactiveROB(b *testing.B) {
	benchFT(b, map[string]Options{
		"Baseline32":  {Scheme: Baseline, L1ROB: 32},
		"Baseline128": {Scheme: Baseline, L1ROB: 128},
		"RROB16":      {Scheme: Reactive, DoDThreshold: 16},
	})
}

// BenchmarkFig3DoDHistogramRROB regenerates Figure 3: dependents observed
// under 2-Level R-ROB16 (the paper reports +56% vs Figure 1).
func BenchmarkFig3DoDHistogramRROB(b *testing.B) {
	benchDoD(b, map[string]Options{
		"RROB16": {Scheme: Reactive, DoDThreshold: 16},
	})
}

// BenchmarkFig4RelaxedRROB regenerates Figure 4: 2-Level Relaxed R-ROB15.
func BenchmarkFig4RelaxedRROB(b *testing.B) {
	benchFT(b, map[string]Options{
		"Baseline32":    {Scheme: Baseline, L1ROB: 32},
		"RelaxedRROB15": {Scheme: RelaxedReactive, DoDThreshold: 15},
	})
}

// BenchmarkFig5CDRROB regenerates Figure 5: 2-Level CDR-ROB15 with the
// 32-cycle counting delay.
func BenchmarkFig5CDRROB(b *testing.B) {
	benchFT(b, map[string]Options{
		"Baseline32": {Scheme: Baseline, L1ROB: 32},
		"CDRROB15":   {Scheme: CountDelayed, DoDThreshold: 15, CountDelay: 32},
	})
}

// BenchmarkFig6PredictiveROB regenerates Figure 6: 2-Level P-ROB3/P-ROB5.
func BenchmarkFig6PredictiveROB(b *testing.B) {
	benchFT(b, map[string]Options{
		"Baseline32": {Scheme: Baseline, L1ROB: 32},
		"PROB3":      {Scheme: Predictive, DoDThreshold: 3},
		"PROB5":      {Scheme: Predictive, DoDThreshold: 5},
	})
}

// BenchmarkFig7DoDHistogramPROB regenerates Figure 7: dependents under the
// predictive scheme (the paper reports +120% vs Figure 1).
func BenchmarkFig7DoDHistogramPROB(b *testing.B) {
	benchDoD(b, map[string]Options{
		"PROB5": {Scheme: Predictive, DoDThreshold: 5},
	})
}

// ---- ablations (DESIGN.md §6) ----

// BenchmarkAblationDoDThreshold sweeps the reactive DoD threshold — the
// paper's §5.2 observation that overly large thresholds permit IQ clog.
func BenchmarkAblationDoDThreshold(b *testing.B) {
	opts := map[string]Options{}
	for _, th := range []int{2, 4, 8, 16, 31} {
		opts[fmt.Sprintf("RROB%d", th)] = Options{Scheme: Reactive, DoDThreshold: th}
	}
	benchFT(b, opts)
}

// BenchmarkAblationSecondLevelSize sweeps the shared second-level size.
func BenchmarkAblationSecondLevelSize(b *testing.B) {
	opts := map[string]Options{}
	for _, size := range []int{96, 192, 384, 768} {
		opts[fmt.Sprintf("L2ROB%d", size)] = Options{Scheme: Reactive, DoDThreshold: 16, L2ROB: size}
	}
	benchFT(b, opts)
}

// BenchmarkAblationCountDelay sweeps the CDR snapshot delay (§4.1's
// counting-accuracy vs exploitation-window trade-off).
func BenchmarkAblationCountDelay(b *testing.B) {
	opts := map[string]Options{}
	for _, d := range []int{8, 16, 32, 64} {
		opts[fmt.Sprintf("CDR-delay%d", d)] = Options{Scheme: CountDelayed, DoDThreshold: 15, CountDelay: d}
	}
	benchFT(b, opts)
}

// BenchmarkAblationPredictorIndexing compares PC-indexed vs path-hashed
// DoD prediction (§4.2's gshare-style variant).
func BenchmarkAblationPredictorIndexing(b *testing.B) {
	benchFT(b, map[string]Options{
		"PROB5-pc":   {Scheme: Predictive, DoDThreshold: 5},
		"PROB5-path": {Scheme: Predictive, DoDThreshold: 5, PredPathHash: true},
	})
}

// BenchmarkAblationMSHRs sweeps the outstanding-miss limit, bounding the
// MLP the second-level window can realize.
func BenchmarkAblationMSHRs(b *testing.B) {
	opts := map[string]Options{}
	for _, n := range []int{4, 16, 64} {
		opts[fmt.Sprintf("MSHR%d", n)] = Options{Scheme: Reactive, DoDThreshold: 16, MSHRs: n}
	}
	benchFT(b, opts)
}

// BenchmarkAblationFetchPolicy crosses the baseline with the four fetch
// policies the related-work section discusses.
func BenchmarkAblationFetchPolicy(b *testing.B) {
	benchFT(b, map[string]Options{
		"DCRA":   {Policy: DCRA},
		"ICOUNT": {Policy: ICOUNT},
		"STALL":  {Policy: STALL},
		"FLUSH":  {Policy: FLUSH},
		"MLP":    {Policy: MLP},
	})
}

// BenchmarkSimulatorSpeed measures raw simulation throughput (simulated
// instructions per wall second) on one memory-bound mix.
// BenchmarkMixSweep measures raw simulator performance per scheme over
// the memory-bound mixes (Mixes 1-4, the paper's target workloads): wall
// time, simulated cycles per second, nanoseconds per committed
// instruction and steady-state allocations. This is the benchmark behind
// BENCH_results.json (cmd/bench emits the same sweep as JSON):
//
//	go test -bench MixSweep -benchmem
func BenchmarkMixSweep(b *testing.B) {
	singles := benchSingles(b)
	schemes := map[string]Options{
		"Baseline32": {Scheme: Baseline, L1ROB: 32},
		"RROB16":     {Scheme: Reactive, DoDThreshold: 16},
		"CDRROB15":   {Scheme: CountDelayed, DoDThreshold: 15, CountDelay: 32},
		"PROB5":      {Scheme: Predictive, DoDThreshold: 5},
	}
	for name, opt := range schemes {
		opt.Budget = benchBudget
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			var committed uint64
			for i := 0; i < b.N; i++ {
				cycles, committed = 0, 0
				for _, mix := range workload.Mixes[:4] {
					res, err := RunMix(mix, opt, singles)
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.Cycles
					for _, th := range res.Threads {
						committed += th.Committed
					}
				}
			}
			wallPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if wallPerOp > 0 {
				b.ReportMetric(float64(cycles)*1e9/wallPerOp, "cycles/sec")
				b.ReportMetric(wallPerOp/float64(committed), "ns/instr")
			}
		})
	}
}

func BenchmarkSimulatorSpeed(b *testing.B) {
	mix, _ := MixByName("Mix 1")
	singles := benchSingles(b)
	opt := Options{Budget: benchBudget}
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		res, err := RunMix(mix, opt, singles)
		if err != nil {
			b.Fatal(err)
		}
		committed = 0
		for _, th := range res.Threads {
			committed += th.Committed
		}
	}
	b.ReportMetric(float64(committed), "instructions")
}

// BenchmarkAblationSharedVsPrivate reproduces the related-work comparison
// of Raasch & Reinhardt [9]: a fully shared single-level ROB against the
// statically partitioned private baseline at equal total entries. Sharing
// lets memory-bound threads monopolize the pool — the monopolization the
// paper's one-at-a-time second level is designed to avoid.
func BenchmarkAblationSharedVsPrivate(b *testing.B) {
	benchFT(b, map[string]Options{
		"Private32x4": {Scheme: Baseline, L1ROB: 32},
		"Shared128":   {Scheme: SharedSingle, L1ROB: 32},
		"Private64x4": {Scheme: Baseline, L1ROB: 64},
		"Shared256":   {Scheme: SharedSingle, L1ROB: 64},
	})
}

// BenchmarkAblationEarlyRegRelease measures the paper's named synergy
// [24]: conservative early register deallocation under the reactive
// two-level scheme, which relieves the rename-pool pressure that
// otherwise bounds the extended window.
func BenchmarkAblationEarlyRegRelease(b *testing.B) {
	benchFT(b, map[string]Options{
		"RROB16":       {Scheme: Reactive, DoDThreshold: 16},
		"RROB16-early": {Scheme: Reactive, DoDThreshold: 16, EarlyRegRelease: true},
	})
}

// BenchmarkTelemetryOverhead prices the instrumentation layer: the same
// R-ROB16 run of Mix 1 with telemetry off (the default everyone pays)
// and on. The off side must match the seed's allocation profile —
// telemetry disabled is one nil check per cycle — and the on side
// bounds the cost of full stall attribution plus occupancy sampling.
func BenchmarkTelemetryOverhead(b *testing.B) {
	singles := benchSingles(b)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := Options{Scheme: Reactive, DoDThreshold: 16, Budget: benchBudget, Telemetry: mode.on}
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := RunMix(workload.Mixes[0], opt, singles)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}
