package tlrob

// Calibration tests: the synthetic workloads must realize the properties
// the reproduction argument rests on (DESIGN.md §2) — the three ILP
// classes must separate on single-threaded IPC, the memory-bound class
// must actually miss in the L2, and the execution-bound class must not.

import (
	"testing"

	"repro/internal/workload"
)

const calBudget = 25_000

func classIPCs(t *testing.T) map[workload.ILPClass][]float64 {
	t.Helper()
	out := map[workload.ILPClass][]float64{}
	for _, name := range workload.Names() {
		p, _ := workload.ProfileFor(name)
		res, err := RunSingle(name, Options{Budget: calBudget})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[p.Class] = append(out[p.Class], res.IPC)
	}
	return out
}

func TestClassIPCSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	ipcs := classIPCs(t)
	maxOf := func(c workload.ILPClass) float64 {
		m := 0.0
		for _, v := range ipcs[c] {
			if v > m {
				m = v
			}
		}
		return m
	}
	minOf := func(c workload.ILPClass) float64 {
		m := 1e9
		for _, v := range ipcs[c] {
			if v < m {
				m = v
			}
		}
		return m
	}
	// Every low-ILP benchmark must be slower than every high-ILP one, by a
	// wide margin; mid sits between the class extremes.
	if maxOf(workload.LowILP) >= minOf(workload.HighILP)/3 {
		t.Fatalf("low (max %.3f) and high (min %.3f) classes overlap",
			maxOf(workload.LowILP), minOf(workload.HighILP))
	}
	if maxOf(workload.LowILP) >= minOf(workload.MidILP) {
		t.Fatalf("low (max %.3f) and mid (min %.3f) classes overlap",
			maxOf(workload.LowILP), minOf(workload.MidILP))
	}
	if minOf(workload.HighILP) <= 0.5 {
		t.Fatalf("high-ILP class too slow: min %.3f", minOf(workload.HighILP))
	}
	if maxOf(workload.LowILP) >= 0.25 {
		t.Fatalf("low-ILP class too fast: max %.3f", maxOf(workload.LowILP))
	}
}

func TestMemoryBoundClassesMissInL2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	for _, name := range workload.Names() {
		p, _ := workload.ProfileFor(name)
		res, err := RunSingle(name, Options{Budget: calBudget})
		if err != nil {
			t.Fatal(err)
		}
		misses := res.Raw.LoadL2Miss[0]
		mpki := 1000 * float64(misses) / float64(res.Raw.Committed[0])
		switch p.Class {
		case workload.LowILP:
			if mpki < 5 {
				t.Errorf("%s: memory-bound benchmark has only %.1f L2 MPKI", name, mpki)
			}
		case workload.HighILP:
			if mpki > 3 {
				t.Errorf("%s: execution-bound benchmark has %.1f L2 MPKI", name, mpki)
			}
		}
	}
}

func TestDoDDistributionSupportsThreshold16(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	// Figure 1's premise: on memory-bound mixes, the majority of misses
	// have fewer than 16 unexecuted younger instructions at service time.
	mix, _ := MixByName("Mix 1")
	res, err := RunMix(mix, Options{Budget: 50_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Raw.DoDHist
	if h.Total() < 1000 {
		t.Fatalf("too few DoD observations: %d", h.Total())
	}
	below := uint64(0)
	for v := 0; v < 16 && v < len(h.Counts); v++ {
		below += h.Counts[v]
	}
	frac := float64(below) / float64(h.Total())
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of misses below threshold 16 (paper: majority)", 100*frac)
	}
	if frac > 0.98 {
		t.Fatalf("threshold 16 admits %.0f%% — distribution degenerate", 100*frac)
	}
}
