// Package tlrob is the public API of the two-level reorder buffer
// reproduction (Loew & Ponomarev, "Two-Level Reorder Buffers: Accelerating
// Memory-Bound Applications on SMT Architectures", ICPP 2008).
//
// It wraps the cycle-level SMT simulator in internal/pipeline and the
// synthetic SPEC-2000-like workloads in internal/workload behind a small
// surface: build an Options value, then call RunMix (a Table-2 four-thread
// workload), RunBenchmarks (any benchmark combination) or RunSingle (one
// thread alone, the denominator for weighted IPC). Results carry
// per-thread IPCs, the paper's Fair Throughput metric, and the
// Degree-of-Dependence histogram behind Figures 1, 3 and 7.
//
// A minimal comparison of the paper's headline configurations:
//
//	base := tlrob.Options{Scheme: tlrob.Baseline, L1ROB: 32}
//	rrob := tlrob.Options{Scheme: tlrob.Reactive, L1ROB: 32, L2ROB: 384, DoDThreshold: 16}
//	mix, _ := tlrob.MixByName("Mix 1")
//	a, _ := tlrob.RunMix(mix, base)
//	b, _ := tlrob.RunMix(mix, rrob)
//	fmt.Printf("FT %.3f -> %.3f\n", a.FairThroughput, b.FairThroughput)
package tlrob

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/rob"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scheme selects the second-level ROB allocation scheme.
type Scheme = rob.Scheme

// Re-exported allocation schemes (§4, §5).
const (
	Baseline        = rob.Baseline
	Reactive        = rob.Reactive
	RelaxedReactive = rob.RelaxedReactive
	CountDelayed    = rob.CountDelayedReactive
	Predictive      = rob.Predictive
	SharedSingle    = rob.SharedSingle
)

// PolicyKind selects the fetch/resource-allocation policy.
type PolicyKind = policy.Kind

// Re-exported policies.
const (
	ICOUNT = policy.ICOUNT
	DCRA   = policy.DCRA
	STALL  = policy.STALL
	FLUSH  = policy.FLUSH
	MLP    = policy.MLP
)

// Options selects a machine configuration. The zero value is completed by
// fillDefaults to the paper's Baseline_32 DCRA machine.
type Options struct {
	Scheme       Scheme
	DoDThreshold int // reactive: 16; relaxed/CDR: 15; predictive: 3 or 5
	L1ROB        int // per-thread first level (default 32)
	L2ROB        int // shared second level (default 384 for 2-level schemes)
	Policy       PolicyKind
	Seed         uint64
	Budget       uint64 // per-thread instruction budget (default 200k)

	// CountDelay overrides the CDR snapshot delay (default 32 cycles).
	CountDelay int
	// RecheckInterval overrides the reactive recheck period (default 10).
	RecheckInterval int
	// PredEntries overrides the DoD predictor table size (default 4096).
	PredEntries int
	// PredPathHash enables gshare-style path-hashed DoD prediction.
	PredPathHash bool
	// TrackExactDoD additionally computes the exact dataflow DoD per miss
	// to quantify the approximation error.
	TrackExactDoD bool
	// EarlyRegRelease enables the early register deallocation of [24],
	// the synergy the paper names in its introduction.
	EarlyRegRelease bool
	// MSHRs overrides the outstanding-miss limit (default 64).
	MSHRs int
	// Threads overrides the thread count for RunBenchmarks (RunMix always
	// uses 4; RunSingle always 1).
	Threads int

	// NaiveTicker forces the cycle-by-cycle reference engine instead of
	// the skip-ahead scheduler. Results are bit-identical either way
	// (the differential harness enforces it); the naive engine exists
	// as the reference for that harness and for engine-overhead
	// benchmarking.
	NaiveTicker bool

	// Telemetry enables the internal/telemetry instrumentation layer:
	// cycle-level stall attribution, sampled occupancy traces and
	// second-level grant intervals. Results then carry a Summary (and
	// the Raw result the full Collector, for Chrome-trace export).
	// Disabled by default: the per-cycle overhead is then one nil check.
	Telemetry bool
	// TelemetrySampleInterval overrides the occupancy sample period in
	// cycles (default 64; only meaningful with Telemetry set).
	TelemetrySampleInterval int
}

func (o Options) filled(threads int) Options {
	if o.L1ROB == 0 {
		o.L1ROB = 32
	}
	twoLevel := o.Scheme != Baseline && o.Scheme != SharedSingle
	if twoLevel && o.L2ROB == 0 {
		o.L2ROB = 384
	}
	if twoLevel && o.DoDThreshold == 0 {
		o.DoDThreshold = 16
	}
	if o.Budget == 0 {
		o.Budget = 200_000
	}
	if o.CountDelay == 0 {
		o.CountDelay = 32
	}
	if o.RecheckInterval == 0 {
		o.RecheckInterval = 10
	}
	if o.PredEntries == 0 {
		o.PredEntries = 4096
	}
	o.Threads = threads
	return o
}

// machineConfig assembles the pipeline configuration for the options.
func (o Options) machineConfig() pipeline.Config {
	robCfg := rob.Config{
		Threads:         o.Threads,
		L1Size:          o.L1ROB,
		L2Size:          o.L2ROB,
		Scheme:          o.Scheme,
		DoDThreshold:    o.DoDThreshold,
		RecheckInterval: o.RecheckInterval,
		CountDelay:      o.CountDelay,
		PredEntries:     o.PredEntries,
		PredPathHash:    o.PredPathHash,
		PredHistBits:    8,
	}
	cfg := pipeline.DefaultConfig(o.Threads, robCfg)
	cfg.PolicyKind = o.Policy
	cfg.TrackExactDoD = o.TrackExactDoD
	cfg.EarlyRegRelease = o.EarlyRegRelease
	cfg.NaiveTicker = o.NaiveTicker
	if o.MSHRs != 0 {
		cfg.Hier.MSHRs = o.MSHRs
	}
	if o.Telemetry {
		cfg.Telemetry = &telemetry.Config{
			SampleInterval: int64(o.TelemetrySampleInterval),
		}
	}
	return cfg
}

// RawResult exposes the full per-substrate statistics of a run.
type RawResult = pipeline.Result

// ThreadResult reports one thread of a multithreaded run.
type ThreadResult struct {
	Benchmark   string
	Committed   uint64
	IPC         float64
	WeightedIPC float64 // IPC divided by the single-threaded IPC
}

// MixResult reports a multithreaded run.
type MixResult struct {
	Mix            string
	Scheme         string
	Cycles         int64
	Threads        []ThreadResult
	Throughput     float64 // summed IPC
	FairThroughput float64 // harmonic mean of weighted IPCs (FT, [7])
	DoDMean        float64
	// Telemetry is the run's stall-attribution and occupancy digest;
	// nil unless Options.Telemetry was set. The full collector (for
	// Chrome-trace export) is at Raw.Telemetry.
	Telemetry *telemetry.Summary
	Raw       pipeline.Result
}

// SingleResult reports a single-threaded run.
type SingleResult struct {
	Benchmark string
	Cycles    int64
	IPC       float64
	Raw       pipeline.Result
}

// MixByName returns one of the paper's Table-2 mixes.
func MixByName(name string) (workload.Mix, error) {
	m, ok := workload.MixByName(name)
	if !ok {
		return workload.Mix{}, fmt.Errorf("tlrob: unknown mix %q", name)
	}
	return m, nil
}

// Mixes returns all Table-2 mixes.
func Mixes() []workload.Mix { return workload.Mixes }

// Benchmarks returns the names of all synthetic SPEC-2000 profiles.
func Benchmarks() []string { return workload.Names() }

// RunSingle simulates one benchmark alone on the reference machine — the
// Baseline configuration with a 32-entry single-level ROB — and returns
// its IPC, the weighted-IPC denominator. The reference machine is fixed
// regardless of opt's scheme and ROB sizes so that fair-throughput values
// are comparable across configurations; only the budget, seed and policy
// carry over.
func RunSingle(bench string, opt Options) (SingleResult, error) {
	prof, ok := workload.ProfileFor(bench)
	if !ok {
		return SingleResult{}, fmt.Errorf("tlrob: unknown benchmark %q", bench)
	}
	opt.Scheme = Baseline
	opt.L1ROB = 32
	opt.L2ROB = 0
	opt.DoDThreshold = 0
	o := opt.filled(1)
	gen, err := workload.NewGenerator(prof, o.Seed*16+1)
	if err != nil {
		return SingleResult{}, err
	}
	cpu, err := pipeline.New(o.machineConfig(), []pipeline.TraceSource{gen})
	if err != nil {
		return SingleResult{}, err
	}
	res, err := cpu.Run(o.Budget)
	if err != nil {
		return SingleResult{}, err
	}
	return SingleResult{Benchmark: bench, Cycles: res.Cycles, IPC: res.IPC[0], Raw: res}, nil
}

// SingleIPCs runs each named benchmark alone and returns its IPC, caching
// nothing — callers (the experiment harness) memoize as needed.
func SingleIPCs(benchmarks []string, opt Options) (map[string]float64, error) {
	out := make(map[string]float64, len(benchmarks))
	for _, b := range benchmarks {
		if _, done := out[b]; done {
			continue
		}
		r, err := RunSingle(b, opt)
		if err != nil {
			return nil, err
		}
		out[b] = r.IPC
	}
	return out, nil
}

// RunBenchmarks simulates an arbitrary multithreaded combination.
// singleIPC supplies weighted-IPC denominators; pass nil to have them
// computed on the fly (slower: one extra run per distinct benchmark).
func RunBenchmarks(name string, benches []string, opt Options, singleIPC map[string]float64) (MixResult, error) {
	if len(benches) == 0 {
		return MixResult{}, fmt.Errorf("tlrob: no benchmarks given")
	}
	o := opt.filled(len(benches))
	if singleIPC == nil {
		var err error
		if singleIPC, err = SingleIPCs(benches, opt); err != nil {
			return MixResult{}, err
		}
	}
	sources := make([]pipeline.TraceSource, len(benches))
	for i, b := range benches {
		prof, ok := workload.ProfileFor(b)
		if !ok {
			return MixResult{}, fmt.Errorf("tlrob: unknown benchmark %q", b)
		}
		gen, err := workload.NewGenerator(prof, o.Seed*16+uint64(i)+1)
		if err != nil {
			return MixResult{}, err
		}
		sources[i] = gen
	}
	cpu, err := pipeline.New(o.machineConfig(), sources)
	if err != nil {
		return MixResult{}, err
	}
	res, err := cpu.Run(o.Budget)
	if err != nil {
		return MixResult{}, err
	}

	mr := MixResult{
		Mix:       name,
		Scheme:    o.Scheme.String(),
		Cycles:    res.Cycles,
		DoDMean:   res.DoDHist.Mean(),
		Telemetry: telemetrySummary(res),
		Raw:       res,
	}
	weighted := make([]float64, len(benches))
	for i, b := range benches {
		w := metrics.WeightedIPC(res.IPC[i], singleIPC[b])
		weighted[i] = w
		mr.Throughput += res.IPC[i]
		mr.Threads = append(mr.Threads, ThreadResult{
			Benchmark:   b,
			Committed:   res.Committed[i],
			IPC:         res.IPC[i],
			WeightedIPC: w,
		})
	}
	mr.FairThroughput = metrics.FairThroughput(weighted)
	return mr, nil
}

// RunTraceFiles simulates recorded binary traces (see internal/trace),
// one file per hardware thread. Weighted IPCs are not computed (no
// single-thread reference is implied by a raw trace); FairThroughput is
// therefore zero and callers should use the per-thread IPCs directly.
func RunTraceFiles(paths []string, opt Options) (MixResult, error) {
	if len(paths) == 0 {
		return MixResult{}, fmt.Errorf("tlrob: no trace files given")
	}
	o := opt.filled(len(paths))
	sources := make([]pipeline.TraceSource, len(paths))
	labels := make([]string, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return MixResult{}, err
		}
		rd, err := trace.NewReader(f)
		f.Close()
		if err != nil {
			return MixResult{}, fmt.Errorf("tlrob: %s: %w", p, err)
		}
		sources[i] = rd
		labels[i] = filepath.Base(p)
	}
	cpu, err := pipeline.New(o.machineConfig(), sources)
	if err != nil {
		return MixResult{}, err
	}
	res, err := cpu.Run(o.Budget)
	if err != nil {
		return MixResult{}, err
	}
	mr := MixResult{
		Mix:       "traces",
		Scheme:    o.Scheme.String(),
		Cycles:    res.Cycles,
		DoDMean:   res.DoDHist.Mean(),
		Telemetry: telemetrySummary(res),
		Raw:       res,
	}
	for i := range paths {
		mr.Throughput += res.IPC[i]
		mr.Threads = append(mr.Threads, ThreadResult{
			Benchmark: labels[i],
			Committed: res.Committed[i],
			IPC:       res.IPC[i],
		})
	}
	return mr, nil
}

// telemetrySummary digests a run's collector, or nil when telemetry was
// disabled.
func telemetrySummary(res pipeline.Result) *telemetry.Summary {
	if res.Telemetry == nil {
		return nil
	}
	return res.Telemetry.Summary()
}

// RunMix simulates one of the paper's Table-2 mixes.
func RunMix(mix workload.Mix, opt Options, singleIPC map[string]float64) (MixResult, error) {
	return RunBenchmarks(mix.Name, mix.Benchmarks[:], opt, singleIPC)
}
