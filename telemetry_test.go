package tlrob

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// fakeSingles supplies unit reference IPCs: fair throughput is not under
// test here and this avoids four extra single-threaded runs per case.
func fakeSingles(mix workload.Mix) map[string]float64 {
	out := make(map[string]float64, len(mix.Benchmarks))
	for _, b := range mix.Benchmarks {
		out[b] = 1
	}
	return out
}

// TestTelemetryInvariantAcrossSchemes checks the stall-accounting
// identity — every thread's active + charged stall cycles equal the
// run's total cycles — on a low-IPC and a high-IPC mix under the four
// headline machines.
func TestTelemetryInvariantAcrossSchemes(t *testing.T) {
	schemes := []struct {
		name string
		opt  Options
	}{
		{"Baseline_32", Options{Scheme: Baseline, L1ROB: 32}},
		{"Baseline_128", Options{Scheme: Baseline, L1ROB: 128}},
		{"R-ROB16", Options{Scheme: Reactive, DoDThreshold: 16}},
		{"P-ROB5", Options{Scheme: Predictive, DoDThreshold: 5}},
	}
	mixes := []workload.Mix{workload.Mixes[0], workload.Mixes[9]} // 4 Low, 4 High
	for _, sc := range schemes {
		for _, mix := range mixes {
			t.Run(sc.name+"/"+mix.Name, func(t *testing.T) {
				opt := sc.opt
				opt.Budget = 10_000
				opt.Seed = 1
				opt.Telemetry = true
				res, err := RunMix(mix, opt, fakeSingles(mix))
				if err != nil {
					t.Fatal(err)
				}
				sum := res.Telemetry
				if sum == nil {
					t.Fatal("Options.Telemetry set but MixResult.Telemetry is nil")
				}
				if sum.Cycles != res.Cycles {
					t.Fatalf("telemetry saw %d cycles, run took %d", sum.Cycles, res.Cycles)
				}
				if err := sum.CheckInvariant(); err != nil {
					t.Fatal(err)
				}
				stalls, active := sum.StallTotals()
				var total uint64
				for _, v := range stalls {
					total += v
				}
				if want := uint64(res.Cycles) * uint64(len(mix.Benchmarks)); total+active != want {
					t.Fatalf("stall %d + active %d thread-cycles, want %d", total, active, want)
				}
				if res.Raw.Telemetry == nil {
					t.Fatal("raw result lost the collector")
				}
			})
		}
	}
}

// TestTelemetryGrantsObserved: on a memory-bound mix the reactive scheme
// must record second-level tenancies, and they must nest inside the run.
func TestTelemetryGrantsObserved(t *testing.T) {
	opt := Options{Scheme: Reactive, DoDThreshold: 16, Budget: 20_000, Seed: 1, Telemetry: true}
	mix := workload.Mixes[0]
	res, err := RunMix(mix, opt, fakeSingles(mix))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry.Grants.Count == 0 {
		t.Fatal("reactive scheme on a low-IPC mix recorded no second-level grants")
	}
	res.Raw.Telemetry.Grants(func(g telemetry.GrantInterval) {
		if g.Start < 0 || g.End < g.Start || g.End > res.Cycles {
			t.Fatalf("grant %+v outside run of %d cycles", g, res.Cycles)
		}
		if g.Misses < 1 {
			t.Fatalf("grant %+v with no misses", g)
		}
	})
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	mix := workload.Mixes[0]
	res, err := RunMix(mix, Options{Scheme: Reactive, Budget: 5_000, Seed: 1}, fakeSingles(mix))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil || res.Raw.Telemetry != nil {
		t.Fatal("telemetry attached without Options.Telemetry")
	}
}

// TestChromeTraceExportEndToEnd runs an instrumented mix and validates
// the exported trace is well-formed JSON whose counter timestamps are
// monotonically non-decreasing per track (pid, tid, counter name) —
// the structural contract Perfetto requires.
func TestChromeTraceExportEndToEnd(t *testing.T) {
	opt := Options{Scheme: Reactive, DoDThreshold: 16, Budget: 20_000, Seed: 1,
		Telemetry: true, TelemetrySampleInterval: 16}
	mix := workload.Mixes[0]
	res, err := RunMix(mix, opt, fakeSingles(mix))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Raw.Telemetry.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	type track struct {
		pid, tid int
		name     string
	}
	last := map[track]int64{}
	var counters, slices int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "C" && ev.Ph != "X" {
			continue
		}
		k := track{ev.Pid, ev.Tid, ev.Name}
		if ev.Ph == "X" {
			k.name = "grants" // all tenancy slices share one track
			slices++
			if ev.Dur < 1 {
				t.Fatalf("grant slice with dur %d", ev.Dur)
			}
		} else {
			counters++
		}
		if prev, ok := last[k]; ok && ev.Ts < prev {
			t.Fatalf("track %+v: ts %d after %d", k, ev.Ts, prev)
		}
		last[k] = ev.Ts
	}
	if counters == 0 || slices == 0 {
		t.Fatalf("trace has %d counters and %d grant slices; want both > 0", counters, slices)
	}
}

// TestTelemetrySimulationLoopAllocations proves the enabled hot path is
// allocation-free: with the collector preallocated at construction, an
// instrumented Run heap-allocates no more than an identical
// uninstrumented one. Telemetry on and off simulate bit-identical
// machines, so any extra mallocs would come from the per-cycle
// telemetry path.
func TestTelemetrySimulationLoopAllocations(t *testing.T) {
	build := func(on bool) *pipeline.CPU {
		o := Options{Scheme: Reactive, DoDThreshold: 16, Seed: 1, Telemetry: on}.filled(4)
		mix := workload.Mixes[0]
		srcs := make([]pipeline.TraceSource, len(mix.Benchmarks))
		for i, b := range mix.Benchmarks {
			prof, ok := workload.ProfileFor(b)
			if !ok {
				t.Fatalf("unknown benchmark %q", b)
			}
			gen, err := workload.NewGenerator(prof, o.Seed*16+uint64(i)+1)
			if err != nil {
				t.Fatal(err)
			}
			srcs[i] = gen
		}
		cpu, err := pipeline.New(o.machineConfig(), srcs)
		if err != nil {
			t.Fatal(err)
		}
		return cpu
	}
	mallocsDuring := func(f func()) uint64 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		f()
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	const budget = 8_000
	run := func(on bool) uint64 {
		cpu := build(on) // collector preallocation happens here, unmeasured
		return mallocsDuring(func() {
			if _, err := cpu.Run(budget); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := run(false)
	on := run(true)
	// Identical simulations: allow a little runtime background noise but
	// nothing that could hide a per-cycle (tens of thousands) allocation.
	const slack = 16
	if on > off+slack {
		t.Fatalf("instrumented run allocated %d objects, uninstrumented %d (+%d > %d slack)",
			on, off, on-off, slack)
	}
}
