// Memory-bound acceleration: the paper's motivating scenario.
//
// A single memory-bound thread (art: streaming, frequent L2 misses, small
// degree of dependence) is first shown alone under growing ROB sizes —
// demonstrating how much memory-level parallelism a larger window unlocks —
// and then inside a 4-thread mix, comparing how the 2-level ROB delivers
// that window without taking it from the co-runners, whereas giving
// everyone a 128-entry ROB (Baseline_128) collapses the fair throughput.
//
//	go run ./examples/memorybound
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	budget := uint64(100_000)

	fmt.Println("art alone: window size vs IPC (MLP exploitation)")
	soloRef, err := tlrob.RunSingle("art", tlrob.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	for _, rob := range []int{32, 64, 128, 256, 416} {
		res, err := tlrob.RunBenchmarks("art", []string{"art"},
			tlrob.Options{Scheme: tlrob.Baseline, L1ROB: rob, Budget: budget},
			map[string]float64{"art": soloRef.IPC})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ROB %3d: IPC %.4f (%.2fx the 32-entry window)\n",
			rob, res.Threads[0].IPC, res.Threads[0].IPC/soloRef.IPC)
	}

	mix, _ := tlrob.MixByName("Mix 2") // art, mgrid, apsi + parser
	singles, err := tlrob.SingleIPCs(mix.Benchmarks[:], tlrob.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		opt  tlrob.Options
	}{
		{"Baseline_32", tlrob.Options{Scheme: tlrob.Baseline, L1ROB: 32}},
		{"Baseline_128", tlrob.Options{Scheme: tlrob.Baseline, L1ROB: 128}},
		{"2-Level R-ROB16", tlrob.Options{Scheme: tlrob.Reactive, DoDThreshold: 16}},
	}

	fmt.Printf("\n%s in a 4-thread mix (%s):\n", mix.Name, mix.Classification)
	fmt.Printf("%-16s", "config")
	for _, b := range mix.Benchmarks {
		fmt.Printf(" %9s", b)
	}
	fmt.Printf(" %8s\n", "FT")
	for _, c := range configs {
		c.opt.Budget = budget
		res, err := tlrob.RunMix(mix, c.opt, singles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", c.name)
		for _, th := range res.Threads {
			fmt.Printf(" %9.4f", th.WeightedIPC)
		}
		fmt.Printf(" %8.4f\n", res.FairThroughput)
	}
	fmt.Println("\ncolumns are weighted IPCs: the 2-level ROB accelerates the")
	fmt.Println("memory-bound threads without collapsing the co-runners, while")
	fmt.Println("Baseline_128's across-the-board windows clog the shared IQ.")
}
