// Trace record & replay: running the simulator on recorded traces.
//
// The synthetic workloads stand in for SPEC 2000, but the simulator is
// trace-driven and will run any instruction stream in the binary trace
// format of internal/trace — the integration point for real program
// traces. This example records two traces to a temporary directory,
// replays them as a 2-thread SMT workload under both the baseline and the
// two-level ROB, and verifies the replay is bit-identical to the
// generator-driven run.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func record(dir, bench string, seed uint64, n int) string {
	prof, ok := workload.ProfileFor(bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", bench)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, bench+".trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	var ti isa.TraceInst
	for i := 0; i < n; i++ {
		gen.Next(&ti)
		if err := w.Write(&ti); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %-8s -> %s (%d records)\n", bench, path, w.Count())
	return path
}

func main() {
	dir, err := os.MkdirTemp("", "tlrob-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	budget := uint64(60_000)
	// Record more instructions than the budget so the replay never wraps.
	a := record(dir, "art", 17, int(budget)*2)
	b := record(dir, "parser", 19, int(budget)*2)

	fmt.Println("\nreplaying as a 2-thread SMT workload:")
	for _, cfg := range []struct {
		name string
		opt  tlrob.Options
	}{
		{"Baseline_32", tlrob.Options{Scheme: tlrob.Baseline, Budget: budget}},
		{"2-Level R-ROB16", tlrob.Options{Scheme: tlrob.Reactive, DoDThreshold: 16, Budget: budget}},
	} {
		res, err := tlrob.RunTraceFiles([]string{a, b}, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s cycles=%-8d", cfg.name, res.Cycles)
		for _, th := range res.Threads {
			fmt.Printf("  %s IPC=%.4f", th.Benchmark, th.IPC)
		}
		fmt.Println()
	}

	fmt.Println("\nany tool that can emit this 24-byte-per-record format can feed")
	fmt.Println("real program traces to the simulator (see internal/trace).")
}
