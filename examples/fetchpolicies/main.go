// Fetch-policy comparison: ICOUNT vs STALL vs FLUSH vs DCRA.
//
// Reproduces the related-work landscape (§2): the long-latency-load
// handling policies the two-level ROB is built on top of, on one mixed
// workload. DCRA is the paper's baseline; STALL and FLUSH gate or squash
// threads with outstanding L2 misses.
//
//	go run ./examples/fetchpolicies
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	budget := uint64(100_000)
	mix, err := tlrob.MixByName("Mix 5")
	if err != nil {
		log.Fatal(err)
	}
	singles, err := tlrob.SingleIPCs(mix.Benchmarks[:], tlrob.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s)\n\n", mix.Name, mix.Classification)
	fmt.Printf("%-8s %12s %10s %10s %12s\n",
		"policy", "throughput", "FT", "flushes", "wrong-path")
	for _, pol := range []tlrob.PolicyKind{tlrob.ICOUNT, tlrob.STALL, tlrob.FLUSH, tlrob.MLP, tlrob.DCRA} {
		res, err := tlrob.RunMix(mix, tlrob.Options{Policy: pol, Budget: budget}, singles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %12.4f %10.4f %10d %12d\n",
			pol, res.Throughput, res.FairThroughput,
			res.Raw.FlushSquashes, res.Raw.WrongPathDispatched)
	}

	fmt.Println("\nand the 2-level ROB on top of the DCRA baseline:")
	res, err := tlrob.RunMix(mix,
		tlrob.Options{Policy: tlrob.DCRA, Scheme: tlrob.Reactive, DoDThreshold: 16, Budget: budget},
		singles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %12.4f %10.4f   (grants: %d, denied by DoD: %d)\n",
		"R-ROB16", res.Throughput, res.FairThroughput,
		res.Raw.ROBStats.Allocations, res.Raw.ROBStats.DeniedDoD)
}
