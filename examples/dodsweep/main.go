// DoD-threshold sweep: the paper's most interesting second-order finding.
//
// §5 reports that the reactive scheme works best with a HIGH DoD threshold
// (16) while the predictive scheme prefers a LOW one (3–5): reactive
// allocations happen late (the shadow is already drained, counts are
// accurate), predictive allocations happen at detection time where an
// aggressive threshold admits too many high-dependence shadows. This
// example sweeps the threshold for both schemes over one memory-bound mix.
//
//	go run ./examples/dodsweep
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	budget := uint64(100_000)
	mix, err := tlrob.MixByName("Mix 1")
	if err != nil {
		log.Fatal(err)
	}
	singles, err := tlrob.SingleIPCs(mix.Benchmarks[:], tlrob.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	base, err := tlrob.RunMix(mix, tlrob.Options{Budget: budget}, singles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, Baseline_32 FT = %.4f\n\n", mix.Name, base.FairThroughput)
	fmt.Printf("%-10s %16s %16s\n", "threshold", "R-ROB FT", "P-ROB FT")

	for _, th := range []int{1, 2, 3, 5, 8, 12, 16, 24, 31} {
		r, err := tlrob.RunMix(mix,
			tlrob.Options{Scheme: tlrob.Reactive, DoDThreshold: th, Budget: budget}, singles)
		if err != nil {
			log.Fatal(err)
		}
		p, err := tlrob.RunMix(mix,
			tlrob.Options{Scheme: tlrob.Predictive, DoDThreshold: th, Budget: budget}, singles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %9.4f (%+5.1f%%) %9.4f (%+5.1f%%)\n", th,
			r.FairThroughput, 100*(r.FairThroughput/base.FairThroughput-1),
			p.FairThroughput, 100*(p.FairThroughput/base.FairThroughput-1))
	}
	fmt.Println("\npaper: R-ROB peaks at threshold 16, P-ROB at 3-5 (Figures 2 and 6)")
}
