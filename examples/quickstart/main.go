// Quickstart: run the paper's headline comparison on one workload.
//
// Simulates Table 2's Mix 1 (four memory-bound SPEC-2000-like threads) on
// the Baseline_32 machine and on the 2-Level R-ROB16 machine, and prints
// the per-thread weighted IPCs and the fair-throughput improvement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	mix, err := tlrob.MixByName("Mix 1")
	if err != nil {
		log.Fatal(err)
	}

	budget := uint64(100_000)

	// Single-threaded reference IPCs (weighted-IPC denominators), shared
	// by both configurations.
	singles, err := tlrob.SingleIPCs(mix.Benchmarks[:], tlrob.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}

	baseline := tlrob.Options{Scheme: tlrob.Baseline, L1ROB: 32, Budget: budget}
	twoLevel := tlrob.Options{Scheme: tlrob.Reactive, DoDThreshold: 16, Budget: budget}

	base, err := tlrob.RunMix(mix, baseline, singles)
	if err != nil {
		log.Fatal(err)
	}
	rrob, err := tlrob.RunMix(mix, twoLevel, singles)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s)\n\n", mix.Name, mix.Classification)
	fmt.Printf("%-10s %14s %18s\n", "thread", "Baseline_32", "2-Level R-ROB16")
	for i := range base.Threads {
		fmt.Printf("%-10s %14.4f %18.4f\n",
			base.Threads[i].Benchmark,
			base.Threads[i].WeightedIPC,
			rrob.Threads[i].WeightedIPC)
	}
	fmt.Printf("\nfair throughput: %.4f -> %.4f (%+.1f%%)\n",
		base.FairThroughput, rrob.FairThroughput,
		100*(rrob.FairThroughput/base.FairThroughput-1))
	fmt.Printf("second-level grants: %d (mean dependents at service: %.1f)\n",
		rrob.Raw.ROBStats.Allocations, rrob.DoDMean)
}
